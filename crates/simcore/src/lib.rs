//! # dmsa-simcore
//!
//! Discrete-event simulation engine underpinning the DMSA grid substrate.
//!
//! The crate is deliberately small and generic: it knows nothing about grids,
//! jobs, or transfers. It provides
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution simulated time,
//! * [`EventQueue`] — a stable (FIFO-among-equal-timestamps) priority queue
//!   backed by a calendar queue (or the reference binary heap, selectable
//!   via [`QueueBackend`]),
//! * [`RngFactory`] — named, independently seeded deterministic RNG streams,
//! * [`fx`] / [`intern`] — the in-tree FxHash and the deduplicated
//!   string-interning table ([`Sym`], [`SymbolTable`]) shared by the
//!   metadata store, the replica catalog, and the matcher,
//! * [`interval`] — interval-union arithmetic used by the paper's definition
//!   of *file transfer time* ("cumulative duration during the job's queuing
//!   time phase in which at least one associated file was actively
//!   transferring", §5.1),
//! * [`stats`] — the summary statistics quoted throughout the paper
//!   (arithmetic mean vs geometric mean, percentiles).
//!
//! Everything downstream (gridnet, rucio-sim, panda-sim, scenario) is built
//! on these primitives, which keeps the full campaign bit-for-bit
//! reproducible from a single master seed.

pub mod codec;
pub mod events;
pub mod fx;
pub mod intern;
pub mod interval;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::{EventQueue, QueueBackend};
pub use intern::{Sym, SymbolTable};
pub use rng::{RngFactory, SimRng};
pub use time::{SimDuration, SimTime};
