//! `dmsa sweep`: a parallel ablation-fleet runner.
//!
//! Expands a config grid ([`dmsa_scenario::SweepGrid`]: presets × seeds
//! × fault rates × breaker settings), runs every cell deterministically
//! across a capped worker pool, and aggregates the per-cell campaigns
//! into one machine-readable `sweep_summary.json` plus a human report.
//!
//! Three properties the tests pin:
//!
//! * **Byte-identity** — every cell's export equals a standalone
//!   `dmsa simulate` with the same config/seed. Warm-started cells fork
//!   from a shared prefix, which equals `dmsa simulate --fork-at` of
//!   the same `(base, cell)` pair.
//! * **Warm-start sharing** — cells agreeing on `(preset, seed)` pay
//!   the `[0, warm_start_at)` prefix once, via
//!   [`dmsa_scenario::shared_prefix`]; each cell then continues from a
//!   memcpy-scale clone of the live prefix state
//!   ([`dmsa_scenario::SharedPrefix::fork`]) rather than re-decoding a
//!   byte snapshot per cell.
//! * **Failure isolation** — one panicking cell is quarantined (its row
//!   records the panic, the summary counts it, the exit code reflects
//!   partial success); the rest of the fleet completes.

use crate::atomic::write_atomic_via;
use crate::export::CampaignExport;
use crate::vfs::{self, ChaosProfile, IoBackend, IoRetryPolicy, RealBackend};
use dmsa_analysis::sweep::{aggregate, cell_metrics, CellMetrics, KnobGroup};
use dmsa_scenario::{BreakerSetting, Campaign, GridCell, SharedPrefix, SweepGrid};
use dmsa_simcore::stats::Summary;
use dmsa_simcore::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag written into `sweep_summary.json`.
pub const SWEEP_SCHEMA: &str = "dmsa-sweep-summary-v1";

/// Sweep execution knobs.
#[derive(Clone, Debug)]
pub struct SweepOpts {
    /// Worker-pool cap (`--jobs`); 0 means one worker per available core.
    pub jobs: usize,
    /// Warm-start divergence time (`--warm-start-at`): cells sharing a
    /// `(preset, seed)` base pay the `[0, at)` prefix once. `None` runs
    /// every cell cold from t=0.
    pub warm_start_at: Option<SimDuration>,
    /// Directory receiving `cell-<label>.json` exports and
    /// `sweep_summary.json`.
    pub out_dir: PathBuf,
    /// Write the per-cell campaign exports (the default). `false` keeps
    /// only the aggregated summary — metrics are computed straight from
    /// each in-memory campaign — which `bench_sweep` uses to time fleet
    /// compute without the export serialization/IO term (identical in
    /// every mode, and pinned byte-identical by the sweep tests).
    pub write_cell_exports: bool,
    /// Polled before each cell is dispatched; `true` stops the fleet:
    /// in-flight cells finish, unstarted cells are quarantined as
    /// interrupted, and the partial summary is still written. The CLI
    /// wires [`crate::signals::termination_requested`] (Ctrl-C) here;
    /// `None` never interrupts.
    pub interrupt: Option<fn() -> bool>,
    /// Storage-fault injection profile (`--chaos-profile`); `None` is
    /// the real filesystem.
    pub chaos: Option<ChaosProfile>,
    /// Backoff policy for cell-export and summary writes.
    pub retry: IoRetryPolicy,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            jobs: 1,
            warm_start_at: None,
            out_dir: PathBuf::new(),
            write_cell_exports: true,
            interrupt: None,
            chaos: None,
            retry: IoRetryPolicy::default(),
        }
    }
}

/// What happened to one cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    pub label: String,
    pub seed: u64,
    pub knobs: Vec<(String, String)>,
    pub warm_started: bool,
    /// Wall-clock seconds this cell took (run + export + write).
    pub wall_s: f64,
    /// Metrics on success; the panic/error message on failure.
    pub result: Result<CellMetrics, String>,
    /// Export file name (relative to the out dir), when written.
    pub export_file: Option<String>,
}

/// The whole fleet's outcome.
#[derive(Debug)]
pub struct SweepOutcome {
    pub cells: Vec<CellOutcome>,
    /// Per-knob aggregation rows over the successful cells.
    pub rows: Vec<KnobGroup>,
    pub wall_s: f64,
    pub jobs: usize,
    pub warm_start_at: Option<SimDuration>,
    /// The fleet stopped early on an interrupt (Ctrl-C): some cells may
    /// be quarantined as never-started, and the summary is partial.
    pub interrupted: bool,
}

impl SweepOutcome {
    pub fn n_failed(&self) -> usize {
        self.cells.iter().filter(|c| c.result.is_err()).count()
    }

    /// Some cell failed for a storage reason rather than a simulation
    /// one — its error carries the `storage:` prefix [`run_sweep_with`]
    /// attaches when an export write exhausts its retry budget. Those
    /// cells are quarantined (metrics lost, row kept) instead of
    /// aborting the fleet.
    pub fn degraded_storage(&self) -> bool {
        self.cells
            .iter()
            .any(|c| matches!(&c.result, Err(e) if e.starts_with("storage:")))
    }

    /// Throughput over the whole fleet; denominator clamped so a
    /// sub-resolution wall clock can never put `inf` in the JSON.
    pub fn cells_per_s(&self) -> f64 {
        safe_ratio(self.cells.len() as f64, self.wall_s)
    }
}

/// `num / den` with the denominator clamped away from zero — the one
/// ratio guard every tracked-JSON number goes through, so hand-rolled
/// writers never see `inf`/`NaN`.
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    num / den.max(1e-9)
}

/// Split a `--seeds`-style comma list, ignoring blanks.
fn split_list(s: &str) -> impl Iterator<Item = &str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty())
}

/// Parse a `--seeds 1,7,42` axis.
pub fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    split_list(s)
        .map(|t| t.parse().map_err(|e| format!("bad seed {t:?}: {e}")))
        .collect()
}

/// Parse a `--fail-probs 0.05,0.2` axis.
pub fn parse_fail_probs(s: &str) -> Result<Vec<f64>, String> {
    split_list(s)
        .map(|t| match t.parse::<f64>() {
            Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
            _ => Err(format!("bad fail probability {t:?} (want 0..=1)")),
        })
        .collect()
}

/// Parse a `--breakers off,adaptive,adaptive:600` axis — `adaptive:SECS`
/// overrides the open-state cooldown.
pub fn parse_breakers(s: &str) -> Result<Vec<BreakerSetting>, String> {
    split_list(s)
        .map(|t| match t {
            "off" => Ok(BreakerSetting::Off),
            "adaptive" => Ok(BreakerSetting::Adaptive {
                cooldown_secs: None,
            }),
            other => match other.strip_prefix("adaptive:") {
                Some(secs) => match secs.parse::<i64>() {
                    Ok(s) if s > 0 => Ok(BreakerSetting::Adaptive {
                        cooldown_secs: Some(s),
                    }),
                    _ => Err(format!(
                        "bad breaker cooldown {secs:?} (want positive secs)"
                    )),
                },
                None => Err(format!(
                    "bad breaker {other:?} (off | adaptive | adaptive:SECS)"
                )),
            },
        })
        .collect()
}

/// Runs one cell to a campaign; `prefix` is the shared warm-start state
/// when the sweep runs warm. Injectable so tests can make a specific
/// cell panic and watch the fleet survive.
pub type CellRunner = dyn Fn(&GridCell, Option<&SharedPrefix>) -> Result<Campaign, String> + Sync;

/// The production runner: cold cells run from t=0, warm cells fork the
/// shared prefix under the cell's (knob-applied) config.
pub fn run_cell(cell: &GridCell, prefix: Option<&SharedPrefix>) -> Result<Campaign, String> {
    match prefix {
        None => Ok(dmsa_scenario::run(&cell.config)),
        Some(p) => p.fork(&cell.config),
    }
}

/// Run the fleet with the production cell runner.
pub fn run_sweep(grid: &SweepGrid, opts: &SweepOpts) -> Result<SweepOutcome, String> {
    run_sweep_with(grid, opts, &run_cell)
}

/// [`run_sweep`] with an injected cell runner (panic-isolation tests).
pub fn run_sweep_with(
    grid: &SweepGrid,
    opts: &SweepOpts,
    runner: &CellRunner,
) -> Result<SweepOutcome, String> {
    let cells = grid.expand()?;
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("creating {}: {e}", opts.out_dir.display()))?;
    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.jobs
    };
    let io = vfs::backend_for(opts.chaos.as_ref());
    let t0 = Instant::now();

    // Shared prefixes, one per distinct base config (= per (preset,
    // seed) group), computed across the same worker pool. A panicking
    // prefix poisons only its own group's cells.
    let mut prefixes: HashMap<u64, Result<SharedPrefix, String>> = HashMap::new();
    if let Some(at) = opts.warm_start_at {
        let divergence = SimTime::EPOCH + at;
        let mut groups: Vec<(u64, &GridCell)> = Vec::new();
        for cell in &cells {
            let key = cell.base.behavior_fingerprint();
            if !groups.iter().any(|(k, _)| *k == key) {
                groups.push((key, cell));
            }
        }
        let snaps = run_pool(groups.len(), jobs, opts.interrupt, |i| {
            catch_unwind(AssertUnwindSafe(|| {
                dmsa_scenario::shared_prefix(&groups[i].1.base, divergence)
            }))
            .map_err(|p| {
                format!(
                    "prefix for {} panicked: {}",
                    groups[i].1.label,
                    panic_msg(&*p)
                )
            })
        });
        for ((key, _), snap) in groups.into_iter().zip(snaps) {
            prefixes.insert(
                key,
                snap.unwrap_or_else(|| Err("interrupted before the shared prefix ran".into())),
            );
        }
    }

    let outcomes = run_pool(cells.len(), jobs, opts.interrupt, |i| {
        let cell = &cells[i];
        let cell_t0 = Instant::now();
        let prefix =
            opts.warm_start_at
                .map(|_| match &prefixes[&cell.base.behavior_fingerprint()] {
                    Ok(p) => Ok(p),
                    Err(e) => Err(format!("shared prefix unavailable: {e}")),
                });
        let result = run_one(cell, prefix, runner, opts, &*io);
        CellOutcome {
            label: cell.label.clone(),
            seed: cell.seed,
            knobs: cell.knobs.clone(),
            warm_started: opts.warm_start_at.is_some(),
            wall_s: cell_t0.elapsed().as_secs_f64(),
            export_file: result
                .as_ref()
                .ok()
                .filter(|_| opts.write_cell_exports)
                .map(|_| export_file_name(&cell.label)),
            result,
        }
    });

    // Cells the pool never claimed (interrupt observed first) are
    // quarantined explicitly, not silently dropped: their rows appear in
    // the summary with an `interrupted` error, they count as failed, and
    // the exit code reports partial success.
    let outcomes: Vec<CellOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| CellOutcome {
                label: cells[i].label.clone(),
                seed: cells[i].seed,
                knobs: cells[i].knobs.clone(),
                warm_started: opts.warm_start_at.is_some(),
                wall_s: 0.0,
                result: Err("interrupted: cell never started".into()),
                export_file: None,
            })
        })
        .collect();

    let ok: Vec<(Vec<(String, String)>, CellMetrics)> = outcomes
        .iter()
        .filter_map(|c| c.result.as_ref().ok().map(|m| (c.knobs.clone(), *m)))
        .collect();
    let outcome = SweepOutcome {
        rows: aggregate(&ok),
        cells: outcomes,
        wall_s: t0.elapsed().as_secs_f64(),
        jobs,
        warm_start_at: opts.warm_start_at,
        interrupted: opts.interrupt.is_some_and(|stop| stop()),
    };

    // The summary is the drill's flight recorder, so it deliberately
    // bypasses the chaos backend: a drill that could eat its own report
    // would be undebuggable. It still retries real transient faults.
    let summary_path = opts.out_dir.join("sweep_summary.json");
    let summary = summary_json(&outcome);
    let mut note = |line: String| eprintln!("{line}");
    vfs::with_retry(&opts.retry, "sweep summary write", &mut note, || {
        write_atomic_via(&RealBackend, &summary_path, summary.as_bytes()).map_err(|e| e.to_string())
    })
    .map_err(|e| format!("writing {}: {e}", summary_path.display()))?;
    Ok(outcome)
}

/// One cell end-to-end: run (panics caught), metrics, and — unless the
/// sweep is metrics-only — export + write. A write that exhausts its
/// retry budget quarantines the cell with a `storage:`-prefixed reason
/// instead of taking down the fleet.
fn run_one(
    cell: &GridCell,
    prefix: Option<Result<&SharedPrefix, String>>,
    runner: &CellRunner,
    opts: &SweepOpts,
    io: &dyn IoBackend,
) -> Result<CellMetrics, String> {
    let prefix = prefix.transpose()?;
    let campaign = catch_unwind(AssertUnwindSafe(|| runner(cell, prefix)))
        .map_err(|p| format!("cell panicked: {}", panic_msg(&*p)))??;
    let metrics = cell_metrics(
        &campaign.store,
        campaign.window,
        campaign.path_stats,
        campaign.health.as_ref(),
    );
    if opts.write_cell_exports {
        let export = CampaignExport::from_campaign(&campaign);
        let path = opts.out_dir.join(export_file_name(&cell.label));
        let bytes = export.to_json();
        let mut note = |line: String| eprintln!("{line}");
        vfs::with_retry(&opts.retry, "cell export write", &mut note, || {
            write_atomic_via(io, &path, bytes.as_bytes()).map_err(|e| e.to_string())
        })
        .map_err(|e| format!("storage: writing {}: {e}", path.display()))?;
    }
    Ok(metrics)
}

fn export_file_name(label: &str) -> String {
    format!("cell-{label}.json")
}

/// Fixed-size worker pool over indices `0..n`: `jobs` threads pull the
/// next index from a shared counter. Results land in input order, so
/// downstream output is deterministic regardless of scheduling. `f`
/// must not panic (cell panics are caught inside it). `stop` is polled
/// before each claim; once it reports true, workers finish what they
/// hold and claim nothing more — unclaimed slots come back `None`.
fn run_pool<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    jobs: usize,
    stop: Option<fn() -> bool>,
    f: F,
) -> Vec<Option<T>> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.clamp(1, n.max(1)) {
            s.spawn(|| loop {
                if stop.is_some_and(|should_stop| should_stop()) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"))
        .collect()
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// A float for hand-rolled JSON: plain decimal, never `inf`/`NaN`
/// (non-finite values — which no guarded ratio should produce — render
/// as `null` rather than corrupting the document).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

fn summary_obj(s: &Summary) -> String {
    format!(
        "{{\"n\":{},\"mean\":{},\"sd\":{},\"p50\":{},\"p95\":{},\"ci95_lo\":{},\"ci95_hi\":{}}}",
        s.n,
        json_f64(s.mean),
        json_f64(s.sd),
        json_f64(s.p50),
        json_f64(s.p95),
        json_f64(s.ci95_lo),
        json_f64(s.ci95_hi),
    )
}

/// The machine-readable `sweep_summary.json`: stable key order, flat
/// enough to diff, floats guarded. Layout:
/// `{schema, n_cells, n_failed, degraded_storage, interrupted, jobs,
/// warm_start_at_ms, wall_s, cells_per_s, cells: [...],
/// knob_rows: [...]}`.
pub fn summary_json(o: &SweepOutcome) -> String {
    let mut out = String::with_capacity(1024 + o.cells.len() * 256);
    out.push('{');
    let _ = write!(
        out,
        "\"schema\":{},\"n_cells\":{},\"n_failed\":{},\"degraded_storage\":{},\
         \"interrupted\":{},\"jobs\":{}",
        json_str(SWEEP_SCHEMA),
        o.cells.len(),
        o.n_failed(),
        o.degraded_storage(),
        o.interrupted,
        o.jobs
    );
    match o.warm_start_at {
        Some(at) => {
            let _ = write!(out, ",\"warm_start_at_ms\":{}", at.as_millis());
        }
        None => out.push_str(",\"warm_start_at_ms\":null"),
    }
    let _ = write!(
        out,
        ",\"wall_s\":{},\"cells_per_s\":{}",
        json_f64(o.wall_s),
        json_f64(o.cells_per_s())
    );
    out.push_str(",\"cells\":[");
    for (i, c) in o.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{},\"seed\":{},\"warm_started\":{},\"wall_s\":{}",
            json_str(&c.label),
            c.seed,
            c.warm_started,
            json_f64(c.wall_s)
        );
        out.push_str(",\"knobs\":{");
        for (k, (axis, value)) in c.knobs.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(axis), json_str(value));
        }
        out.push('}');
        match &c.result {
            Ok(m) => {
                let _ = write!(
                    out,
                    ",\"ok\":true,\"error\":null,\"export\":{},\"exhausted\":{},\
                     \"failed_attempts\":{},\"delivered\":{},\"requests\":{},\
                     \"retry_delay_secs\":{},\"excluded_hours\":{},\"trips\":{},\
                     \"jobs\":{},\"transfers\":{}",
                    c.export_file
                        .as_deref()
                        .map_or_else(|| "null".into(), json_str),
                    m.exhausted,
                    m.failed_attempts,
                    m.delivered,
                    m.requests,
                    json_f64(m.retry_delay_secs),
                    json_f64(m.excluded_hours),
                    m.trips,
                    m.jobs,
                    m.transfers
                );
            }
            Err(e) => {
                let _ = write!(
                    out,
                    ",\"ok\":false,\"error\":{},\"export\":null",
                    json_str(e)
                );
            }
        }
        out.push('}');
    }
    out.push_str("],\"knob_rows\":[");
    for (i, r) in o.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"axis\":{},\"value\":{},\"n_cells\":{},\"exhausted\":{},\
             \"failed_attempts\":{},\"retry_delay_secs\":{},\"excluded_hours\":{}}}",
            json_str(&r.axis),
            json_str(&r.value),
            r.n_cells,
            summary_obj(&r.exhausted),
            summary_obj(&r.failed_attempts),
            summary_obj(&r.retry_delay_secs),
            summary_obj(&r.excluded_hours)
        );
    }
    out.push_str("]}");
    out
}

/// The human report printed after a sweep.
pub fn human_report(o: &SweepOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} cells ({} failed) | {} workers | {:.2} s wall | {:.2} cells/s{}",
        o.cells.len(),
        o.n_failed(),
        o.jobs,
        o.wall_s,
        o.cells_per_s(),
        match o.warm_start_at {
            Some(at) => format!(" | warm-started at {} h", at.as_millis() / 3_600_000),
            None => " | cold".into(),
        }
    );
    if o.interrupted {
        let _ = writeln!(
            out,
            "  INTERRUPTED: fleet stopped early; summary is partial"
        );
    }
    for c in o.cells.iter().filter(|c| c.result.is_err()) {
        let why = c.result.as_ref().err().map(String::as_str).unwrap_or("");
        let _ = writeln!(out, "  FAILED {}: {}", c.label, why);
    }
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>5} {:>26} {:>22} {:>14}",
        "axis", "value", "cells", "exhausted mean [95% CI]", "retry delay s (p95)", "excl hours"
    );
    for r in &o.rows {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>5} {:>10.1} [{:>6.1},{:>6.1}] {:>14.0} ({:>5.0}) {:>14.2}",
            r.axis,
            r.value,
            r.n_cells,
            r.exhausted.mean,
            r.exhausted.ci95_lo,
            r.exhausted.ci95_hi,
            r.retry_delay_secs.mean,
            r.retry_delay_secs.p95,
            r.excluded_hours.mean
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use dmsa_scenario::{BreakerSetting, PresetAxis, ScenarioConfig};

    fn tiny_preset() -> ScenarioConfig {
        let mut c = ScenarioConfig::small_faulty();
        c.duration = SimDuration::from_hours(6);
        c.workload.tasks_per_hour = 10.0;
        c.initial_datasets = 20;
        c.background_transfers_per_hour = 50.0;
        c
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            presets: vec![PresetAxis {
                name: "faulty".into(),
                base: tiny_preset(),
            }],
            seeds: vec![1, 2],
            fail_probs: vec![0.05, 0.2],
            breakers: vec![
                BreakerSetting::Off,
                BreakerSetting::Adaptive {
                    cooldown_secs: None,
                },
            ],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dmsa-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn axis_flag_parsing() {
        assert_eq!(parse_seeds("1, 7,42").unwrap(), vec![1, 7, 42]);
        assert!(parse_seeds("1,x").is_err());
        assert_eq!(parse_fail_probs("0.05,0.2").unwrap(), vec![0.05, 0.2]);
        assert!(parse_fail_probs("1.5").is_err());
        assert_eq!(
            parse_breakers("off,adaptive,adaptive:600").unwrap(),
            vec![
                BreakerSetting::Off,
                BreakerSetting::Adaptive {
                    cooldown_secs: None
                },
                BreakerSetting::Adaptive {
                    cooldown_secs: Some(600)
                },
            ]
        );
        assert!(parse_breakers("on").is_err());
        assert!(parse_breakers("adaptive:-5").is_err());
        // Blank lists mean "axis absent".
        assert!(parse_fail_probs("").unwrap().is_empty());
    }

    #[test]
    fn safe_ratio_never_produces_non_finite() {
        assert!(safe_ratio(5.0, 0.0).is_finite());
        assert!(safe_ratio(0.0, 0.0).is_finite());
        assert_eq!(safe_ratio(10.0, 2.0), 5.0);
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn cold_sweep_cells_are_byte_identical_to_standalone_runs() {
        let dir = tmp_dir("cold");
        let grid = tiny_grid();
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 2,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.cells.len(), 8);
        assert_eq!(outcome.n_failed(), 0);
        for cell in grid.expand().unwrap() {
            let standalone =
                CampaignExport::from_campaign(&dmsa_scenario::run(&cell.config)).to_json();
            let from_sweep =
                std::fs::read_to_string(dir.join(export_file_name(&cell.label))).unwrap();
            assert_eq!(from_sweep, standalone, "cell {} diverged", cell.label);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_sweep_cells_are_byte_identical_to_standalone_forked_runs() {
        let dir = tmp_dir("warm");
        let grid = tiny_grid();
        let at = SimDuration::from_hours(4);
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 2,
                warm_start_at: Some(at),
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.n_failed(), 0, "{:?}", outcome.cells);
        assert!(outcome.cells.iter().all(|c| c.warm_started));
        for cell in grid.expand().unwrap() {
            let standalone = CampaignExport::from_campaign(
                &dmsa_scenario::run_forked(&cell.base, &cell.config, SimTime::EPOCH + at).unwrap(),
            )
            .to_json();
            let from_sweep =
                std::fs::read_to_string(dir.join(export_file_name(&cell.label))).unwrap();
            assert_eq!(from_sweep, standalone, "warm cell {} diverged", cell.label);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_panicking_cell_is_quarantined_and_the_fleet_completes() {
        let dir = tmp_dir("panic");
        let grid = tiny_grid();
        let victim = "faulty-s2-fp0.2-brkoff";
        let runner = move |cell: &GridCell, prefix: Option<&SharedPrefix>| {
            if cell.label == victim {
                panic!("injected failure for {}", cell.label);
            }
            run_cell(cell, prefix)
        };
        let outcome = run_sweep_with(
            &grid,
            &SweepOpts {
                jobs: 2,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
            &runner,
        )
        .unwrap();
        assert_eq!(outcome.cells.len(), 8);
        assert_eq!(outcome.n_failed(), 1);
        let failed = outcome.cells.iter().find(|c| c.result.is_err()).unwrap();
        assert_eq!(failed.label, victim);
        let why = failed.result.as_ref().err().unwrap();
        assert!(why.contains("injected failure"), "{why}");
        assert!(failed.export_file.is_none());
        assert!(!dir.join(export_file_name(victim)).exists());
        // The other 7 cells all delivered exports and metrics.
        assert_eq!(outcome.cells.iter().filter(|c| c.result.is_ok()).count(), 7);
        // The summary is still valid JSON and marks the failure.
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).expect("summary parses");
        assert_eq!(root.get("n_failed").and_then(|v| v.as_u64()), Some(1));
        // Aggregation rows cover only the survivors.
        let seed2_off: Vec<&KnobGroup> = outcome
            .rows
            .iter()
            .filter(|r| r.axis == "seed" && r.value == "2")
            .collect();
        assert_eq!(seed2_off[0].n_cells, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupt_quarantines_unstarted_cells_but_still_writes_the_summary() {
        use std::sync::atomic::AtomicBool;
        static STOP: AtomicBool = AtomicBool::new(false);
        STOP.store(false, Ordering::Relaxed);

        let dir = tmp_dir("interrupt");
        let grid = tiny_grid();
        // The first dispatched cell raises the "signal"; with one worker,
        // every later cell observes it before being claimed.
        let runner = |cell: &GridCell, prefix: Option<&SharedPrefix>| {
            STOP.store(true, Ordering::Relaxed);
            run_cell(cell, prefix)
        };
        let outcome = run_sweep_with(
            &grid,
            &SweepOpts {
                jobs: 1,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: false,
                interrupt: Some(|| STOP.load(Ordering::Relaxed)),
                ..SweepOpts::default()
            },
            &runner,
        )
        .unwrap();

        assert!(outcome.interrupted);
        assert_eq!(outcome.cells.len(), 8, "every cell gets a row");
        // The in-flight cell finished; the rest were quarantined as
        // never-started rather than silently dropped.
        assert_eq!(outcome.cells.iter().filter(|c| c.result.is_ok()).count(), 1);
        let interrupted = outcome
            .cells
            .iter()
            .filter(|c| {
                c.result
                    .as_ref()
                    .err()
                    .is_some_and(|e| e.contains("interrupted"))
            })
            .count();
        assert_eq!(interrupted, 7);
        assert_eq!(outcome.n_failed(), 7, "partial success must exit 3");

        // The partial summary still lands, marked interrupted.
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).expect("partial summary parses");
        assert_eq!(
            root.get("interrupted").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(root.get("n_failed").and_then(|v| v.as_u64()), Some(7));
        assert!(human_report(&outcome).contains("INTERRUPTED"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_json_is_parseable_with_the_documented_schema() {
        let dir = tmp_dir("schema");
        let grid = SweepGrid {
            seeds: vec![1],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 1,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        let text = summary_json(&outcome);
        let root = json::parse(&text).expect("summary parses");
        assert_eq!(
            root.get("schema").and_then(|v| v.as_str()),
            Some(SWEEP_SCHEMA)
        );
        for key in ["n_cells", "n_failed", "jobs"] {
            assert!(root.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
        }
        let cells = root.get("cells").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(cells.len(), 1);
        for key in ["label", "ok", "exhausted", "knobs", "export"] {
            assert!(cells[0].get(key).is_some(), "cell lacks {key}");
        }
        let rows = root.get("knob_rows").and_then(|v| v.as_arr()).unwrap();
        assert!(!rows.is_empty());
        assert!(rows[0].get("exhausted").unwrap().get("ci95_lo").is_some());
        let report = human_report(&outcome);
        assert!(report.contains("cells/s"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_storage_failures_quarantine_cells_and_mark_the_summary() {
        let dir = tmp_dir("chaos");
        let grid = SweepGrid {
            seeds: vec![1, 2],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        // Every cell-export write attempt EIOs; the retry budget
        // exhausts, so every cell is quarantined with a structured
        // storage reason — but the fleet completes and the summary
        // (written outside the chaos backend) still lands.
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 2,
                out_dir: dir.clone(),
                chaos: Some(ChaosProfile {
                    seed: 11,
                    p_eio: 1.0,
                    ..ChaosProfile::default()
                }),
                retry: IoRetryPolicy::fast(),
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.cells.len(), 2);
        assert_eq!(outcome.n_failed(), 2);
        assert!(outcome.degraded_storage());
        for cell in &outcome.cells {
            let why = cell.result.as_ref().err().unwrap();
            assert!(why.starts_with("storage:"), "{why}");
            assert!(why.contains("EIO"), "{why}");
            assert!(cell.export_file.is_none());
        }
        // No torn/partial cell exports litter the output directory.
        assert!(!dir.join(export_file_name(&outcome.cells[0].label)).exists());
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).expect("summary parses");
        assert_eq!(
            root.get("degraded_storage").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(root.get("n_failed").and_then(|v| v.as_u64()), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inert_chaos_profile_leaves_the_sweep_byte_identical() {
        let dir_plain = tmp_dir("inert-plain");
        let dir_chaos = tmp_dir("inert-chaos");
        let grid = SweepGrid {
            seeds: vec![1],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        let run = |dir: &PathBuf, chaos: Option<ChaosProfile>| {
            run_sweep(
                &grid,
                &SweepOpts {
                    jobs: 1,
                    out_dir: dir.clone(),
                    chaos,
                    ..SweepOpts::default()
                },
            )
            .unwrap()
        };
        let plain = run(&dir_plain, None);
        let drilled = run(
            &dir_chaos,
            Some(ChaosProfile {
                seed: 99,
                ..ChaosProfile::default()
            }),
        );
        assert_eq!(plain.n_failed(), 0);
        assert_eq!(drilled.n_failed(), 0);
        assert!(!drilled.degraded_storage());
        let name = export_file_name(&plain.cells[0].label);
        assert_eq!(
            std::fs::read(dir_plain.join(&name)).unwrap(),
            std::fs::read(dir_chaos.join(&name)).unwrap(),
            "an inert drill must not perturb artifacts"
        );
        std::fs::remove_dir_all(&dir_plain).unwrap();
        std::fs::remove_dir_all(&dir_chaos).unwrap();
    }
}
