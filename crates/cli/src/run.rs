//! Subcommand implementations.
//!
//! Kept binary-free so every path is unit-testable; the `dmsa` binary is a
//! thin argv adapter over [`simulate`], [`run_match`], and [`analyze`].

use crate::checkpoint::{self, CheckpointDir};
use crate::export::CampaignExport;
use crate::json;
use crate::vfs::{self, ChaosProfile, IoRetryPolicy, StorageHealth};
use dmsa_analysis::exclusion::{exclusion_report, ExclusionReport};
use dmsa_analysis::render::{self, ReportInputs};
use dmsa_core::matcher::Matcher;
use dmsa_core::{
    evaluate, IndexedMatcher, MatchMethod, MatchSet, MatchedJob, NaiveMatcher, ParallelMatcher,
    PreparedMatcher, PreparedStore, ScoredMatcher,
};
use dmsa_gridnet::HealthConfig;
use dmsa_scenario::{Campaign, ScenarioConfig};
use dmsa_simcore::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::Ordering;

/// Which matcher the `match` subcommand runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MatcherChoice {
    /// Algorithm 1.
    Exact,
    /// Relaxed level 1.
    Rm1,
    /// Relaxed level 2.
    Rm2,
    /// Scored matcher at a threshold.
    Scored(f64),
}

impl MatcherChoice {
    /// Parse a `--method` argument (`exact`, `rm1`, `rm2`,
    /// `scored[:threshold]`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(MatcherChoice::Exact),
            "rm1" => Ok(MatcherChoice::Rm1),
            "rm2" => Ok(MatcherChoice::Rm2),
            _ => {
                if let Some(rest) = s.strip_prefix("scored") {
                    let threshold = match rest.strip_prefix(':') {
                        None if rest.is_empty() => 0.75,
                        Some(t) => t
                            .parse()
                            .map_err(|e| format!("bad scored threshold {t:?}: {e}"))?,
                        _ => return Err(format!("unknown method {s:?}")),
                    };
                    Ok(MatcherChoice::Scored(threshold))
                } else {
                    Err(format!(
                        "unknown method {s:?} (expected exact|rm1|rm2|scored[:T])"
                    ))
                }
            }
        }
    }
}

/// Which matching engine runs the chosen method. All engines produce
/// identical match sets (property-tested); they differ only in speed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum EngineChoice {
    /// Quadratic reference scan.
    Naive,
    /// Sequential prepared-index engine.
    Indexed,
    /// Rayon-parallel prepared-index engine.
    Parallel,
    /// Prepared CSR index, parallel matching (default).
    #[default]
    Prepared,
}

impl EngineChoice {
    /// Parse an `--engine` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(EngineChoice::Naive),
            "indexed" => Ok(EngineChoice::Indexed),
            "parallel" => Ok(EngineChoice::Parallel),
            "prepared" => Ok(EngineChoice::Prepared),
            _ => Err(format!(
                "unknown engine {s:?} (expected naive|indexed|parallel|prepared)"
            )),
        }
    }

    fn matcher(self) -> &'static dyn Matcher {
        match self {
            EngineChoice::Naive => &NaiveMatcher,
            EngineChoice::Indexed => &IndexedMatcher,
            EngineChoice::Parallel => &ParallelMatcher,
            EngineChoice::Prepared => &PreparedMatcher,
        }
    }
}

/// Failure-injection overrides for `dmsa simulate`. `None` leaves the
/// preset's value (inert for every preset except `faulty`) untouched, so
/// default runs stay byte-identical to the pre-fault tool.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultKnobs {
    /// Per-attempt transfer failure probability.
    pub fail_prob: Option<f64>,
    /// Fraction of site-hours spent in outage.
    pub site_outage: Option<f64>,
    /// Fraction of link-hours spent in outage.
    pub link_outage: Option<f64>,
    /// Retry budget per transfer request.
    pub max_retries: Option<u32>,
}

impl FaultKnobs {
    fn apply(&self, config: &mut ScenarioConfig) {
        if let Some(p) = self.fail_prob {
            config.faults.p_attempt_failure = p;
        }
        if let Some(p) = self.site_outage {
            config.faults.site_outage_fraction = p;
        }
        if let Some(p) = self.link_outage {
            config.faults.link_outage_fraction = p;
        }
        if let Some(n) = self.max_retries {
            config.retry.max_retries = n;
        }
    }
}

/// Closed-loop health overrides for `dmsa simulate`. `adaptive` arms the
/// breakers (`--adaptive-exclusion`); the threshold knobs override
/// individual [`HealthConfig`] fields and imply arming, since a breaker
/// threshold on a disabled monitor would silently do nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HealthKnobs {
    /// Arm the circuit breakers (`HealthConfig::adaptive` baseline).
    pub adaptive: bool,
    /// Failure rate over the sliding window that opens a breaker.
    pub failure_rate: Option<f64>,
    /// Consecutive failures that open a breaker regardless of rate.
    pub consecutive: Option<u32>,
    /// Open-state cooldown before Half-Open probation, in seconds.
    pub cooldown_secs: Option<i64>,
}

impl HealthKnobs {
    fn apply(&self, config: &mut ScenarioConfig) {
        if self.adaptive
            || self.failure_rate.is_some()
            || self.consecutive.is_some()
            || self.cooldown_secs.is_some()
        {
            config.health = HealthConfig::adaptive();
        }
        if let Some(r) = self.failure_rate {
            config.health.failure_rate_threshold = r;
        }
        if let Some(n) = self.consecutive {
            config.health.consecutive_failures = n;
        }
        if let Some(s) = self.cooldown_secs {
            config.health.cooldown = SimDuration::from_secs(s);
        }
    }
}

/// Checkpointing controls for `dmsa simulate`. With `dir` unset the run is
/// plain (no snapshots, no resume) and byte-identical to the pre-checkpoint
/// tool.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointKnobs {
    /// Where checkpoint files live (`--checkpoint-dir`).
    pub dir: Option<PathBuf>,
    /// Snapshot cadence in sim time (`--checkpoint-every`, default 6h).
    pub every: SimDuration,
    /// Restore the newest usable checkpoint before running (`--resume`).
    pub resume: bool,
    /// Checkpoint files retained (oldest pruned).
    pub keep: usize,
    /// Storage-fault injection profile (`--chaos-profile`); `None` is the
    /// real filesystem.
    pub chaos: Option<ChaosProfile>,
    /// Backoff policy for checkpoint writes that hit storage faults.
    pub retry: IoRetryPolicy,
}

impl Default for CheckpointKnobs {
    fn default() -> Self {
        CheckpointKnobs {
            dir: None,
            every: SimDuration::from_hours(6),
            resume: false,
            keep: 3,
            chaos: None,
            retry: IoRetryPolicy::default(),
        }
    }
}

/// Parse a `--checkpoint-every` duration: an integer with a `d`/`h`/`m`/`s`
/// suffix (bare integers are seconds).
pub fn parse_sim_duration(s: &str) -> Result<SimDuration, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'd') => (&s[..s.len() - 1], 86_400),
        Some(b'h') => (&s[..s.len() - 1], 3_600),
        Some(b'm') => (&s[..s.len() - 1], 60),
        Some(b's') => (&s[..s.len() - 1], 1),
        _ => (s, 1),
    };
    match digits.parse::<i64>() {
        Ok(n) if n > 0 => Ok(SimDuration::from_secs(n * mult)),
        _ => Err(format!(
            "bad duration {s:?} (expected a positive integer with d/h/m/s suffix, e.g. 6h)"
        )),
    }
}

/// Resolve a preset name to its seeded base config at `scale` — the
/// config a warm-started run shares with its siblings, before any knob
/// overrides.
pub fn preset_config(preset: &str, scale: f64, seed: u64) -> Result<ScenarioConfig, String> {
    let mut config = match preset {
        "8day" => ScenarioConfig::paper_8day(scale),
        "92day" => ScenarioConfig::paper_92day(scale),
        "small" => ScenarioConfig::small(),
        "faulty" => ScenarioConfig::small_faulty(),
        "faulty-adaptive" | "faulty_adaptive" => ScenarioConfig::faulty_adaptive(),
        "8day-faulty" | "8day_faulty" => ScenarioConfig::paper_8day_faulty(scale),
        other => {
            return Err(format!(
                "unknown preset {other:?} (8day|92day|small|faulty|faulty-adaptive|8day-faulty)"
            ))
        }
    };
    config.seed = seed;
    Ok(config)
}

/// `dmsa simulate`: run a preset campaign and return its JSON export.
///
/// With `fork_at` set, the run reproduces a sweep's warm-started cell:
/// the `[0, fork_at)` prefix runs under the *base* config (preset +
/// seed, knobs not yet applied) and the knobs take effect from the
/// divergence time — byte-identical to the corresponding sweep cell.
pub fn simulate(
    preset: &str,
    scale: f64,
    seed: u64,
    faults: FaultKnobs,
    health: HealthKnobs,
    ckpt: &CheckpointKnobs,
    fork_at: Option<SimDuration>,
) -> Result<String, String> {
    let base = preset_config(preset, scale, seed)?;
    let mut config = base.clone();
    faults.apply(&mut config);
    health.apply(&mut config);
    let campaign = match fork_at {
        Some(at) => {
            if ckpt.dir.is_some() {
                return Err(
                    "--fork-at cannot be combined with --checkpoint-dir (a forked run \
                     replays a fresh prefix; resume it from the sweep instead)"
                        .into(),
                );
            }
            dmsa_scenario::run_forked(&base, &config, SimTime::EPOCH + at)?
        }
        None => {
            let mut note = |line: String| eprintln!("{line}");
            let (campaign, storage) = run_with_checkpoints_status(&config, ckpt, &mut note)?;
            if storage.degraded() {
                note(format!("storage health: {}", storage.summary()));
            }
            campaign
        }
    };
    Ok(CampaignExport::from_campaign(&campaign).to_json())
}

/// Run a scenario under the checkpoint policy. With no checkpoint dir this
/// is exactly [`dmsa_scenario::run`]; with one, snapshots are framed and
/// written atomically at every cadence boundary, and `--resume` walks the
/// fallback ladder: newest checkpoint first, skipping (with a diagnostic
/// through `note`) anything whose frame fails to verify *or* whose snapshot
/// payload fails validation against `config`, down to a cold start when
/// nothing survives. Determinism of the snapshot layer makes the resumed
/// campaign byte-identical to an uninterrupted run of the same seed.
pub fn run_with_checkpoints(
    config: &ScenarioConfig,
    ckpt: &CheckpointKnobs,
    note: &mut dyn FnMut(String),
) -> Result<Campaign, String> {
    run_with_checkpoints_status(config, ckpt, note).map(|(campaign, _)| campaign)
}

/// [`run_with_checkpoints`] plus the run's [`StorageHealth`] latch.
///
/// Degradation contract: a campaign is never aborted because a checkpoint
/// could not be made durable. Each checkpoint write is retried with
/// backoff under `ckpt.retry`; one that exhausts its budget (disk full
/// that never clears, dead device) is *skipped* — the run continues,
/// latches `degraded_storage`, and says so through `note`. The final
/// export is unaffected; only crash-resumability is reduced.
pub fn run_with_checkpoints_status(
    config: &ScenarioConfig,
    ckpt: &CheckpointKnobs,
    note: &mut dyn FnMut(String),
) -> Result<(Campaign, StorageHealth), String> {
    let storage = StorageHealth::default();
    let Some(dir) = &ckpt.dir else {
        return Ok((dmsa_scenario::run(config), storage));
    };
    let store = CheckpointDir::open_with(dir, ckpt.keep, vfs::backend_for(ckpt.chaos.as_ref()))?;
    // Both the checkpoint sink and the resume ladder narrate through the
    // same caller-supplied channel; the RefCell lets the long-lived sink
    // closure share it with the ladder below.
    let note = std::cell::RefCell::new(note);
    let say = |line: String| (note.borrow_mut())(line);
    let mut sink = |at: SimTime, payload: &[u8]| -> Result<(), String> {
        let mut retried = false;
        let result = vfs::with_retry(
            &ckpt.retry,
            "checkpoint write",
            &mut |line| {
                retried = true;
                say(line);
            },
            || store.write(at, payload),
        );
        if retried {
            storage.retried_writes.fetch_add(1, Ordering::Relaxed);
        }
        match result {
            Ok(()) => Ok(()),
            Err(e) => {
                storage.mark_degraded();
                storage.checkpoints_skipped.fetch_add(1, Ordering::Relaxed);
                say(format!(
                    "degraded storage: skipping checkpoint at sim-time {} ms: {e}",
                    at.as_millis()
                ));
                Ok(())
            }
        }
    };
    if ckpt.resume {
        for path in store.scan()? {
            let bytes = match store.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    say(format!("skipping {}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            let payload = match checkpoint::unframe(&bytes) {
                Ok(p) => p,
                Err(why) => {
                    say(format!("skipping {}: {why}", path.display()));
                    continue;
                }
            };
            match dmsa_scenario::snapshot::validate_classified(config, payload) {
                Ok(at) => {
                    say(format!(
                        "resuming from {} (sim-time {} ms)",
                        path.display(),
                        at.as_millis()
                    ));
                    let campaign = dmsa_scenario::resume_checkpointed(
                        config,
                        payload,
                        Some(ckpt.every),
                        &mut sink,
                    )?;
                    return Ok((campaign, storage));
                }
                Err(why) => say(format!(
                    "skipping {}: [{}] {why}",
                    path.display(),
                    why.kind.label()
                )),
            }
        }
        say(format!(
            "no usable checkpoint in {}; starting from the beginning",
            dir.display()
        ));
    }
    let campaign = dmsa_scenario::run_checkpointed(config, ckpt.every, &mut sink)?;
    Ok((campaign, storage))
}

/// Serialize a match set: `{"method":"rm2","jobs":[[job_idx,[t,...]],...]}`.
pub fn matchset_to_json(set: &MatchSet) -> String {
    let mut o = String::with_capacity(32 + set.jobs.len() * 16);
    o.push_str("{\"method\":\"");
    o.push_str(match set.method {
        MatchMethod::Exact => "exact",
        MatchMethod::Rm1 => "rm1",
        MatchMethod::Rm2 => "rm2",
    });
    o.push_str("\",\"jobs\":[");
    for (i, j) in set.jobs.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('[');
        o.push_str(&j.job_idx.to_string());
        o.push_str(",[");
        for (k, t) in j.transfers.iter().enumerate() {
            if k > 0 {
                o.push(',');
            }
            o.push_str(&t.to_string());
        }
        o.push_str("]]");
    }
    o.push_str("]}");
    o
}

/// Inverse of [`matchset_to_json`].
pub fn matchset_from_json(src: &str) -> Result<MatchSet, String> {
    let idx_u32 = |el: &json::Json, what: &str| -> Result<u32, String> {
        el.as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| format!("match {what} is not a u32 index {}", el.at()))
    };
    let root = json::parse(src).map_err(|e| format!("matches parse error {e}"))?;
    let mj = root
        .get("method")
        .ok_or_else(|| format!("matches have no \"method\" field ({})", root.at()))?;
    let method = match mj.as_str() {
        Some("exact") => MatchMethod::Exact,
        Some("rm1") => MatchMethod::Rm1,
        Some("rm2") => MatchMethod::Rm2,
        Some(other) => return Err(format!("unknown match method {other:?} {}", mj.at())),
        None => return Err(format!("match method is not a string {}", mj.at())),
    };
    let jj = root
        .get("jobs")
        .ok_or_else(|| format!("matches have no \"jobs\" field ({})", root.at()))?;
    let arr = jj
        .as_arr()
        .ok_or_else(|| format!("match jobs must be an array {}", jj.at()))?;
    let mut jobs = Vec::with_capacity(arr.len());
    for el in arr {
        let Some([idx, ts]) = el.as_arr() else {
            return Err(format!(
                "match job must be [job_idx,[transfers]] {}",
                el.at()
            ));
        };
        let tarr = ts
            .as_arr()
            .ok_or_else(|| format!("match transfers must be an array {}", ts.at()))?;
        jobs.push(MatchedJob {
            job_idx: idx_u32(idx, "job")?,
            transfers: tarr
                .iter()
                .map(|t| idx_u32(t, "transfer"))
                .collect::<Result<Vec<u32>, String>>()?,
        });
    }
    Ok(MatchSet { method, jobs })
}

/// `dmsa match`: run a matcher over an exported campaign; returns the
/// match set as JSON plus a one-line stats summary. `engine` selects the
/// implementation for the exact/RM1/RM2 methods (scored matching has a
/// single engine and ignores it).
pub fn run_match(
    campaign_json: &str,
    choice: MatcherChoice,
    engine: EngineChoice,
) -> Result<(String, String), String> {
    let export = CampaignExport::from_json(campaign_json)?;
    let set: MatchSet = match choice {
        MatcherChoice::Exact => {
            engine
                .matcher()
                .match_jobs(&export.store, export.window, MatchMethod::Exact)
        }
        MatcherChoice::Rm1 => {
            engine
                .matcher()
                .match_jobs(&export.store, export.window, MatchMethod::Rm1)
        }
        MatcherChoice::Rm2 => {
            engine
                .matcher()
                .match_jobs(&export.store, export.window, MatchMethod::Rm2)
        }
        MatcherChoice::Scored(t) => {
            ScoredMatcher::default().match_jobs_scored(&export.store, export.window, t)
        }
    };
    let eval = evaluate(&export.store, &set, export.window);
    let stats = format!(
        "matched {} transfers across {} jobs | precision {:.3} recall {:.3}",
        set.n_matched_transfers(),
        set.n_matched_jobs(),
        eval.transfer_precision(),
        eval.transfer_recall()
    );
    Ok((matchset_to_json(&set), stats))
}

/// `dmsa analyze`: write a textual report over a campaign (and optionally
/// a match set) to `out`.
///
/// Inputs are parsed and the report name validated *before* anything is
/// written, so usage errors never leave a half-printed report. Write
/// failures propagate as errors — except `BrokenPipe`, which is treated
/// as success so `dmsa analyze | head` exits cleanly instead of
/// panicking. `baseline_json` is a second campaign export consulted only
/// by the `exclusion` report (adaptive-vs-baseline delta).
///
/// The campaign is loaded through the hardened streaming loader. Without
/// `quarantine_report`, a campaign carrying malformed records is refused
/// (the error names the per-kind counts); with it, the quarantine
/// breakdown is printed ahead of the report and analysis proceeds over
/// what survived — the recovery path for partially corrupted exports.
pub fn analyze(
    campaign_json: &str,
    matches_json: Option<&str>,
    baseline_json: Option<&str>,
    report: &str,
    quarantine_report: bool,
    out: &mut dyn io::Write,
) -> Result<(), String> {
    let loaded = CampaignExport::from_json_lenient(campaign_json)?;
    if !quarantine_report && !loaded.quarantine.is_empty() {
        return Err(format!(
            "campaign export contains {} quarantined record(s): {}; \
             re-run with --quarantine-report to see the breakdown and analyze what survived",
            loaded.quarantine.total(),
            loaded.quarantine.one_line()
        ));
    }
    let export = loaded.export;
    let matches: Option<MatchSet> = matches_json.map(matchset_from_json).transpose()?;
    let baseline: Option<ExclusionReport> = baseline_json
        .map(|bj| {
            CampaignExport::from_json(bj)
                .map(|b| exclusion_report(&b.store, b.window, b.path_stats, b.health.as_ref()))
        })
        .transpose()?;
    let inputs = report_inputs(&export);
    // Validate the report name before anything is written, so usage
    // errors never leave a half-printed report.
    if !render::REPORT_NAMES.contains(&report) {
        return Err(render::RenderError::UnknownReport(report.to_string()).to_string());
    }
    if quarantine_report {
        swallow_broken_pipe(out.write_all(loaded.quarantine.render().as_bytes()))?;
    }
    match render::render_report(&inputs, report, matches.as_ref(), baseline.as_ref(), out) {
        Ok(()) => Ok(()),
        Err(render::RenderError::Io(e)) => swallow_broken_pipe(Err(e)),
        Err(e) => Err(e.to_string()),
    }
}

/// Borrow the report-relevant pieces of an export as [`ReportInputs`].
pub fn report_inputs(export: &CampaignExport) -> ReportInputs<'_> {
    ReportInputs {
        store: &export.store,
        window: export.window,
        path_stats: export.path_stats,
        health: export.health.as_ref(),
    }
}

/// Map a report-writer outcome to the CLI error domain: `BrokenPipe` is
/// success (the consumer closed early, e.g. `| head`), everything else
/// is a real error.
fn swallow_broken_pipe(result: io::Result<()>) -> Result<(), String> {
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing report: {e}")),
    }
}

/// Run the three matchers sequentially on one campaign (the `bench-lite`
/// subcommand used by docs and smoke tests).
pub fn compare_methods(campaign_json: &str) -> Result<String, String> {
    let export = CampaignExport::from_json(campaign_json)?;
    let mut out = String::new();
    // One prepared index serves all three methods.
    let prepared = PreparedStore::build(&export.store);
    for method in MatchMethod::ALL {
        let set = prepared.par_match_window(export.window, method);
        let e = evaluate(&export.store, &set, export.window);
        writeln!(
            out,
            "{:<6} {:>7} transfers {:>6} jobs  precision {:.3} recall {:.3}",
            method.label(),
            set.n_matched_transfers(),
            set.n_matched_jobs(),
            e.transfer_precision(),
            e.transfer_recall()
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_analysis::redundancy::redundancy_breakdown;
    use std::fs;

    fn tiny_campaign_json() -> String {
        let mut c = ScenarioConfig::small();
        c.duration = SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.background_transfers_per_hour = 50.0;
        c.initial_datasets = 20;
        let campaign = dmsa_scenario::run(&c);
        CampaignExport::from_campaign(&campaign).to_json()
    }

    #[test]
    fn matcher_choice_parsing() {
        assert_eq!(MatcherChoice::parse("exact").unwrap(), MatcherChoice::Exact);
        assert_eq!(MatcherChoice::parse("rm1").unwrap(), MatcherChoice::Rm1);
        assert_eq!(MatcherChoice::parse("rm2").unwrap(), MatcherChoice::Rm2);
        assert_eq!(
            MatcherChoice::parse("scored").unwrap(),
            MatcherChoice::Scored(0.75)
        );
        assert_eq!(
            MatcherChoice::parse("scored:0.9").unwrap(),
            MatcherChoice::Scored(0.9)
        );
        assert!(MatcherChoice::parse("fuzzy").is_err());
        assert!(MatcherChoice::parse("scored:x").is_err());
    }

    #[test]
    fn engine_choice_parsing() {
        assert_eq!(EngineChoice::parse("naive").unwrap(), EngineChoice::Naive);
        assert_eq!(
            EngineChoice::parse("indexed").unwrap(),
            EngineChoice::Indexed
        );
        assert_eq!(
            EngineChoice::parse("parallel").unwrap(),
            EngineChoice::Parallel
        );
        assert_eq!(
            EngineChoice::parse("prepared").unwrap(),
            EngineChoice::Prepared
        );
        assert_eq!(EngineChoice::default(), EngineChoice::Prepared);
        assert!(EngineChoice::parse("quantum").is_err());
    }

    fn analyze_str(campaign: &str, matches: Option<&str>, report: &str) -> Result<String, String> {
        let mut buf = Vec::new();
        analyze(campaign, matches, None, report, false, &mut buf)?;
        Ok(String::from_utf8(buf).expect("reports are utf-8"))
    }

    #[test]
    fn simulate_rejects_unknown_preset() {
        let r = simulate(
            "weekly",
            1.0,
            1,
            FaultKnobs::default(),
            HealthKnobs::default(),
            &CheckpointKnobs::default(),
            None,
        );
        assert!(r.is_err());
    }

    #[test]
    fn forked_simulate_with_unchanged_knobs_matches_a_plain_run() {
        // With no knob overrides, forking at T replays the same campaign:
        // prefix and suffix run under the identical config.
        let plain = simulate(
            "faulty",
            1.0,
            11,
            FaultKnobs::default(),
            HealthKnobs::default(),
            &CheckpointKnobs::default(),
            None,
        )
        .unwrap();
        let forked = simulate(
            "faulty",
            1.0,
            11,
            FaultKnobs::default(),
            HealthKnobs::default(),
            &CheckpointKnobs::default(),
            Some(SimDuration::from_hours(6)),
        )
        .unwrap();
        assert_eq!(plain, forked);
    }

    #[test]
    fn forked_simulate_refuses_checkpoint_dir() {
        let ckpt = CheckpointKnobs {
            dir: Some(std::env::temp_dir().join("dmsa-fork-ckpt-refused")),
            ..CheckpointKnobs::default()
        };
        let r = simulate(
            "faulty",
            1.0,
            1,
            FaultKnobs::default(),
            HealthKnobs::default(),
            &ckpt,
            Some(SimDuration::from_hours(1)),
        );
        let err = r.unwrap_err();
        assert!(err.contains("--fork-at"), "{err}");
    }

    #[test]
    fn sim_duration_parsing() {
        assert_eq!(
            parse_sim_duration("6h").unwrap(),
            SimDuration::from_hours(6)
        );
        assert_eq!(
            parse_sim_duration("2d").unwrap(),
            SimDuration::from_hours(48)
        );
        assert_eq!(
            parse_sim_duration("30m").unwrap(),
            SimDuration::from_secs(1800)
        );
        assert_eq!(
            parse_sim_duration("90s").unwrap(),
            SimDuration::from_secs(90)
        );
        assert_eq!(
            parse_sim_duration("45").unwrap(),
            SimDuration::from_secs(45)
        );
        assert!(parse_sim_duration("0h").is_err());
        assert!(parse_sim_duration("-3h").is_err());
        assert!(parse_sim_duration("h").is_err());
        assert!(parse_sim_duration("6 hours").is_err());
    }

    #[test]
    fn matchset_json_round_trips() {
        let campaign = tiny_campaign_json();
        let (json, _) = run_match(&campaign, MatcherChoice::Rm2, EngineChoice::default()).unwrap();
        let set = matchset_from_json(&json).unwrap();
        assert_eq!(matchset_to_json(&set), json);
        assert!(set.n_matched_jobs() > 0);
        assert!(matchset_from_json("{\"method\":\"rm9\",\"jobs\":[]}").is_err());
        assert!(matchset_from_json("{\"method\":\"rm2\",\"jobs\":[[0]]}").is_err());
    }

    #[test]
    fn checkpointed_run_resumes_byte_identical() {
        let dir = std::env::temp_dir().join(format!("dmsa-run-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut c = ScenarioConfig::small_faulty();
        c.duration = SimDuration::from_hours(6);
        c.workload.tasks_per_hour = 20.0;
        let ckpt = CheckpointKnobs {
            dir: Some(dir.clone()),
            every: SimDuration::from_hours(1),
            resume: false,
            keep: 3,
            ..CheckpointKnobs::default()
        };
        let mut notes = Vec::new();
        let mut note = |l: String| notes.push(l);
        let full = run_with_checkpoints(&c, &ckpt, &mut note).unwrap();
        let full_json = CampaignExport::from_campaign(&full).to_json();

        // A "crashed" rerun: checkpoints are on disk, resume picks up the
        // newest and must land on the identical campaign bytes.
        let resumed = run_with_checkpoints(
            &c,
            &CheckpointKnobs {
                resume: true,
                ..ckpt.clone()
            },
            &mut note,
        )
        .unwrap();
        assert_eq!(CampaignExport::from_campaign(&resumed).to_json(), full_json);
        assert!(
            notes.iter().any(|l| l.contains("resuming from")),
            "{notes:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_writes_that_exhaust_retries_degrade_instead_of_aborting() {
        let dir = std::env::temp_dir().join(format!("dmsa-run-chaos-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut c = ScenarioConfig::small();
        c.duration = SimDuration::from_hours(4);
        c.workload.tasks_per_hour = 10.0;
        c.initial_datasets = 20;

        // Every checkpoint write fails with ENOSPC, every retry too: the
        // campaign must still complete, byte-identical to a plain run,
        // with the degraded-storage latch set and every skip narrated.
        let ckpt = CheckpointKnobs {
            dir: Some(dir.clone()),
            every: SimDuration::from_hours(1),
            chaos: Some(ChaosProfile {
                seed: 9,
                p_enospc: 1.0,
                ..ChaosProfile::default()
            }),
            retry: IoRetryPolicy::fast(),
            ..CheckpointKnobs::default()
        };
        let mut notes = Vec::new();
        let (campaign, storage) =
            run_with_checkpoints_status(&c, &ckpt, &mut |l| notes.push(l)).unwrap();
        assert!(storage.degraded());
        assert!(storage.checkpoints_skipped.load(Ordering::Relaxed) > 0);
        assert!(
            notes.iter().any(|l| l.contains("degraded storage")),
            "{notes:?}"
        );
        let plain = dmsa_scenario::run(&c);
        assert_eq!(
            CampaignExport::from_campaign(&campaign).to_json(),
            CampaignExport::from_campaign(&plain).to_json(),
            "storage faults must never perturb the simulation"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analyze_quarantines_or_refuses_corrupt_campaign() {
        let campaign = tiny_campaign_json();
        let anchor = "\"files\":[";
        let at = campaign.find(anchor).unwrap() + anchor.len();
        let corrupt = format!("{}[1,2,3],{}", &campaign[..at], &campaign[at..]);

        // Strict path (no flag): refused, pointing at the flag.
        let err = analyze_str(&corrupt, None, "summary").unwrap_err();
        assert!(err.contains("quarantine-report"), "unhelpful error: {err}");

        // Recovery path: quarantine breakdown first, then the report.
        let mut buf = Vec::new();
        analyze(&corrupt, None, None, "summary", true, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("quarantined records: 1"), "{text}");
        assert!(text.contains("malformed          1"), "{text}");
        assert!(text.contains("jobs "), "report missing: {text}");

        // The flag on a clean campaign reports an empty quarantine.
        let mut buf = Vec::new();
        analyze(&campaign, None, None, "summary", true, &mut buf).unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("quarantined records: 0"));
    }

    #[test]
    fn fault_knobs_override_only_what_they_set() {
        let mut config = ScenarioConfig::small();
        let knobs = FaultKnobs {
            fail_prob: Some(0.1),
            max_retries: Some(5),
            ..FaultKnobs::default()
        };
        knobs.apply(&mut config);
        assert_eq!(config.faults.p_attempt_failure, 0.1);
        assert_eq!(config.retry.max_retries, 5);
        // Untouched knobs keep the preset's inert defaults.
        assert_eq!(config.faults.site_outage_fraction, 0.0);
        assert_eq!(config.faults.link_outage_fraction, 0.0);
        assert!(!config.faults.enabled() || config.faults.p_attempt_failure > 0.0);
    }

    #[test]
    fn all_engines_agree_via_cli_path() {
        let campaign = tiny_campaign_json();
        let engines = [
            EngineChoice::Naive,
            EngineChoice::Indexed,
            EngineChoice::Parallel,
            EngineChoice::Prepared,
        ];
        let results: Vec<String> = engines
            .iter()
            .map(|&e| run_match(&campaign, MatcherChoice::Rm2, e).unwrap().0)
            .collect();
        for r in &results[1..] {
            assert_eq!(*r, results[0], "engine output diverged");
        }
    }

    #[test]
    fn full_cli_pipeline_runs() {
        let campaign = tiny_campaign_json();
        let (matches, stats) =
            run_match(&campaign, MatcherChoice::Rm2, EngineChoice::default()).unwrap();
        assert!(stats.contains("precision"));
        let report = analyze_str(&campaign, Some(&matches), "summary").unwrap();
        assert!(report.contains("transfers"));
        let matrix = analyze_str(&campaign, None, "matrix").unwrap();
        assert!(matrix.contains("local"));
        let temporal = analyze_str(&campaign, None, "temporal").unwrap();
        assert!(temporal.contains("Gini"));
        let redundancy = analyze_str(&campaign, None, "redundancy").unwrap();
        assert!(redundancy.contains("retry-induced") && redundancy.contains("reaper-induced"));
        let exclusion = analyze_str(&campaign, None, "exclusion").unwrap();
        assert!(exclusion.contains("adaptive exclusion off"));
        let cmp = compare_methods(&campaign).unwrap();
        assert!(cmp.contains("Exact") && cmp.contains("RM2"));
    }

    #[test]
    fn faulty_campaign_attributes_retry_induced_redundancy() {
        let mut c = ScenarioConfig::small_faulty();
        c.duration = SimDuration::from_hours(6);
        c.workload.tasks_per_hour = 20.0;
        let campaign = dmsa_scenario::run(&c);
        let b = redundancy_breakdown(&campaign.store, SimDuration::from_hours(24));
        // Failed attempts must surface as a *separately attributed* class
        // of duplicates, not blend into the reaper-induced pool.
        assert!(b.retry_induced.n_groups > 0, "no retry-induced groups");
        assert!(b.retry_induced.n_redundant > 0);
    }

    #[test]
    fn analyze_rejects_unknown_report() {
        let campaign = tiny_campaign_json();
        assert!(analyze_str(&campaign, None, "pie-chart").is_err());
    }

    #[test]
    fn health_knobs_arm_and_override_the_breakers() {
        let mut config = ScenarioConfig::small_faulty();
        assert!(!config.health.enabled);
        // Any breaker-threshold override implies arming.
        HealthKnobs {
            consecutive: Some(2),
            ..HealthKnobs::default()
        }
        .apply(&mut config);
        assert!(config.health.enabled);
        assert_eq!(config.health.consecutive_failures, 2);

        let mut config = ScenarioConfig::small_faulty();
        HealthKnobs {
            adaptive: true,
            failure_rate: Some(0.5),
            cooldown_secs: Some(600),
            ..HealthKnobs::default()
        }
        .apply(&mut config);
        assert!(config.health.enabled);
        assert_eq!(config.health.failure_rate_threshold, 0.5);
        assert_eq!(config.health.cooldown, SimDuration::from_secs(600));

        // No knobs set: the preset's health block is untouched.
        let mut config = ScenarioConfig::small();
        HealthKnobs::default().apply(&mut config);
        assert!(!config.health.enabled);
    }

    #[test]
    fn exclusion_report_surfaces_breaker_telemetry_end_to_end() {
        let mut c = ScenarioConfig::faulty_adaptive();
        c.duration = SimDuration::from_hours(6);
        c.workload.tasks_per_hour = 20.0;
        let adaptive = CampaignExport::from_campaign(&dmsa_scenario::run(&c));
        assert!(adaptive.health.is_some(), "armed run exports telemetry");
        assert!(adaptive.path_stats.requests > 0);

        let mut b = ScenarioConfig::small_faulty();
        b.duration = SimDuration::from_hours(6);
        b.workload.tasks_per_hour = 20.0;
        let baseline = CampaignExport::from_campaign(&dmsa_scenario::run(&b));
        assert!(
            baseline.health.is_none(),
            "unarmed run exports no telemetry"
        );

        let baseline_report = exclusion_report(
            &baseline.store,
            baseline.window,
            baseline.path_stats,
            baseline.health.as_ref(),
        );
        let mut buf = Vec::new();
        render::write_exclusion(&mut buf, &report_inputs(&adaptive), Some(&baseline_report))
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("adaptive exclusion armed"));
        assert!(text.contains("vs baseline"));
        assert!(text.contains("strictly better"));
    }

    #[test]
    fn broken_pipe_is_swallowed_but_other_write_errors_propagate() {
        use std::io;
        assert_eq!(swallow_broken_pipe(Ok(())), Ok(()));
        let pipe = io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed");
        assert_eq!(swallow_broken_pipe(Err(pipe)), Ok(()));
        let disk = io::Error::other("disk full");
        assert!(swallow_broken_pipe(Err(disk)).is_err());
    }

    #[test]
    fn report_writers_stop_at_a_broken_pipe_without_panicking() {
        // A sink that accepts one write then reports the consumer hung up
        // (what `dmsa analyze | head` does once head exits).
        struct ClosedPipe {
            writes_left: u32,
        }
        impl std::io::Write for ClosedPipe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.writes_left == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "pipe closed",
                    ));
                }
                self.writes_left -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut c = ScenarioConfig::small();
        c.duration = SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.background_transfers_per_hour = 50.0;
        c.initial_datasets = 20;
        let export = CampaignExport::from_campaign(&dmsa_scenario::run(&c));
        let mut sink = ClosedPipe { writes_left: 1 };
        let err = render::write_summary(&mut sink, &report_inputs(&export), None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(swallow_broken_pipe(Err(err)), Ok(()));
    }

    #[test]
    fn scored_match_runs_via_cli_path() {
        let campaign = tiny_campaign_json();
        let engine = EngineChoice::default();
        let (json, _) = run_match(&campaign, MatcherChoice::Scored(0.6), engine).unwrap();
        let set = matchset_from_json(&json).unwrap();
        let (strict_json, _) = run_match(&campaign, MatcherChoice::Scored(0.99), engine).unwrap();
        let strict = matchset_from_json(&strict_json).unwrap();
        assert!(set.n_matched_transfers() >= strict.n_matched_transfers());
    }
}
