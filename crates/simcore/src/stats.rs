//! Summary statistics used throughout the paper's analysis.
//!
//! The paper repeatedly contrasts the arithmetic mean with the geometric
//! mean to expose heavy-tailed imbalance (e.g. Fig 3: mean 77.75 TB per
//! site pair vs geometric mean 1.11 TB; §5.1: 8.43% mean vs 1.942%
//! geometric-mean transfer-time fraction). These helpers centralize those
//! computations so every crate reports them identically.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Geometric mean over the **positive** entries, computed in log space to
/// avoid overflow. Returns `None` if no entry is strictly positive.
///
/// Zeros are excluded rather than zeroing the whole product — the same
/// convention the paper must use, since a single empty site pair would
/// otherwise collapse Fig 3's geometric mean to zero.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for &x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Percentile via linear interpolation on sorted order statistics.
/// `p` in `[0, 100]`. Returns `None` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let w = rank - lo as f64;
    Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Normal-approximation 95% confidence interval of the mean:
/// `mean ± 1.96 · sd / √n`. Returns `None` for an empty slice; a single
/// observation yields the degenerate interval `[x, x]` (no spread
/// information, but the point estimate is still reportable).
///
/// The normal approximation (rather than Student's t) keeps the helper
/// dependency-free; for the sweep-aggregation use case (handfuls of
/// seeds per knob value) the interval is indicative, not inferential —
/// the report labels it `ci95` and documents the approximation.
pub fn mean_ci95(xs: &[f64]) -> Option<(f64, f64, f64)> {
    let m = mean(xs)?;
    let sd = std_dev(xs)?;
    let half = 1.96 * sd / (xs.len() as f64).sqrt();
    Some((m - half, m, m + half))
}

/// Five-number-plus summary of one metric across sweep cells: the
/// cross-run aggregation unit `sweep_summary.json` is built from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// Lower edge of the normal-approximation 95% CI of the mean.
    pub ci95_lo: f64,
    /// Upper edge of the normal-approximation 95% CI of the mean.
    pub ci95_hi: f64,
}

impl Summary {
    /// Summarize a slice. Returns `None` for an empty slice — callers
    /// must distinguish "no cells" from "all-zero cells".
    pub fn of(xs: &[f64]) -> Option<Summary> {
        let (ci95_lo, mean, ci95_hi) = mean_ci95(xs)?;
        Some(Summary {
            n: xs.len(),
            mean,
            sd: std_dev(xs)?,
            p50: median(xs)?,
            p95: percentile(xs, 95.0)?,
            ci95_lo,
            ci95_hi,
        })
    }
}

/// A fixed-width histogram over `[min, max)` with an overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    min: f64,
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    nan: u64,
    total: u64,
}

impl Histogram {
    /// `bins` equal-width buckets covering `[min, max)`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0 && max > min, "invalid histogram bounds");
        Histogram {
            min,
            width: (max - min) / bins as f64,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            nan: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        // `NaN < min` is false and `(NaN / width) as usize` is 0, so without
        // this check NaN observations land silently in bucket 0.
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        if x < self.min {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.min) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range max.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations — recorded in `total()` but excluded from every
    /// bucket, including under/overflow.
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of bucket `i`.
    pub fn bin_lower_edge(&self, i: usize) -> f64 {
        self.min + self.width * i as f64
    }
}

/// Welford online mean/variance accumulator, for streaming statistics over
/// millions of transfer events without materializing a vector.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Count of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance (`None` if empty).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Minimum (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean_disagree_on_heavy_tails() {
        // The Fig-3 phenomenon in miniature: one huge outlier dominates the
        // arithmetic mean but barely moves the geometric mean.
        let xs = vec![1.0, 1.0, 1.0, 1.0, 1.0e6];
        let m = mean(&xs).unwrap();
        let g = geometric_mean(&xs).unwrap();
        assert!(m > 100_000.0);
        assert!(g < 20.0);
    }

    #[test]
    fn geomean_ignores_zeros() {
        let g = geometric_mean(&[0.0, 4.0, 9.0]).unwrap();
        assert!((g - 6.0).abs() < 1e-9);
        assert!(geometric_mean(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(mean(&[]).is_none());
        assert!(geometric_mean(&[]).is_none());
        assert!(std_dev(&[]).is_none());
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(median(&xs), Some(25.0));
    }

    #[test]
    fn mean_ci95_brackets_the_mean_and_shrinks_with_n() {
        assert!(mean_ci95(&[]).is_none());
        // One observation: degenerate interval at the point estimate.
        let (lo, m, hi) = mean_ci95(&[7.0]).unwrap();
        assert_eq!((lo, m, hi), (7.0, 7.0, 7.0));
        // Fixed spread: quadrupling n halves the half-width.
        let small: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        let large: Vec<f64> = (0..32).map(|i| (i % 2) as f64).collect();
        let (lo_s, m_s, hi_s) = mean_ci95(&small).unwrap();
        let (lo_l, m_l, hi_l) = mean_ci95(&large).unwrap();
        assert!((m_s - 0.5).abs() < 1e-12 && (m_l - 0.5).abs() < 1e-12);
        assert!(lo_s < m_s && m_s < hi_s);
        let half_s = hi_s - m_s;
        let half_l = hi_l - m_l;
        assert!((half_s / half_l - 2.0).abs() < 1e-9);
        assert!(lo_l > lo_s && hi_l < hi_s);
    }

    #[test]
    fn summary_of_combines_the_helpers() {
        assert!(Summary::of(&[]).is_none());
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, median(&xs).unwrap());
        assert_eq!(s.p95, percentile(&xs, 95.0).unwrap());
        assert!(s.ci95_lo < s.mean && s.mean < s.ci95_hi);
        assert_eq!(s.sd, std_dev(&xs).unwrap());
    }

    #[test]
    fn std_dev_known_value() {
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.0, 2.5, 9.9, 10.0, -1.0, 100.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_lower_edge(2), 4.0);
    }

    #[test]
    fn histogram_routes_nan_to_dedicated_counter() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(f64::NAN);
        h.add(0.5);
        h.add(f64::NAN);
        // NaN must not masquerade as a bucket-0 observation.
        assert_eq!(h.counts(), &[1, 0, 0, 0, 0]);
        assert_eq!(h.nan(), 2);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn online_stats_match_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.add(x);
        }
        let m = mean(&xs).unwrap();
        let sd = std_dev(&xs).unwrap();
        assert!((o.mean().unwrap() - m).abs() < 1e-9);
        assert!((o.variance().unwrap().sqrt() - sd).abs() < 1e-9);
        assert_eq!(o.count(), 1000);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.37).collect();
        let (a, b) = xs.split_at(200);
        let mut s1 = OnlineStats::new();
        for &x in a {
            s1.add(x);
        }
        let mut s2 = OnlineStats::new();
        for &x in b {
            s2.add(x);
        }
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        s1.merge(&s2);
        assert_eq!(s1.count(), whole.count());
        assert!((s1.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((s1.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-6);
        assert_eq!(s1.min(), whole.min());
        assert_eq!(s1.max(), whole.max());
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.add(3.0);
        let b = OnlineStats::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2.mean(), a.mean());
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
    }
}
