//! # dmsa-bench
//!
//! The benchmark/repro harness. Two consumers:
//!
//! * the **`repro` binary** (`cargo run -p dmsa-bench --bin repro`), which
//!   regenerates every table and figure of the paper's evaluation section
//!   and prints them in the paper's layout — see `EXPERIMENTS.md` for the
//!   paper-vs-measured record;
//! * the **criterion benches** (`cargo bench -p dmsa-bench`), one target
//!   per table/figure plus ablations (matcher engines, corruption sweep).
//!
//! [`ReproContext`] bundles the pieces every experiment needs: one 8-day
//! campaign, the three match sets, and the per-job overlap records.

use dmsa_analysis::overlap::{all_overlaps, JobTransferOverlap};
use dmsa_core::{MatchMethod, MatchSet, PreparedStore};
use dmsa_scenario::{Campaign, ScenarioConfig};

/// Everything the §5 experiments share.
pub struct ReproContext {
    /// The 8-day campaign.
    pub campaign: Campaign,
    /// Exact (Algorithm 1) match set.
    pub exact: MatchSet,
    /// RM1 match set.
    pub rm1: MatchSet,
    /// RM2 match set.
    pub rm2: MatchSet,
    /// Per-job overlaps for the exact set (most figures use these).
    pub overlaps_exact: Vec<JobTransferOverlap>,
    /// Per-job overlaps for the RM2 set (Fig 12 needs relaxed matches).
    pub overlaps_rm2: Vec<JobTransferOverlap>,
}

impl ReproContext {
    /// Run the 8-day campaign at `scale` and match with all strategies.
    pub fn build(scale: f64, seed: u64) -> Self {
        let config = ScenarioConfig {
            seed,
            ..ScenarioConfig::paper_8day(scale)
        };
        Self::from_config(&config)
    }

    /// Same, from an explicit config.
    pub fn from_config(config: &ScenarioConfig) -> Self {
        let campaign = dmsa_scenario::run(config);
        // One prepared index serves all three methods (it used to be
        // rebuilt per strategy).
        let prepared = PreparedStore::build(&campaign.store);
        let m = |method| prepared.par_match_window(campaign.window, method);
        let exact = m(MatchMethod::Exact);
        let rm1 = m(MatchMethod::Rm1);
        let rm2 = m(MatchMethod::Rm2);
        drop(prepared);
        let overlaps_exact = all_overlaps(&campaign.store, &exact);
        let overlaps_rm2 = all_overlaps(&campaign.store, &rm2);
        ReproContext {
            campaign,
            exact,
            rm1,
            rm2,
            overlaps_exact,
            overlaps_rm2,
        }
    }

    /// The match set for a method.
    pub fn set(&self, method: MatchMethod) -> &MatchSet {
        match method {
            MatchMethod::Exact => &self.exact,
            MatchMethod::Rm1 => &self.rm1,
            MatchMethod::Rm2 => &self.rm2,
        }
    }
}

/// `num / den` with the denominator clamped away from zero. Every
/// throughput and speedup ratio in the tracked baselines goes through
/// this one helper: the JSON writers are hand-rolled, and a naked
/// division by a sub-resolution wall clock would put `inf`/`NaN` in a
/// tracked file — which is not even valid JSON.
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    num / den.max(1e-9)
}

/// Render an optional byte count for a tracked-JSON writer: `null` when
/// the measurement is unavailable, never a fake `0`.
pub fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Human-readable formatting used by the repro binary's tables.
pub mod fmt {
    /// Format bytes with a binary-decimal mix matching the paper (PB/TB/GB).
    pub fn bytes(b: u64) -> String {
        let b = b as f64;
        const UNITS: [(&str, f64); 5] = [
            ("PB", 1e15),
            ("TB", 1e12),
            ("GB", 1e9),
            ("MB", 1e6),
            ("KB", 1e3),
        ];
        for (name, scale) in UNITS {
            // Roll over to the larger unit as soon as the *rounded* value
            // would reach it: 999_995 B is "1.00 MB", not "1000.00 KB".
            if b >= scale * 0.999995 {
                return format!("{:.2} {name}", b / scale);
            }
        }
        format!("{b:.0} B")
    }

    /// Percentage with two decimals.
    pub fn pct(num: usize, den: usize) -> String {
        if den == 0 {
            "n/a".to_string()
        } else {
            format!("{:.2}%", 100.0 * num as f64 / den as f64)
        }
    }
}

/// Peak resident memory, shared by the tracked-baseline binaries.
pub mod rss {
    /// Peak resident set size of this process in bytes.
    ///
    /// Reads `VmHWM` from `/proc/self/status` (Linux). On platforms
    /// without procfs this returns `None` and reports record the value
    /// as JSON `null` — the throughput numbers are the portable part of
    /// the baseline, the memory figure is best-effort, and an honest
    /// absence beats a fake `0` that cross-run comparisons would read
    /// as "memory regressed to nothing".
    pub fn peak_rss_bytes() -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
}

/// The tracked simulation-throughput baseline (`BENCH_sim.json`).
///
/// The `bench_sim` binary runs the two paper campaigns at fixed scales
/// and records wall time, delivered-event throughput, store population,
/// and peak RSS. With heap comparison enabled it re-runs each preset on
/// the reference `BinaryHeap` event queue and verifies the exported
/// store is identical before reporting the speedup.
pub mod sim_report {
    use dmsa_scenario::{Campaign, ScenarioConfig};
    use dmsa_simcore::QueueBackend;
    use std::time::Instant;

    /// Reference-queue comparison leg of one preset.
    #[derive(Clone, Debug)]
    pub struct HeapLeg {
        /// Wall seconds on the `BinaryHeap` backend.
        pub wall_s: f64,
        /// Events per second on the `BinaryHeap` backend.
        pub events_per_s: f64,
        /// Calendar-queue speedup (`events_per_s / heap events_per_s`).
        pub speedup: f64,
        /// The two backends exported identical stores (must be true).
        pub exports_identical: bool,
    }

    /// One preset measurement.
    #[derive(Clone, Debug)]
    pub struct PresetResult {
        /// Preset label (`paper_8day`, `paper_92day`).
        pub name: &'static str,
        /// Campaign scale factor.
        pub scale: f64,
        /// Master seed.
        pub seed: u64,
        /// Events the queue delivered.
        pub events: u64,
        /// Exported store population.
        pub jobs: usize,
        /// Exported store population.
        pub transfers: usize,
        /// Wall seconds on the calendar queue (campaign + export).
        pub wall_s: f64,
        /// Delivered events per wall second.
        pub events_per_s: f64,
        /// Reference-queue leg, when comparison was requested.
        pub heap: Option<HeapLeg>,
    }

    /// The whole baseline.
    #[derive(Clone, Debug)]
    pub struct SimReport {
        /// Per-preset measurements.
        pub presets: Vec<PresetResult>,
        /// Peak RSS after all runs (`None` when the platform cannot
        /// measure it; written as JSON `null`, and cross-run comparisons
        /// skip the memory column rather than diff against a fake 0).
        pub peak_rss_bytes: Option<u64>,
    }

    fn timed_run(config: &ScenarioConfig, backend: QueueBackend) -> (Campaign, f64) {
        let start = Instant::now();
        let campaign = dmsa_scenario::run_with_queue(config, backend);
        (campaign, start.elapsed().as_secs_f64())
    }

    /// Run one preset; `compare_heap` re-runs it on the reference queue.
    pub fn measure_preset(
        name: &'static str,
        config: &ScenarioConfig,
        scale: f64,
        compare_heap: bool,
    ) -> PresetResult {
        let (campaign, wall_s) = timed_run(config, QueueBackend::Calendar);
        let events = campaign.events_processed;
        let events_per_s = crate::safe_ratio(events as f64, wall_s);
        let heap = compare_heap.then(|| {
            let (hc, heap_wall) = timed_run(config, QueueBackend::BinaryHeap);
            let heap_eps = crate::safe_ratio(hc.events_processed as f64, heap_wall);
            HeapLeg {
                wall_s: heap_wall,
                events_per_s: heap_eps,
                speedup: crate::safe_ratio(events_per_s, heap_eps),
                exports_identical: hc.events_processed == events && hc.store == campaign.store,
            }
        });
        PresetResult {
            name,
            scale,
            seed: config.seed,
            events,
            jobs: campaign.store.jobs.len(),
            transfers: campaign.store.transfers.len(),
            wall_s,
            events_per_s,
            heap,
        }
    }

    impl SimReport {
        /// Serialize as stable, hand-rolled JSON (same discipline as
        /// `BENCH_matching.json`: flat keys, fixed order, clean diffs).
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n  \"presets\": [\n");
            for (i, p) in self.presets.iter().enumerate() {
                let sep = if i + 1 == self.presets.len() { "" } else { "," };
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"scale\": {}, \"seed\": {}, \
                     \"events\": {}, \"jobs\": {}, \"transfers\": {}, \
                     \"wall_s\": {:.3}, \"events_per_s\": {:.1}",
                    p.name,
                    p.scale,
                    p.seed,
                    p.events,
                    p.jobs,
                    p.transfers,
                    p.wall_s,
                    p.events_per_s
                ));
                if let Some(h) = &p.heap {
                    out.push_str(&format!(
                        ", \"heap_wall_s\": {:.3}, \"heap_events_per_s\": {:.1}, \
                         \"speedup\": {:.2}, \"exports_identical\": {}",
                        h.wall_s, h.events_per_s, h.speedup, h.exports_identical
                    ));
                }
                out.push_str(&format!("}}{sep}\n"));
            }
            out.push_str(&format!(
                "  ],\n  \"peak_rss_bytes\": {}\n}}\n",
                crate::json_opt_u64(self.peak_rss_bytes)
            ));
            out
        }
    }
}

/// The tracked matching-benchmark baseline (`BENCH_matching.json`).
///
/// The `bench_matching` binary measures prepared-index build time and
/// per-engine matching throughput on one campaign and emits this report.
/// The JSON is written by hand (flat, stable key order) so the file diffs
/// cleanly between baseline updates.
pub mod report {
    use dmsa_core::matcher::Matcher;
    use dmsa_core::{IndexedMatcher, MatchMethod, NaiveMatcher, ParallelMatcher, PreparedStore};
    use dmsa_scenario::Campaign;
    use std::time::Instant;

    /// One engine × method measurement.
    #[derive(Clone, Debug)]
    pub struct EngineTiming {
        /// Engine label (`naive`, `indexed`, `parallel`, `prepared`).
        pub engine: &'static str,
        /// Method label (`Exact`, `RM1`, `RM2`).
        pub method: &'static str,
        /// Wall-clock milliseconds for one full matching pass.
        pub millis: f64,
        /// Universe jobs matched per second.
        pub jobs_per_s: f64,
        /// Jobs with a non-empty match (equal across engines).
        pub matched_jobs: usize,
    }

    /// The whole baseline.
    #[derive(Clone, Debug)]
    pub struct MatchingReport {
        /// Campaign scale factor.
        pub scale: f64,
        /// Store population.
        pub jobs: usize,
        /// Store population.
        pub transfers: usize,
        /// Size of the matching universe (user jobs in the window).
        pub universe: usize,
        /// One-off `PreparedStore::build` wall time (milliseconds).
        pub build_ms: f64,
        /// Shared-index pass over all three methods, build included once
        /// (milliseconds) — the number the tentpole optimizes.
        pub shared_all_methods_ms: f64,
        /// Peak RSS when the measurement finished (`None` when the
        /// platform cannot measure it; written as JSON `null`).
        pub peak_rss_bytes: Option<u64>,
        /// Per-engine timings.
        pub engines: Vec<EngineTiming>,
    }

    /// Measure every engine on `campaign`. `include_naive` guards the
    /// quadratic reference engine, which is only tolerable on small
    /// stores.
    pub fn measure(campaign: &Campaign, scale: f64, include_naive: bool) -> MatchingReport {
        let store = &campaign.store;
        let window = campaign.window;
        let universe = store.user_jobs_in(window).count();
        let time = |f: &mut dyn FnMut() -> usize| -> (f64, usize) {
            let start = Instant::now();
            let matched = f();
            (start.elapsed().as_secs_f64() * 1e3, matched)
        };

        let (build_ms, _) = time(&mut || PreparedStore::build(store).task_pool(0).len());

        let (shared_all_methods_ms, _) = time(&mut || {
            let prepared = PreparedStore::build(store);
            MatchMethod::ALL
                .iter()
                .map(|&m| prepared.par_match_window(window, m).n_matched_jobs())
                .sum()
        });

        let mut engines = Vec::new();
        let prepared = PreparedStore::build(store);
        for method in MatchMethod::ALL {
            let label = method.label();
            let mut row = |engine: &'static str, f: &mut dyn FnMut() -> usize| {
                let (millis, matched_jobs) = time(f);
                engines.push(EngineTiming {
                    engine,
                    method: label,
                    millis,
                    jobs_per_s: crate::safe_ratio(universe as f64, millis / 1e3),
                    matched_jobs,
                });
            };
            if include_naive {
                row("naive", &mut || {
                    NaiveMatcher
                        .match_jobs(store, window, method)
                        .n_matched_jobs()
                });
            }
            row("indexed", &mut || {
                IndexedMatcher
                    .match_jobs(store, window, method)
                    .n_matched_jobs()
            });
            row("parallel", &mut || {
                ParallelMatcher
                    .match_jobs(store, window, method)
                    .n_matched_jobs()
            });
            // The prepared engine amortizes its build: time the reuse path.
            row("prepared", &mut || {
                prepared.par_match_window(window, method).n_matched_jobs()
            });
        }

        MatchingReport {
            scale,
            jobs: store.jobs.len(),
            transfers: store.transfers.len(),
            universe,
            build_ms,
            shared_all_methods_ms,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            engines,
        }
    }

    impl MatchingReport {
        /// Serialize as stable, hand-rolled JSON.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n");
            out.push_str(&format!("  \"scale\": {},\n", self.scale));
            out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
            out.push_str(&format!("  \"transfers\": {},\n", self.transfers));
            out.push_str(&format!("  \"universe\": {},\n", self.universe));
            out.push_str(&format!("  \"build_ms\": {:.3},\n", self.build_ms));
            out.push_str(&format!(
                "  \"shared_all_methods_ms\": {:.3},\n",
                self.shared_all_methods_ms
            ));
            out.push_str(&format!(
                "  \"peak_rss_bytes\": {},\n",
                crate::json_opt_u64(self.peak_rss_bytes)
            ));
            out.push_str("  \"engines\": [\n");
            for (i, e) in self.engines.iter().enumerate() {
                let sep = if i + 1 == self.engines.len() { "" } else { "," };
                out.push_str(&format!(
                    "    {{\"engine\": \"{}\", \"method\": \"{}\", \"millis\": {:.3}, \
                     \"jobs_per_s\": {:.1}, \"matched_jobs\": {}}}{sep}\n",
                    e.engine, e.method, e.millis, e.jobs_per_s, e.matched_jobs
                ));
            }
            out.push_str("  ]\n}\n");
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt::bytes(0), "0 B");
        assert_eq!(fmt::bytes(1_500), "1.50 KB");
        assert_eq!(fmt::bytes(2_000_000_000), "2.00 GB");
        assert_eq!(fmt::bytes(957_980_000_000_000_000), "957.98 PB");
    }

    #[test]
    fn fmt_bytes_rounds_up_at_unit_boundaries() {
        // Values whose two-decimal rounding reaches the next unit must
        // print in that unit, never as "1000.00 <smaller unit>".
        assert_eq!(fmt::bytes(999_995), "1.00 MB");
        assert_eq!(fmt::bytes(999_994), "999.99 KB");
        assert_eq!(fmt::bytes(999_995_000_000), "1.00 TB");
        assert_eq!(fmt::bytes(999_999_999_999), "1.00 TB");
        for b in [999_994, 999_995, 1_000_000, 999_999_999_999u64] {
            assert!(
                !fmt::bytes(b).starts_with("1000."),
                "{b} printed as {}",
                fmt::bytes(b)
            );
        }
    }

    #[test]
    fn fmt_pct() {
        assert_eq!(fmt::pct(1, 52), "1.92%");
        assert_eq!(fmt::pct(0, 0), "n/a");
    }

    #[test]
    fn context_builds_and_is_monotone() {
        let ctx = ReproContext::from_config(&ScenarioConfig::small());
        assert!(ctx.rm1.contains(&ctx.exact));
        assert!(ctx.rm2.contains(&ctx.rm1));
        assert_eq!(ctx.overlaps_exact.len(), ctx.exact.n_matched_jobs());
    }

    #[test]
    fn matching_report_measures_all_engines_consistently() {
        let campaign = dmsa_scenario::run(&ScenarioConfig::small());
        let r = report::measure(&campaign, 1.0, true);
        assert_eq!(r.jobs, campaign.store.jobs.len());
        assert_eq!(r.engines.len(), 12, "4 engines x 3 methods");
        assert!(r.build_ms >= 0.0 && r.shared_all_methods_ms >= 0.0);
        // Every engine must agree on the matched-job counts per method.
        for method in ["Exact", "RM1", "RM2"] {
            let counts: Vec<usize> = r
                .engines
                .iter()
                .filter(|e| e.method == method)
                .map(|e| e.matched_jobs)
                .collect();
            assert!(!counts.is_empty());
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "engines disagree under {method}: {counts:?}"
            );
        }
    }

    #[test]
    fn safe_ratio_is_always_finite() {
        assert!(safe_ratio(1e9, 0.0).is_finite());
        assert!(safe_ratio(0.0, 0.0).is_finite());
        assert_eq!(safe_ratio(10.0, 2.0), 5.0);
    }

    #[test]
    fn unmeasurable_rss_is_null_not_zero() {
        assert_eq!(json_opt_u64(None), "null");
        assert_eq!(json_opt_u64(Some(123)), "123");
        let r = sim_report::SimReport {
            presets: vec![],
            peak_rss_bytes: None,
        };
        assert!(r.to_json().contains("\"peak_rss_bytes\": null"));
        let campaign = dmsa_scenario::run(&ScenarioConfig::small());
        let mut m = report::measure(&campaign, 1.0, false);
        m.peak_rss_bytes = None;
        assert!(m.to_json().contains("\"peak_rss_bytes\": null"));
        assert!(!m.to_json().contains("\"peak_rss_bytes\": 0"));
    }

    #[test]
    fn zero_wall_clock_still_emits_valid_json() {
        // A sub-resolution wall clock exercises every clamped ratio; the
        // hand-rolled writer must never see inf/NaN.
        let leg = sim_report::HeapLeg {
            wall_s: 0.0,
            events_per_s: safe_ratio(1e6, 0.0),
            speedup: safe_ratio(safe_ratio(1e6, 0.0), safe_ratio(1e6, 0.0)),
            exports_identical: true,
        };
        let r = sim_report::SimReport {
            presets: vec![sim_report::PresetResult {
                name: "degenerate",
                scale: 0.0,
                seed: 1,
                events: 1_000_000,
                jobs: 0,
                transfers: 0,
                wall_s: 0.0,
                events_per_s: safe_ratio(1e6, 0.0),
                heap: Some(leg),
            }],
            peak_rss_bytes: None,
        };
        let json = r.to_json();
        for bad in ["inf", "NaN", "nan"] {
            assert!(!json.contains(bad), "{bad} leaked into {json}");
        }
        assert!(json.contains("\"speedup\": 1.00"));
    }

    #[test]
    fn matching_report_json_shape() {
        let campaign = dmsa_scenario::run(&ScenarioConfig::small());
        let r = report::measure(&campaign, 0.5, false);
        let json = r.to_json();
        for key in [
            "\"scale\"",
            "\"jobs\"",
            "\"transfers\"",
            "\"universe\"",
            "\"build_ms\"",
            "\"shared_all_methods_ms\"",
            "\"peak_rss_bytes\"",
            "\"engines\"",
            "\"jobs_per_s\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("\"naive\""), "naive must be opt-in");
        assert!(json.contains("\"prepared\""));
        // Balanced braces/brackets (cheap well-formedness check that does
        // not require a JSON parser).
        let count = |c: char| json.chars().filter(|&x| x == c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
        assert!(json.ends_with("}\n"));
    }
}
