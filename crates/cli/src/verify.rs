//! `dmsa verify <dir>` — offline integrity audit of everything a run
//! leaves on disk.
//!
//! Chaos drills ([`crate::vfs`]) deliberately tear, truncate, and corrupt
//! artifacts; this module is the other half of that bargain: walk a
//! directory, recognise each artifact by *content* (not just extension),
//! and validate it as deeply as its format allows:
//!
//! - **Checkpoints** (`*.dmsa`): frame magic, version, declared length,
//!   CRC32 — then the snapshot payload's layout version via
//!   [`dmsa_scenario::snapshot::peek_version`].
//! - **Sweep journals** (`*.dmsaj`): header frame + per-record replay
//!   via [`crate::journal`]. A torn tail is *not* corruption — it is the
//!   format's crash model, and `dmsa sweep --resume` salvages the
//!   prefix — but an unreadable header is.
//! - **Campaign exports** (JSON with `version` + `config`): parsed with
//!   the lenient loader; any quarantined record is a corruption.
//! - **Sweep summaries** (`schema: dmsa-sweep-summary-v2`): schema tag,
//!   cell-count consistency, and that every cell export the summary
//!   references actually exists next to it. The `sweep_ops.json`
//!   sidecar (`schema: dmsa-sweep-ops-v1`) gets a shape check; any
//!   other schema value is version skew, reported as corrupt.
//! - **Match sets** (JSON with `method` + `jobs`): re-parsed through the
//!   same strict loader `dmsa analyze` uses.
//!
//! Anything else is listed as skipped, never silently ignored: an auditor
//! that skips quietly is how torn artifacts survive.

use crate::checkpoint;
use crate::export::CampaignExport;
use crate::json;
use crate::run::matchset_from_json;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// What the auditor decided about one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileVerdict {
    /// Artifact recognised and fully valid.
    Ok { kind: &'static str, detail: String },
    /// Artifact recognised but damaged — the audit failure case.
    Corrupt { kind: &'static str, reason: String },
    /// Not an artifact this auditor knows (temp files, logs, …).
    Skipped { reason: String },
}

/// Audit result for one file.
#[derive(Debug, Clone)]
pub struct FileReport {
    pub path: PathBuf,
    pub verdict: FileVerdict,
}

/// Everything `dmsa verify` learned about a directory.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    pub reports: Vec<FileReport>,
}

impl VerifyOutcome {
    pub fn ok_count(&self) -> usize {
        self.count(|v| matches!(v, FileVerdict::Ok { .. }))
    }
    pub fn corrupt_count(&self) -> usize {
        self.count(|v| matches!(v, FileVerdict::Corrupt { .. }))
    }
    pub fn skipped_count(&self) -> usize {
        self.count(|v| matches!(v, FileVerdict::Skipped { .. }))
    }
    fn count(&self, pred: impl Fn(&FileVerdict) -> bool) -> usize {
        self.reports.iter().filter(|r| pred(&r.verdict)).count()
    }
    /// The audit passes only if nothing recognised was corrupt.
    pub fn clean(&self) -> bool {
        self.corrupt_count() == 0
    }
}

impl fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.reports {
            let name = r.path.display();
            match &r.verdict {
                FileVerdict::Ok { kind, detail } => {
                    writeln!(f, "  ok       {name} [{kind}] {detail}")?
                }
                FileVerdict::Corrupt { kind, reason } => {
                    writeln!(f, "  CORRUPT  {name} [{kind}] {reason}")?
                }
                FileVerdict::Skipped { reason } => writeln!(f, "  skipped  {name} ({reason})")?,
            }
        }
        writeln!(
            f,
            "verify: {} ok, {} corrupt, {} skipped",
            self.ok_count(),
            self.corrupt_count(),
            self.skipped_count()
        )
    }
}

/// Walk `dir` (one level — artifact directories are flat) and audit every
/// file, in sorted order so the report is stable for diffing.
pub fn verify_dir(dir: &Path) -> Result<VerifyOutcome, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    let mut out = VerifyOutcome::default();
    for path in entries {
        let verdict = verify_file(&path);
        out.reports.push(FileReport { path, verdict });
    }
    Ok(out)
}

/// Audit a single file, classifying it by content.
pub fn verify_file(path: &Path) -> FileVerdict {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    if name.starts_with('.') {
        return FileVerdict::Skipped {
            reason: "hidden/temp file".into(),
        };
    }
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            return FileVerdict::Corrupt {
                kind: "unreadable",
                reason: format!("cannot read: {e}"),
            }
        }
    };
    if name.ends_with(".dmsaj") {
        return verify_journal(&bytes);
    }
    if name.ends_with(".dmsa") {
        return verify_checkpoint(&bytes);
    }
    // Everything else the toolchain writes is JSON; classify by shape.
    let text = match std::str::from_utf8(&bytes) {
        Ok(t) => t,
        Err(e) => {
            return FileVerdict::Corrupt {
                kind: "json",
                reason: format!("not UTF-8: {e}"),
            }
        }
    };
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return FileVerdict::Corrupt {
                kind: "json",
                reason: format!("unparseable JSON: {e}"),
            }
        }
    };
    if let Some(schema) = doc.get("schema").and_then(|v| v.as_str()) {
        return match schema {
            crate::sweep::SWEEP_SCHEMA => verify_sweep_summary(path, &doc),
            crate::sweep::OPS_SCHEMA => verify_sweep_ops(&doc),
            other => FileVerdict::Corrupt {
                kind: "sweep-summary",
                reason: format!(
                    "schema {other:?} found, expected {:?} or {:?} (version skew)",
                    crate::sweep::SWEEP_SCHEMA,
                    crate::sweep::OPS_SCHEMA
                ),
            },
        };
    }
    if doc.get("schema").is_some() {
        return FileVerdict::Corrupt {
            kind: "sweep-summary",
            reason: "schema tag present but not a string".into(),
        };
    }
    if doc.get("method").is_some() {
        return verify_matchset(text);
    }
    if doc.get("version").is_some() && doc.get("config").is_some() {
        return verify_campaign(text);
    }
    FileVerdict::Skipped {
        reason: "JSON object of unknown shape".into(),
    }
}

fn verify_checkpoint(bytes: &[u8]) -> FileVerdict {
    let payload = match checkpoint::unframe(bytes) {
        Ok(p) => p,
        Err(e) => {
            return FileVerdict::Corrupt {
                kind: "checkpoint",
                reason: e,
            }
        }
    };
    // The frame is sound; now check the snapshot payload's own layout.
    match dmsa_scenario::snapshot::peek_version(payload) {
        Ok(v) if v == dmsa_scenario::snapshot::SNAPSHOT_VERSION => FileVerdict::Ok {
            kind: "checkpoint",
            detail: format!("{} payload bytes, snapshot v{v}", payload.len()),
        },
        Ok(v) => FileVerdict::Corrupt {
            kind: "checkpoint",
            reason: format!(
                "snapshot layout version {v} found, supported {}",
                dmsa_scenario::snapshot::SNAPSHOT_VERSION
            ),
        },
        Err(e) => FileVerdict::Corrupt {
            kind: "checkpoint",
            reason: format!("frame ok but payload damaged: {e}"),
        },
    }
}

/// Replay a sweep journal. The intact prefix is what `--resume` would
/// adopt, so the verdict mirrors resume's ladder: an unreadable header
/// frame is corruption (nothing salvageable), while a torn tail after a
/// valid prefix is reported in the detail but still audits Ok.
fn verify_journal(bytes: &[u8]) -> FileVerdict {
    match crate::journal::replay(bytes) {
        Ok(replay) => {
            let completed = replay
                .records
                .iter()
                .filter(|r| matches!(r, crate::journal::Record::Completed { .. }))
                .count();
            let detail = match &replay.torn_tail {
                None => format!(
                    "{} records ({} completed), {} frames",
                    replay.records.len(),
                    completed,
                    replay.frames_ok
                ),
                Some(t) => format!(
                    "{} records ({} completed) salvaged before torn tail ({t}); resumable",
                    replay.records.len(),
                    completed
                ),
            };
            FileVerdict::Ok {
                kind: "sweep-journal",
                detail,
            }
        }
        Err(e) => FileVerdict::Corrupt {
            kind: "sweep-journal",
            reason: e,
        },
    }
}

fn verify_sweep_ops(doc: &json::Json) -> FileVerdict {
    let cells = match doc.get("cells").and_then(|v| v.as_arr()) {
        Some(c) => c,
        None => {
            return FileVerdict::Corrupt {
                kind: "sweep-ops",
                reason: "missing cells array".into(),
            }
        }
    };
    match doc.get("jobs").and_then(|v| v.as_u64()) {
        Some(_) => FileVerdict::Ok {
            kind: "sweep-ops",
            detail: format!("{} cells", cells.len()),
        },
        None => FileVerdict::Corrupt {
            kind: "sweep-ops",
            reason: "missing jobs".into(),
        },
    }
}

fn verify_campaign(text: &str) -> FileVerdict {
    match CampaignExport::from_json_lenient(text) {
        Ok(loaded) => {
            if loaded.quarantine.is_empty() {
                let store = &loaded.export.store;
                FileVerdict::Ok {
                    kind: "campaign",
                    detail: format!(
                        "{} jobs, {} files, {} transfers",
                        store.jobs.len(),
                        store.files.len(),
                        store.transfers.len()
                    ),
                }
            } else {
                FileVerdict::Corrupt {
                    kind: "campaign",
                    reason: format!(
                        "{} quarantined records ({})",
                        loaded.quarantine.total(),
                        loaded.quarantine.one_line()
                    ),
                }
            }
        }
        Err(e) => FileVerdict::Corrupt {
            kind: "campaign",
            reason: e,
        },
    }
}

fn verify_sweep_summary(path: &Path, doc: &json::Json) -> FileVerdict {
    let cells = match doc.get("cells").and_then(|v| v.as_arr()) {
        Some(c) => c,
        None => {
            return FileVerdict::Corrupt {
                kind: "sweep-summary",
                reason: "missing cells array".into(),
            }
        }
    };
    match doc.get("n_cells").and_then(|v| v.as_u64()) {
        Some(n) if n as usize == cells.len() => {}
        Some(n) => {
            return FileVerdict::Corrupt {
                kind: "sweep-summary",
                reason: format!("n_cells {n} but {} cells listed", cells.len()),
            }
        }
        None => {
            return FileVerdict::Corrupt {
                kind: "sweep-summary",
                reason: "missing n_cells".into(),
            }
        }
    }
    // Every export the summary references must still exist beside it;
    // failed cells must carry a structured error, never a bare null.
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut problems = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let ok = cell.get("ok").and_then(|v| v.as_bool());
        match ok {
            Some(true) => {
                if let Some(file) = cell.get("export").and_then(|v| v.as_str()) {
                    if !dir.join(file).is_file() {
                        problems.push(format!("cell {i}: export {file} missing"));
                    }
                }
            }
            Some(false) => {
                let has_reason = cell
                    .get("error")
                    .and_then(|v| v.as_str())
                    .is_some_and(|e| !e.is_empty());
                if !has_reason {
                    problems.push(format!("cell {i}: failed without a structured error"));
                }
            }
            None => problems.push(format!("cell {i}: missing ok flag")),
        }
    }
    if !problems.is_empty() {
        return FileVerdict::Corrupt {
            kind: "sweep-summary",
            reason: problems.join("; "),
        };
    }
    FileVerdict::Ok {
        kind: "sweep-summary",
        detail: format!("{} cells", cells.len()),
    }
}

fn verify_matchset(text: &str) -> FileVerdict {
    match matchset_from_json(text) {
        Ok(set) => FileVerdict::Ok {
            kind: "matchset",
            detail: format!("{} matched jobs", set.jobs.len()),
        },
        Err(e) => FileVerdict::Corrupt {
            kind: "matchset",
            reason: e,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::frame;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmsa-verify-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_checkpoint_passes_and_bitflip_fails() {
        let dir = scratch("ckpt");
        let config = crate::run::preset_config("8day", 0.01, 7).unwrap();
        let snap = dmsa_scenario::prefix_snapshot(
            &config,
            dmsa_simcore::SimTime::EPOCH + dmsa_simcore::SimDuration::from_hours(1),
        );
        fs::write(dir.join("good.dmsa"), frame(&snap)).unwrap();
        let mut bad = frame(&snap);
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        fs::write(dir.join("bad.dmsa"), bad).unwrap();

        let outcome = verify_dir(&dir).unwrap();
        assert_eq!(outcome.ok_count(), 1);
        assert_eq!(outcome.corrupt_count(), 1);
        assert!(!outcome.clean());
        let report = outcome.to_string();
        assert!(report.contains("CORRUPT"), "{report}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checkpoint_and_unknown_files_classified() {
        let dir = scratch("mixed");
        fs::write(dir.join("torn.dmsa"), b"DMSACKPT\x01\x00").unwrap();
        fs::write(dir.join("notes.txt"), b"not json at all").unwrap();
        fs::write(dir.join("other.json"), b"{\"hello\":1}").unwrap();
        let outcome = verify_dir(&dir).unwrap();
        assert_eq!(outcome.corrupt_count(), 2, "{outcome}"); // torn + non-JSON text
        assert_eq!(outcome.skipped_count(), 1); // unknown JSON shape
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journals_audit_ok_torn_tails_note_and_skewed_schemas_fail() {
        use crate::journal::{self, Header, Record, SweepJournal};
        let dir = scratch("journal");
        let j = SweepJournal::create(
            &dir,
            &Header {
                grid_fingerprint: 7,
                n_cells: 1,
                warm_start_at_ms: None,
            },
        )
        .unwrap();
        j.append(&Record::Dispatched { label: "a".into() }).unwrap();
        drop(j);
        // Ops sidecar and a version-skewed summary next to it.
        fs::write(
            dir.join("sweep_ops.json"),
            format!(
                "{{\"schema\":\"{}\",\"jobs\":2,\"cells\":[]}}",
                crate::sweep::OPS_SCHEMA
            ),
        )
        .unwrap();
        fs::write(
            dir.join("old_summary.json"),
            "{\"schema\":\"dmsa-sweep-summary-v1\",\"cells\":[]}",
        )
        .unwrap();
        let outcome = verify_dir(&dir).unwrap();
        assert_eq!(outcome.ok_count(), 2, "{outcome}"); // journal + ops
        assert_eq!(outcome.corrupt_count(), 1, "{outcome}"); // v1 schema skew
        let report = outcome.to_string();
        assert!(report.contains("sweep-journal"), "{report}");
        assert!(report.contains("version skew"), "{report}");

        // Tear the journal's tail: still Ok (resumable), noted as such.
        let path = journal::SweepJournal::path_in(&dir);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let torn = verify_file(&path);
        match torn {
            FileVerdict::Ok { kind, detail } => {
                assert_eq!(kind, "sweep-journal");
                assert!(detail.contains("resumable"), "{detail}");
            }
            other => panic!("torn tail must stay auditable: {other:?}"),
        }
        // Destroy the header frame: nothing salvageable → corrupt.
        fs::write(&path, b"ruined").unwrap();
        assert!(matches!(
            verify_file(&path),
            FileVerdict::Corrupt {
                kind: "sweep-journal",
                ..
            }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_and_matchset_round_trip_verify() {
        let dir = scratch("camp");
        let config = crate::run::preset_config("8day", 0.01, 3).unwrap();
        let campaign = dmsa_scenario::run(&config);
        let export = CampaignExport::from_campaign(&campaign);
        fs::write(dir.join("campaign.json"), export.to_json()).unwrap();
        let outcome = verify_dir(&dir).unwrap();
        assert_eq!(outcome.corrupt_count(), 0, "{outcome}");
        assert_eq!(outcome.ok_count(), 1);

        // Now plant a subtle corruption: truncate the tail.
        let text = fs::read_to_string(dir.join("campaign.json")).unwrap();
        fs::write(dir.join("campaign.json"), &text[..text.len() - 20]).unwrap();
        let outcome = verify_dir(&dir).unwrap();
        assert_eq!(outcome.corrupt_count(), 1, "{outcome}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
