//! Crash-safe file writes.
//!
//! Every file the CLI produces — campaign exports, match sets, analysis
//! reports, checkpoints — goes through [`write_atomic`]: the bytes land in
//! a temporary file in the *same directory* as the destination, are
//! fsynced, and only then renamed over the target. A crash (or a failing
//! writer closure) at any point leaves either the complete old file or the
//! complete new file on disk, never a torn mix, and never clobbers the
//! previous output with a partial one.

//!
//! All of the durable steps go through a [`vfs::IoBackend`], so a chaos
//! drill ([`vfs::ChaosBackend`]) can inject ENOSPC, EIO, torn writes,
//! fsync failures, and rename failures at exactly these points.
//! [`write_atomic`] uses the real filesystem; [`write_atomic_via`] takes
//! an explicit backend.

use crate::vfs::IoBackend;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files of concurrent writers in the same directory.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> PathBuf {
    let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{stem}.tmp-{}-{n}", std::process::id()))
}

/// Atomically replace `path` with `bytes`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, |f| f.write_all(bytes))
}

/// [`write_atomic`] with every durable step (write, fsync, rename,
/// parent-directory fsync) routed through `io`. The temp file is created
/// and cleaned up on the real filesystem — creation faults are not part
/// of the chaos surface; what happens to the *bytes* is.
///
/// Fault behaviour: a failed write/fsync/rename removes the temp file
/// and leaves the previous contents of `path` untouched. A *torn* write
/// (which reports success — the lying-disk fault) is published like any
/// other: that is precisely the damage checksummed frames and
/// `dmsa verify` exist to catch downstream.
pub fn write_atomic_via(io: &dyn IoBackend, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path_for(path);
    let result = (|| {
        let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        io.write_all(&mut f, path, bytes)?;
        io.sync(&f, path)?;
        drop(f);
        io.rename(&tmp, path)?;
        // Best-effort: directory fsync failure cannot un-publish the
        // rename, so it degrades to "durable at the next sync" instead
        // of failing a write that already happened.
        if let Some(dir) = parent_dir(path) {
            let _ = io.sync_dir(dir);
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The directory to fsync after publishing into it (`.` for bare names).
fn parent_dir(path: &Path) -> Option<&Path> {
    let dir = path.parent()?;
    Some(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    })
}

/// Atomically replace `path` with whatever `fill` writes. If `fill` (or
/// any later step) fails, the temp file is removed and the previous
/// contents of `path` are left untouched.
pub fn write_atomic_with(
    path: &Path,
    fill: impl FnOnce(&mut File) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = tmp_path_for(path);
    let result = (|| {
        let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        fill(&mut f)?;
        // Data must be durable before the rename publishes it: rename is
        // atomic in the namespace, not on the file's blocks.
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is best-effort:
        // not every filesystem lets you open a directory for sync.
        if let Some(dir) = path.parent() {
            let dir = if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{ChaosBackend, ChaosProfile};

    #[test]
    fn chaos_enospc_leaves_previous_file_and_no_litter() {
        let dir = std::env::temp_dir().join(format!("dmsa-atomic-chaos-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"good\":true}").unwrap();

        let io = ChaosBackend::new(ChaosProfile {
            seed: 1,
            p_enospc: 1.0,
            ..ChaosProfile::default()
        });
        let err = write_atomic_via(&io, &path, b"{\"new\":true}").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Old contents intact, torn temp removed.
        assert_eq!(fs::read(&path).unwrap(), b"{\"good\":true}");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1, "temp litter");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_torn_write_publishes_a_detectably_short_file() {
        let dir = std::env::temp_dir().join(format!("dmsa-atomic-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        let io = ChaosBackend::new(ChaosProfile {
            seed: 2,
            p_torn: 1.0,
            ..ChaosProfile::default()
        });
        let payload = vec![7u8; 4096];
        // The lying disk reports success...
        write_atomic_via(&io, &path, &payload).unwrap();
        // ...and the published file is short — torn damage that only a
        // checksum (checkpoint frames, `dmsa verify`) catches later.
        let on_disk = fs::read(&path).unwrap();
        assert!(on_disk.len() < payload.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_then_overwrite() {
        let dir = std::env::temp_dir().join(format!("dmsa-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_previous_file_intact() {
        let dir = std::env::temp_dir().join(format!("dmsa-atomic-fail-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"good\":true}").unwrap();

        // Simulate dying mid-write: the writer emits half the payload and
        // then fails, as a process crash or full disk would.
        let err = write_atomic_with(&path, |f| {
            f.write_all(b"{\"partial\":")?;
            Err(io::Error::other("simulated crash mid-write"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "simulated crash mid-write");

        // The previous file is byte-identical, and no temp litter remains.
        assert_eq!(fs::read(&path).unwrap(), b"{\"good\":true}");
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(leftovers.len(), 1, "temp file leaked: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
