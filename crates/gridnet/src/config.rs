//! Topology generation parameters.

use serde::{Deserialize, Serialize};

/// Parameters controlling synthetic grid generation.
///
/// Defaults approximate the footprint visible in the paper's Fig 3 heatmap
/// (111 active sites) at the tier mix typical of the WLCG: one Tier-0, about
/// a dozen Tier-1s, a long tail of Tier-2/Tier-3 sites.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of Tier-1 sites.
    pub n_tier1: usize,
    /// Number of Tier-2 sites.
    pub n_tier2: usize,
    /// Number of Tier-3 sites.
    pub n_tier3: usize,
    /// Pareto shape for the per-site activity weight (lower = heavier tail).
    pub activity_pareto_shape: f64,
    /// Fraction of sites whose storage frontend supports only one concurrent
    /// transfer stream (the Fig 10 sequential-staging pathology).
    pub single_stream_site_fraction: f64,
    /// Mean compute slots at a Tier-2 site; other tiers scale from this.
    pub t2_compute_slots: u32,
    /// Disk capacity of a Tier-2 DATADISK in bytes; other tiers scale
    /// from this. Presets shrink it with campaign scale so storage
    /// pressure (and therefore the deletion reaper) stays realistic.
    pub t2_disk_capacity_bytes: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            n_tier1: 12,
            n_tier2: 70,
            n_tier3: 28,
            activity_pareto_shape: 1.1,
            single_stream_site_fraction: 0.15,
            t2_compute_slots: 400,
            t2_disk_capacity_bytes: 5_000_000_000_000_000, // 5 PB
        }
    }
}

impl TopologyConfig {
    /// A small topology for unit tests and examples (fast to generate and
    /// simulate, still tier-diverse).
    pub fn small() -> Self {
        TopologyConfig {
            n_tier1: 3,
            n_tier2: 8,
            n_tier3: 4,
            ..Default::default()
        }
    }

    /// Total number of sites this config will generate (including Tier-0).
    pub fn total_sites(&self) -> usize {
        1 + self.n_tier1 + self.n_tier2 + self.n_tier3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_footprint() {
        let c = TopologyConfig::default();
        assert_eq!(c.total_sites(), 111);
    }

    #[test]
    fn small_is_smaller() {
        assert!(TopologyConfig::small().total_sites() < 20);
    }
}
