//! The sweep journal: an append-only, CRC-framed cell manifest.
//!
//! A sweep writes `sweep-journal.dmsaj` next to its outputs, recording
//! the grid identity and every per-cell lifecycle transition as one
//! [`crate::checkpoint::frame`]-wrapped record each. Crash-safety comes
//! from the frame, not from fsync discipline alone: a record torn by a
//! crash fails its CRC, and replay salvages the intact prefix — exactly
//! the degradation ladder checkpoint resume uses, applied to a stream.
//!
//! ```text
//! sweep-journal.dmsaj = frame(header) frame(record)*
//! header  = "g" \t grid-fingerprint(016x) \t n_cells \t warm-start-ms|-
//! record  = "d" \t label                                    dispatched
//!         | "c" \t label \t export|- \t crc(08x) \t len \t m1..m9 \t retries
//!         | "q" \t label \t retries \t reason               quarantined
//!         | "r" \t label \t attempt \t reason               retry scheduled
//! ```
//!
//! Records are tab-separated text inside the binary frame: trivially
//! greppable once unframed, while torn/flipped bytes are still caught
//! by the checksum. Metric floats use Rust's shortest-round-trip
//! `to_string`, so a resumed cell's adopted metrics are bit-equal to
//! the originals.
//!
//! The journal is a *flight recorder*: appends go straight through
//! [`RealBackend`] (never the chaos backend — the recorder must outlive
//! the drill), and append failures are reported but never abort the
//! sweep. Losing journal tail records costs re-simulation on resume,
//! never correctness: resume re-validates every surviving artifact
//! against the journal's checksums before adopting it.

use crate::checkpoint::{frame, unframe_prefix};
use crate::vfs::{IoBackend, RealBackend};
use dmsa_analysis::sweep::CellMetrics;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The journal's file name inside a sweep output directory.
pub const FILE_NAME: &str = "sweep-journal.dmsaj";

/// The journal's first record: which sweep this is.
#[derive(Clone, Debug, PartialEq)]
pub struct Header {
    /// [`dmsa_scenario::SweepGrid::fingerprint`] of the grid.
    pub grid_fingerprint: u64,
    /// Expanded cell count (a cheap sanity cross-check).
    pub n_cells: usize,
    /// Warm-start boundary in sim-millis; `None` for cold sweeps. Part
    /// of the identity: the same grid warm-started elsewhere produces
    /// different per-cell artifacts.
    pub warm_start_at_ms: Option<i64>,
}

/// One per-cell lifecycle transition.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// The cell was claimed by a worker.
    Dispatched { label: String },
    /// The cell completed; metrics and (when exporting) the artifact's
    /// content checksum are journaled so resume can adopt the cell
    /// without re-simulating it.
    Completed {
        label: String,
        /// Export file name (`cell-<label>.json`), `None` when the
        /// sweep ran without `--write-cell-exports`.
        export: Option<String>,
        /// CRC-32 of the export bytes (0 when no export).
        export_crc: u32,
        /// Export length in bytes (0 when no export).
        export_len: u64,
        metrics: CellMetrics,
        /// Cell-level retries this completion needed.
        retries: u32,
    },
    /// The cell failed; `reason` carries the stable taxonomy prefix
    /// (`storage:`, `timeout:`, `interrupted:`, `panicked:`, …).
    Quarantined {
        label: String,
        retries: u32,
        reason: String,
    },
    /// A `storage:`-failed attempt was scheduled for retry `attempt`.
    RetryScheduled {
        label: String,
        attempt: u32,
        reason: String,
    },
}

fn encode_header(h: &Header) -> String {
    format!(
        "g\t{:016x}\t{}\t{}",
        h.grid_fingerprint,
        h.n_cells,
        h.warm_start_at_ms
            .map_or_else(|| "-".to_string(), |ms| ms.to_string())
    )
}

fn encode_record(r: &Record) -> String {
    match r {
        Record::Dispatched { label } => format!("d\t{label}"),
        Record::Completed {
            label,
            export,
            export_crc,
            export_len,
            metrics: m,
            retries,
        } => format!(
            "c\t{label}\t{}\t{export_crc:08x}\t{export_len}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{retries}",
            export.as_deref().unwrap_or("-"),
            m.exhausted,
            m.failed_attempts,
            m.delivered,
            m.requests,
            m.retry_delay_secs,
            m.excluded_hours,
            m.trips,
            m.jobs,
            m.transfers,
        ),
        Record::Quarantined {
            label,
            retries,
            reason,
        } => format!("q\t{label}\t{retries}\t{reason}"),
        Record::RetryScheduled {
            label,
            attempt,
            reason,
        } => format!("r\t{label}\t{attempt}\t{reason}"),
    }
}

fn parse_header(payload: &str) -> Result<Header, String> {
    let mut f = payload.split('\t');
    if f.next() != Some("g") {
        return Err("journal header record is not tagged 'g'".into());
    }
    let fp = f.next().ok_or("journal header missing fingerprint")?;
    let grid_fingerprint =
        u64::from_str_radix(fp, 16).map_err(|e| format!("bad grid fingerprint {fp:?}: {e}"))?;
    let n = f.next().ok_or("journal header missing cell count")?;
    let n_cells = n
        .parse()
        .map_err(|e| format!("bad journal cell count {n:?}: {e}"))?;
    let w = f.next().ok_or("journal header missing warm-start field")?;
    let warm_start_at_ms = match w {
        "-" => None,
        ms => Some(
            ms.parse()
                .map_err(|e| format!("bad journal warm-start millis {ms:?}: {e}"))?,
        ),
    };
    Ok(Header {
        grid_fingerprint,
        n_cells,
        warm_start_at_ms,
    })
}

fn parse_record(payload: &str) -> Result<Record, String> {
    let (tag, rest) = payload
        .split_once('\t')
        .ok_or_else(|| format!("journal record has no tab: {payload:?}"))?;
    match tag {
        "d" => Ok(Record::Dispatched {
            label: rest.to_string(),
        }),
        "c" => {
            let fields: Vec<&str> = rest.split('\t').collect();
            if fields.len() != 14 {
                return Err(format!(
                    "completed record has {} fields, want 14",
                    fields.len()
                ));
            }
            let num = |i: usize, what: &str| -> Result<u64, String> {
                fields[i]
                    .parse()
                    .map_err(|e| format!("bad {what} {:?}: {e}", fields[i]))
            };
            let flt = |i: usize, what: &str| -> Result<f64, String> {
                fields[i]
                    .parse()
                    .map_err(|e| format!("bad {what} {:?}: {e}", fields[i]))
            };
            Ok(Record::Completed {
                label: fields[0].to_string(),
                export: match fields[1] {
                    "-" => None,
                    name => Some(name.to_string()),
                },
                export_crc: u32::from_str_radix(fields[2], 16)
                    .map_err(|e| format!("bad export crc {:?}: {e}", fields[2]))?,
                export_len: num(3, "export length")?,
                metrics: CellMetrics {
                    exhausted: num(4, "exhausted")?,
                    failed_attempts: num(5, "failed_attempts")?,
                    delivered: num(6, "delivered")?,
                    requests: num(7, "requests")?,
                    retry_delay_secs: flt(8, "retry_delay_secs")?,
                    excluded_hours: flt(9, "excluded_hours")?,
                    trips: num(10, "trips")?,
                    jobs: num(11, "jobs")?,
                    transfers: num(12, "transfers")?,
                },
                retries: num(13, "retries")? as u32,
            })
        }
        "q" => {
            // Reason comes last and may itself contain tabs: split off
            // exactly the two leading fields.
            let mut f = rest.splitn(3, '\t');
            let label = f.next().unwrap_or_default().to_string();
            let retries = f
                .next()
                .ok_or("quarantine record missing retries")?
                .parse::<u32>()
                .map_err(|e| format!("bad quarantine retries: {e}"))?;
            let reason = f
                .next()
                .ok_or("quarantine record missing reason")?
                .to_string();
            Ok(Record::Quarantined {
                label,
                retries,
                reason,
            })
        }
        "r" => {
            let mut f = rest.splitn(3, '\t');
            let label = f.next().unwrap_or_default().to_string();
            let attempt = f
                .next()
                .ok_or("retry record missing attempt")?
                .parse::<u32>()
                .map_err(|e| format!("bad retry attempt: {e}"))?;
            let reason = f.next().ok_or("retry record missing reason")?.to_string();
            Ok(Record::RetryScheduled {
                label,
                attempt,
                reason,
            })
        }
        other => Err(format!("unknown journal record tag {other:?}")),
    }
}

/// An open, appendable sweep journal. Appends are serialized through a
/// mutex (sweep workers journal concurrently) and each record is framed
/// and fdatasync'd individually, so a crash tears at most the record
/// being written — which replay then drops as the torn tail.
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl SweepJournal {
    /// The journal path inside a sweep output directory.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(FILE_NAME)
    }

    /// Create (truncating any predecessor) and write the header. The
    /// truncate-then-rewrite is what a resume does too: once surviving
    /// cells are adopted, the journal is rewritten fresh so it never
    /// accretes stale generations.
    pub fn create(dir: &Path, header: &Header) -> Result<SweepJournal, String> {
        let path = Self::path_in(dir);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| format!("cannot create sweep journal {}: {e}", path.display()))?;
        let j = SweepJournal {
            path,
            file: Mutex::new(file),
        };
        j.append_payload(encode_header(header).as_bytes())?;
        Ok(j)
    }

    fn append_payload(&self, payload: &[u8]) -> Result<(), String> {
        let mut f = self.file.lock().expect("journal file poisoned");
        RealBackend
            .write_all(&mut f, &self.path, &frame(payload))
            .and_then(|()| f.sync_data())
            .map_err(|e| format!("sweep journal append failed: {e}"))
    }

    /// Append one lifecycle record. Errors are returned, not panicked:
    /// the sweep reports them and keeps running (flight-recorder
    /// contract — a failing journal disk costs resume coverage, never
    /// the sweep itself).
    pub fn append(&self, record: &Record) -> Result<(), String> {
        self.append_payload(encode_record(record).as_bytes())
    }
}

/// The replayed content of a journal file.
#[derive(Debug)]
pub struct JournalReplay {
    pub header: Header,
    pub records: Vec<Record>,
    /// Why replay stopped early, if it did (torn tail after a crash,
    /// flipped bytes, …). The records before the damage are still valid.
    pub torn_tail: Option<String>,
    /// Frames that parsed (header included) — verify's audit detail.
    pub frames_ok: usize,
}

/// Replay a journal byte stream: parse framed records until the bytes
/// run out or damage is hit, salvaging the intact prefix. Never panics —
/// arbitrary bytes yield an `Err` (no header) or a truncated replay.
pub fn replay(bytes: &[u8]) -> Result<JournalReplay, String> {
    let (first, mut at) = unframe_prefix(bytes).map_err(|e| format!("journal header: {e}"))?;
    let header = std::str::from_utf8(first)
        .map_err(|_| "journal header is not UTF-8".to_string())
        .and_then(parse_header)?;
    let mut records = Vec::new();
    let mut torn_tail = None;
    let mut frames_ok = 1;
    while at < bytes.len() {
        let (payload, used) = match unframe_prefix(&bytes[at..]) {
            Ok(x) => x,
            Err(e) => {
                torn_tail = Some(format!("at byte {at}: {e}"));
                break;
            }
        };
        let rec = std::str::from_utf8(payload)
            .map_err(|_| "record is not UTF-8".to_string())
            .and_then(parse_record);
        match rec {
            Ok(r) => records.push(r),
            Err(e) => {
                // A frame whose CRC passed but whose payload does not
                // parse is version skew or corruption the checksum
                // cannot see; stop here, keep the prefix.
                torn_tail = Some(format!("at byte {at}: unparseable record: {e}"));
                break;
            }
        }
        frames_ok += 1;
        at += used;
    }
    Ok(JournalReplay {
        header,
        records,
        torn_tail,
        frames_ok,
    })
}

/// Read and replay the journal in `dir`. `Ok(None)` when no journal
/// exists (a cold start, not an error).
pub fn load(dir: &Path) -> Result<Option<JournalReplay>, String> {
    let path = SweepJournal::path_in(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    replay(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmsa-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> Header {
        Header {
            grid_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            n_cells: 8,
            warm_start_at_ms: Some(7_200_000),
        }
    }

    fn metrics() -> CellMetrics {
        CellMetrics {
            exhausted: 3,
            failed_attempts: 11,
            delivered: 97,
            requests: 100,
            retry_delay_secs: 1234.5678901234567,
            excluded_hours: 0.25,
            trips: 2,
            jobs: 50,
            transfers: 210,
        }
    }

    #[test]
    fn journal_round_trips_every_record_kind() {
        let dir = scratch("roundtrip");
        let j = SweepJournal::create(&dir, &header()).unwrap();
        let records = vec![
            Record::Dispatched {
                label: "faulty-s1-fp0.05-brkoff".into(),
            },
            Record::RetryScheduled {
                label: "faulty-s1-fp0.05-brkoff".into(),
                attempt: 1,
                reason: "storage: injected EIO".into(),
            },
            Record::Completed {
                label: "faulty-s1-fp0.05-brkoff".into(),
                export: Some("cell-faulty-s1-fp0.05-brkoff.json".into()),
                export_crc: 0xABCD_1234,
                export_len: 4096,
                metrics: metrics(),
                retries: 1,
            },
            Record::Completed {
                label: "no-export".into(),
                export: None,
                export_crc: 0,
                export_len: 0,
                metrics: metrics(),
                retries: 0,
            },
            Record::Quarantined {
                label: "faulty-s2-fp0.2-brkoff".into(),
                retries: 2,
                reason: "timeout: cell exceeded 30s (cooperative cancel)".into(),
            },
        ];
        for r in &records {
            j.append(r).unwrap();
        }
        let replayed = load(&dir).unwrap().expect("journal exists");
        assert_eq!(replayed.header, header());
        assert_eq!(replayed.records, records);
        assert!(replayed.torn_tail.is_none());
        assert_eq!(replayed.frames_ok, 1 + records.len());
        // Float metrics round-trip bit-exactly (shortest repr).
        let Record::Completed { metrics: m, .. } = &replayed.records[2] else {
            panic!("record 2 is Completed");
        };
        assert_eq!(
            m.retry_delay_secs.to_bits(),
            metrics().retry_delay_secs.to_bits()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_salvages_the_prefix_of_a_torn_journal() {
        let dir = scratch("torn");
        let j = SweepJournal::create(&dir, &header()).unwrap();
        j.append(&Record::Dispatched { label: "a".into() }).unwrap();
        j.append(&Record::Dispatched { label: "b".into() }).unwrap();
        drop(j);
        let path = SweepJournal::path_in(&dir);
        let bytes = fs::read(&path).unwrap();
        // Crash mid-append: half the final record is on disk.
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let replayed = load(&dir).unwrap().unwrap();
        assert_eq!(replayed.records.len(), 1, "intact prefix only");
        assert_eq!(
            replayed.records[0],
            Record::Dispatched { label: "a".into() }
        );
        let tail = replayed.torn_tail.expect("tail damage reported");
        assert!(tail.contains("truncated"), "{tail}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reasons_with_tabs_survive_and_missing_journal_is_none() {
        let dir = scratch("tabs");
        assert!(load(&dir).unwrap().is_none(), "no journal → cold start");
        let j = SweepJournal::create(&dir, &header()).unwrap();
        let rec = Record::Quarantined {
            label: "x".into(),
            retries: 0,
            reason: "panicked: weird\tmessage\twith tabs".into(),
        };
        j.append(&rec).unwrap();
        let replayed = load(&dir).unwrap().unwrap();
        assert_eq!(replayed.records, vec![rec]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arbitrary_bytes_are_an_error_not_a_panic() {
        assert!(replay(b"").is_err());
        assert!(replay(b"not a journal at all").is_err());
        // A valid frame whose payload is not a header.
        let framed = frame(b"x\tnot-a-header");
        let err = replay(&framed).unwrap_err();
        assert!(
            err.contains("not tagged 'g'") || err.contains("journal header"),
            "{err}"
        );
    }

    #[test]
    fn create_truncates_a_previous_generation() {
        let dir = scratch("truncate");
        let j = SweepJournal::create(&dir, &header()).unwrap();
        j.append(&Record::Dispatched {
            label: "old".into(),
        })
        .unwrap();
        drop(j);
        let h2 = Header {
            n_cells: 2,
            ..header()
        };
        SweepJournal::create(&dir, &h2).unwrap();
        let replayed = load(&dir).unwrap().unwrap();
        assert_eq!(replayed.header, h2);
        assert!(replayed.records.is_empty(), "old generation must be gone");
        fs::remove_dir_all(&dir).unwrap();
    }
}
