//! Transfer activity classes.
//!
//! Table 1 of the paper breaks matched transfers down by activity. The five
//! activities that carry a `jeditaskid` are modelled explicitly; the bulk of
//! grid traffic (rule-driven rebalancing, tape staging, deletion-driven
//! consolidation) never carries one, which is why only 1.59 M of the 6.78 M
//! transfers in the paper's window are even candidates for matching.

use serde::{Deserialize, Serialize};

/// Why a transfer happened.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Activity {
    /// Stage-in of analysis input before job execution.
    AnalysisDownload,
    /// Registration/upload of analysis outputs after job completion.
    AnalysisUpload,
    /// Streaming-mode input read overlapping job execution.
    AnalysisDownloadDirectIo,
    /// Production job output upload.
    ProductionUpload,
    /// Production job input staging.
    ProductionDownload,
    /// Rucio rule-driven rebalancing (no job attached).
    DataRebalancing,
    /// Tape recall / data-carousel staging (no job attached).
    TapeRecall,
    /// Dataset consolidation ahead of deletion (no job attached).
    DataConsolidation,
}

impl Activity {
    /// Human-readable label matching the paper's Table 1 rows.
    pub fn label(self) -> &'static str {
        match self {
            Activity::AnalysisDownload => "Analysis Download",
            Activity::AnalysisUpload => "Analysis Upload",
            Activity::AnalysisDownloadDirectIo => "Analysis Download Direct IO",
            Activity::ProductionUpload => "Production Upload",
            Activity::ProductionDownload => "Production Download",
            Activity::DataRebalancing => "Data Rebalancing",
            Activity::TapeRecall => "Tape Recall",
            Activity::DataConsolidation => "Data Consolidation",
        }
    }

    /// Whether transfers of this activity carry a `jeditaskid` in their
    /// metadata (before corruption). Only job-driven activities do.
    pub fn carries_jeditaskid(self) -> bool {
        matches!(
            self,
            Activity::AnalysisDownload
                | Activity::AnalysisUpload
                | Activity::AnalysisDownloadDirectIo
                | Activity::ProductionUpload
                | Activity::ProductionDownload
        )
    }

    /// Whether this activity moves data *to* the computing site (download)
    /// as opposed to *from* it (upload).
    pub fn is_download(self) -> bool {
        matches!(
            self,
            Activity::AnalysisDownload
                | Activity::AnalysisDownloadDirectIo
                | Activity::ProductionDownload
        )
    }

    /// Whether this is a production (non-user) activity. Production jobs
    /// are absent from the paper's *user job* query, so these transfers can
    /// never match (Table 1 shows 0%).
    pub fn is_production(self) -> bool {
        matches!(
            self,
            Activity::ProductionUpload | Activity::ProductionDownload
        )
    }

    /// The five activities of Table 1 in row order.
    pub const TABLE1: [Activity; 5] = [
        Activity::AnalysisDownload,
        Activity::AnalysisUpload,
        Activity::AnalysisDownloadDirectIo,
        Activity::ProductionUpload,
        Activity::ProductionDownload,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table1() {
        assert_eq!(Activity::AnalysisDownload.label(), "Analysis Download");
        assert_eq!(
            Activity::AnalysisDownloadDirectIo.label(),
            "Analysis Download Direct IO"
        );
    }

    #[test]
    fn only_job_activities_carry_taskid() {
        assert!(Activity::AnalysisUpload.carries_jeditaskid());
        assert!(Activity::ProductionDownload.carries_jeditaskid());
        assert!(!Activity::DataRebalancing.carries_jeditaskid());
        assert!(!Activity::TapeRecall.carries_jeditaskid());
        assert!(!Activity::DataConsolidation.carries_jeditaskid());
    }

    #[test]
    fn download_upload_split() {
        assert!(Activity::AnalysisDownload.is_download());
        assert!(Activity::AnalysisDownloadDirectIo.is_download());
        assert!(!Activity::AnalysisUpload.is_download());
        assert!(!Activity::ProductionUpload.is_download());
    }

    #[test]
    fn production_flag() {
        assert!(Activity::ProductionUpload.is_production());
        assert!(!Activity::AnalysisDownload.is_production());
        assert_eq!(Activity::TABLE1.len(), 5);
    }
}
