//! Property tests for sweep-journal replay.
//!
//! `dmsa sweep --resume` feeds [`dmsa_cli::journal::replay`] whatever a
//! crashed process left on disk — a cleanly closed manifest, a record
//! torn mid-append, a file a cosmic ray visited. Three properties must
//! hold for every input: replay never panics, damage always lands in
//! the frame-error taxonomy (the same stable buckets
//! `proptest_unframe` pins for checkpoints), and the records *before*
//! the damage are always salvaged exactly — resume's adoption set is
//! the intact prefix, nothing more, nothing less.

use dmsa_cli::checkpoint::frame;
use dmsa_cli::journal::{replay, Record};
use proptest::prelude::*;

/// Build a journal byte stream (header + one Dispatched record per
/// label) and the byte offset where each frame starts.
fn build(labels: &[String]) -> (Vec<u8>, Vec<usize>) {
    let header = format!("g\t{:016x}\t{}\t-", 0xfeed_f00d_u64, labels.len());
    let mut bytes = frame(header.as_bytes());
    let mut starts = vec![0usize];
    for l in labels {
        starts.push(bytes.len());
        bytes.extend_from_slice(&frame(format!("d\t{l}").as_bytes()));
    }
    (bytes, starts)
}

/// Which frame (by index into `starts`) contains byte `pos`, and the
/// offset of `pos` within that frame.
fn locate(starts: &[usize], total: usize, pos: usize) -> (usize, usize) {
    let mut frame_idx = 0;
    for (i, &s) in starts.iter().enumerate() {
        if pos >= s && pos < *starts.get(i + 1).unwrap_or(&total) {
            frame_idx = i;
        }
    }
    (frame_idx, pos - starts[frame_idx])
}

/// Classify a replay error / torn-tail note by the stable taxonomy
/// substring it carries (replay wraps the frame codec's message with
/// position context, so this matches on contains, not prefix).
fn bucket(err: &str) -> &'static str {
    for (needle, name) in [
        ("truncated", "truncated"),
        ("bad magic", "magic"),
        ("frame version", "version"),
        ("checksum mismatch", "checksum"),
        ("implausible payload length", "length"),
        ("unparseable record", "record"),
    ] {
        if err.contains(needle) {
            return name;
        }
    }
    "unknown"
}

/// The taxonomy buckets legal for a single corrupted byte at `off`
/// within its frame. Layout: magic[0..8] version[8..12] len[12..20]
/// payload+crc after. A corrupt length field can read as a truncation
/// (declared size disagrees with the stream), an implausible length
/// (checked arithmetic trips), or a checksum mismatch (the shifted crc
/// window no longer matches) — never as a clean parse.
fn flip_bucket_ok(off: usize, got: &str) -> bool {
    match off {
        0..=7 => got == "magic",
        8..=11 => got == "version",
        12..=19 => matches!(got, "truncated" | "length" | "checksum"),
        _ => got == "checksum",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intact_journals_replay_exactly(
        labels in prop::collection::vec("[a-z0-9.-]{1,16}", 0..8),
    ) {
        let (bytes, _) = build(&labels);
        let r = replay(&bytes).expect("intact journal replays");
        prop_assert_eq!(r.header.grid_fingerprint, 0xfeed_f00d);
        prop_assert_eq!(r.header.n_cells, labels.len());
        prop_assert!(r.torn_tail.is_none());
        prop_assert_eq!(r.records.len(), labels.len());
        for (rec, label) in r.records.iter().zip(&labels) {
            prop_assert_eq!(rec, &Record::Dispatched { label: label.clone() });
        }
    }

    #[test]
    fn any_truncation_salvages_exactly_the_intact_prefix(
        labels in prop::collection::vec("[a-z0-9.-]{1,16}", 1..8),
        cut in 0usize..100_000,
    ) {
        let (bytes, starts) = build(&labels);
        let cut = cut % bytes.len(); // strictly shorter
        // A record frame is salvageable only if it ends at or before the
        // cut (frame k spans starts[k]..starts[k+1], the last one ends
        // at the stream's end).
        let total = bytes.len();
        let end_of = |k: usize| if k + 1 < starts.len() { starts[k + 1] } else { total };
        let whole_frames = (1..starts.len()).filter(|&k| end_of(k) <= cut).count();
        let on_boundary = cut == 0 || starts.contains(&cut);
        match replay(&bytes[..cut]) {
            Err(e) => {
                // Damage inside the header frame: nothing salvageable.
                prop_assert_eq!(whole_frames, 0, "cut {}: {}", cut, e);
                prop_assert_eq!(bucket(&e), "truncated", "cut {}: {}", cut, e);
            }
            Ok(r) => {
                // Header survived: the salvage is exactly the records
                // whose frames fit entirely before the cut.
                prop_assert_eq!(r.records.len(), whole_frames, "cut {}", cut);
                for (rec, label) in r.records.iter().zip(&labels) {
                    prop_assert_eq!(rec, &Record::Dispatched { label: label.clone() });
                }
                if on_boundary {
                    prop_assert!(r.torn_tail.is_none(), "cut {} is a frame boundary", cut);
                } else {
                    let tail = r.torn_tail.as_deref().unwrap_or_default();
                    prop_assert_eq!(bucket(tail), "truncated", "cut {}: {}", cut, tail);
                }
            }
        }
    }

    #[test]
    fn single_byte_flips_land_in_the_frame_error_taxonomy(
        labels in prop::collection::vec("[a-z0-9.-]{1,16}", 1..6),
        pos in 0usize..100_000,
        delta in 0u8..255,
    ) {
        let (bytes, starts) = build(&labels);
        let pos = pos % bytes.len();
        let (frame_idx, off) = locate(&starts, bytes.len(), pos);
        let mut bad = bytes.clone();
        bad[pos] ^= delta + 1; // non-zero flip: the byte always changes
        match replay(&bad) {
            Err(e) => {
                prop_assert_eq!(frame_idx, 0, "pos {}: {}", pos, e);
                prop_assert!(flip_bucket_ok(off, bucket(&e)), "pos {} off {}: {}", pos, off, e);
            }
            Ok(r) => {
                // Flipping a record frame never destroys the header, and
                // salvage stops exactly at the damaged frame. (A length
                // flip can also swallow the rest of the stream into one
                // giant declared frame — the crc check still kills it.)
                prop_assert!(frame_idx > 0, "pos {}: header flip must error", pos);
                prop_assert_eq!(r.records.len(), frame_idx - 1, "pos {}", pos);
                let tail = r.torn_tail.as_deref().unwrap_or_default();
                prop_assert!(flip_bucket_ok(off, bucket(tail)), "pos {} off {}: {}", pos, off, tail);
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // Random bytes are an error or (vanishingly unlikely) a valid
        // journal; either way replay must return, not panic.
        let _ = replay(&bytes);
    }

    #[test]
    fn valid_frames_with_garbage_payloads_never_panic(
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // A well-framed stream whose payloads are not journal records:
        // the crc passes, the parse fails, the taxonomy says why.
        let header = frame(format!("g\t{:016x}\t1\t-", 1u64).as_bytes());
        let mut bytes = header;
        bytes.extend_from_slice(&frame(&payload));
        if let Ok(r) = replay(&bytes) {
            if !r.records.is_empty() {
                // Only a payload that really parses as a record counts.
                prop_assert!(r.torn_tail.is_none() || r.records.len() == 1);
            } else {
                let tail = r.torn_tail.as_deref().unwrap_or_default();
                prop_assert_eq!(bucket(tail), "record", "{}", tail);
            }
        }
    }
}
