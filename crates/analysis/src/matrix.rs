//! The site-to-site transfer-volume matrix (Fig 3).
//!
//! Each cell (i, j) holds the total bytes moved from source site i to
//! destination site j over the window. Transfers with an unidentified
//! endpoint aggregate into a dedicated *unknown* row/column, exactly as
//! the paper's "102nd site" does (§3.2). The summary reproduces the
//! imbalance statistics the paper quotes: total volume, the local
//! (diagonal) share, the arithmetic-vs-geometric mean gap across nonzero
//! cells, and the largest outlier cells.

use dmsa_metastore::{MetaStore, Sym};
use dmsa_simcore::interval::Interval;
use dmsa_simcore::stats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense transfer-volume matrix over the sites seen in the data, plus one
/// trailing unknown row/column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransferMatrix {
    /// Site name per row/column index; the last entry is `"unknown"`.
    pub labels: Vec<String>,
    /// `volume[src][dst]` in bytes.
    pub volume: Vec<Vec<u64>>,
    /// Transfers counted.
    pub n_transfers: usize,
}

/// One outlier cell of the matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutlierCell {
    /// Row (source) index.
    pub src: usize,
    /// Column (destination) index.
    pub dst: usize,
    /// Source label.
    pub src_label: String,
    /// Destination label.
    pub dst_label: String,
    /// Bytes in the cell.
    pub bytes: u64,
}

/// Imbalance summary of a matrix (the numbers §3.2 quotes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixSummary {
    /// Total bytes over all cells.
    pub total_bytes: u64,
    /// Bytes on the diagonal (local transfers).
    pub local_bytes: u64,
    /// Arithmetic mean over all site-pair cells (including zeros), bytes.
    pub mean_pair_bytes: f64,
    /// Geometric mean over nonzero cells, bytes.
    pub geo_mean_pair_bytes: f64,
    /// Count of site pairs with any volume.
    pub n_nonzero_pairs: usize,
}

impl TransferMatrix {
    /// Build the matrix from recorded transfer metadata within `window`.
    ///
    /// Site identity is taken from the *recorded* source/destination;
    /// anything that is not a valid site name lands in the unknown
    /// row/column.
    pub fn build(store: &MetaStore, window: Interval) -> Self {
        // Stable site ordering: registration (topology) order.
        let mut index_of: HashMap<Sym, usize> = HashMap::new();
        let mut labels: Vec<String> = Vec::new();
        let mut sites: Vec<Sym> = store.valid_sites.iter().copied().collect();
        sites.sort_unstable();
        for sym in sites {
            index_of.insert(sym, labels.len());
            labels.push(store.name(sym).to_string());
        }
        let unknown_idx = labels.len();
        labels.push("unknown".to_string());

        let n = labels.len();
        let mut volume = vec![vec![0u64; n]; n];
        let mut n_transfers = 0usize;
        for t in store.transfers_in(window) {
            let src = *index_of.get(&t.source_site).unwrap_or(&unknown_idx);
            let dst = *index_of.get(&t.destination_site).unwrap_or(&unknown_idx);
            volume[src][dst] += t.file_size;
            n_transfers += 1;
        }
        TransferMatrix {
            labels,
            volume,
            n_transfers,
        }
    }

    /// Number of rows/columns (sites + unknown).
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Index of the unknown aggregate row/column.
    pub fn unknown_index(&self) -> usize {
        self.labels.len() - 1
    }

    /// Imbalance summary.
    pub fn summary(&self) -> MatrixSummary {
        let mut total = 0u64;
        let mut local = 0u64;
        let mut nonzero: Vec<f64> = Vec::new();
        let n = self.n();
        for i in 0..n {
            for j in 0..n {
                let v = self.volume[i][j];
                total += v;
                if i == j {
                    local += v;
                }
                if v > 0 {
                    nonzero.push(v as f64);
                }
            }
        }
        MatrixSummary {
            total_bytes: total,
            local_bytes: local,
            mean_pair_bytes: total as f64 / (n * n) as f64,
            geo_mean_pair_bytes: stats::geometric_mean(&nonzero).unwrap_or(0.0),
            n_nonzero_pairs: nonzero.len(),
        }
    }

    /// The `k` largest cells, descending.
    pub fn top_outliers(&self, k: usize) -> Vec<OutlierCell> {
        let mut cells: Vec<OutlierCell> = Vec::new();
        for (i, row) in self.volume.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v > 0 {
                    cells.push(OutlierCell {
                        src: i,
                        dst: j,
                        src_label: self.labels[i].clone(),
                        dst_label: self.labels[j].clone(),
                        bytes: v,
                    });
                }
            }
        }
        cells.sort_by_key(|c| std::cmp::Reverse(c.bytes));
        cells.truncate(k);
        cells
    }

    /// Volume flowing into the unknown row/column (either endpoint).
    pub fn unknown_bytes(&self) -> u64 {
        let u = self.unknown_index();
        let row: u64 = self.volume[u].iter().sum();
        let col: u64 = self.volume.iter().map(|r| r[u]).sum();
        // The (u, u) cell is in both; count it once.
        row + col - self.volume[u][u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_metastore::{SymbolTable, TransferRecord};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::SimTime;

    fn store_with(volumes: &[(&str, &str, u64)]) -> MetaStore {
        let mut store = MetaStore::new();
        for (i, &(src, dst, bytes)) in volumes.iter().enumerate() {
            let s = if src == "?" {
                SymbolTable::UNKNOWN
            } else {
                store.register_site(src)
            };
            let d = if dst == "?" {
                SymbolTable::UNKNOWN
            } else {
                store.register_site(dst)
            };
            store.transfers.push(TransferRecord {
                transfer_id: i as u64,
                lfn: SymbolTable::UNKNOWN,
                dataset: SymbolTable::UNKNOWN,
                proddblock: SymbolTable::UNKNOWN,
                scope: SymbolTable::UNKNOWN,
                file_size: bytes,
                starttime: SimTime::from_secs(10),
                endtime: SimTime::from_secs(20),
                source_site: s,
                destination_site: d,
                activity: Activity::DataRebalancing,
                jeditaskid: None,
                is_download: false,
                is_upload: false,
                attempt: 1,
                succeeded: true,
                gt_pandaid: None,
                gt_source_site: s,
                gt_destination_site: d,
                gt_file_size: bytes,
            });
        }
        store
    }

    fn window() -> Interval {
        Interval::new(SimTime::EPOCH, SimTime::from_secs(100))
    }

    #[test]
    fn diagonal_and_offdiagonal_volumes() {
        let store = store_with(&[("A", "A", 100), ("A", "B", 30), ("B", "A", 20)]);
        let m = TransferMatrix::build(&store, window());
        let s = m.summary();
        assert_eq!(s.total_bytes, 150);
        assert_eq!(s.local_bytes, 100);
        assert_eq!(s.n_nonzero_pairs, 3);
        assert_eq!(m.n_transfers, 3);
    }

    #[test]
    fn unknown_endpoints_aggregate_to_last_index() {
        let store = store_with(&[("A", "?", 50), ("?", "A", 25)]);
        let m = TransferMatrix::build(&store, window());
        let u = m.unknown_index();
        assert_eq!(m.labels[u], "unknown");
        // A is the only valid site => index 0.
        assert_eq!(m.volume[0][u], 50);
        assert_eq!(m.volume[u][0], 25);
        assert_eq!(m.unknown_bytes(), 75);
    }

    #[test]
    fn invalid_names_count_as_unknown() {
        let mut store = store_with(&[("A", "A", 10)]);
        // Retarget the transfer's destination to a garbage symbol.
        let garbage = store.symbols.intern("s1te-g@rbage");
        store.transfers[0].destination_site = garbage;
        let m = TransferMatrix::build(&store, window());
        let u = m.unknown_index();
        assert_eq!(m.volume[0][u], 10);
    }

    #[test]
    fn outliers_sorted_descending() {
        let store = store_with(&[("A", "A", 5), ("B", "B", 500), ("A", "B", 50)]);
        let m = TransferMatrix::build(&store, window());
        let top = m.top_outliers(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].bytes, 500);
        assert_eq!(top[0].src_label, "B");
        assert_eq!(top[1].bytes, 50);
    }

    #[test]
    fn geometric_mean_far_below_mean_on_skew() {
        let store = store_with(&[
            ("A", "A", 1_000_000_000),
            ("A", "B", 10),
            ("B", "A", 10),
            ("B", "B", 10),
        ]);
        let m = TransferMatrix::build(&store, window());
        let s = m.summary();
        assert!(s.mean_pair_bytes * (m.n() * m.n()) as f64 >= 1e9);
        assert!(s.geo_mean_pair_bytes < 100_000.0);
    }

    #[test]
    fn window_filters_transfers() {
        let mut store = store_with(&[("A", "A", 100)]);
        store.transfers[0].starttime = SimTime::from_secs(500); // outside
        let m = TransferMatrix::build(&store, window());
        assert_eq!(m.summary().total_bytes, 0);
        assert_eq!(m.n_transfers, 0);
    }
}
