//! # dmsa-cli
//!
//! Library backing the `dmsa` command-line tool: a serializable campaign
//! export format plus the subcommand implementations, kept in the library
//! so they are unit-testable without process spawning.
//!
//! ```text
//! dmsa simulate --preset 8day --scale 0.02 --seed 42 --out campaign.json
//! dmsa simulate --preset faulty --checkpoint-dir ckpts --resume --out campaign.json
//! dmsa match    --campaign campaign.json --method rm2 --out matches.json
//! dmsa analyze  --campaign campaign.json --matches matches.json --report summary
//! dmsa analyze  --campaign damaged.json --quarantine-report --report summary
//! ```
//!
//! Robustness spine: every file output goes through [`atomic`] (temp +
//! fsync + rename, so crashes never tear an output), long campaigns
//! snapshot through [`checkpoint`] (framed, checksummed, rotated,
//! resume falls back past damage), and campaign loading via
//! [`export::CampaignExport::from_json_lenient`] quarantines malformed
//! records by error kind instead of dying on the first one. The durable
//! steps themselves route through [`vfs`], whose chaos backend injects
//! deterministic storage faults (ENOSPC, EIO, torn writes, fsync and
//! rename failures) for drills, and [`verify`] audits the artifacts a
//! drill leaves behind.

pub mod atomic;
pub mod checkpoint;
pub mod export;
pub mod journal;
pub mod json;
pub mod run;
pub mod serve;
pub mod signals;
pub mod sweep;
pub mod verify;
pub mod vfs;

pub use export::CampaignExport;
