//! Matched-transfer breakdown by activity (Table 1).

use dmsa_core::MatchSet;
use dmsa_metastore::MetaStore;
use dmsa_rucio_sim::Activity;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One row of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActivityRow {
    /// Activity class.
    pub activity: Activity,
    /// Distinct matched transfers of this activity.
    pub matched: usize,
    /// Total transfers of this activity carrying a `jeditaskid`.
    pub total: usize,
}

impl ActivityRow {
    /// Matched percentage (0 when the activity has no transfers).
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.matched as f64 / self.total as f64
        }
    }
}

/// The full table: one row per Table 1 activity, plus the totals row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActivityBreakdown {
    /// Rows in the paper's order.
    pub rows: Vec<ActivityRow>,
}

impl ActivityBreakdown {
    /// Build Table 1 from a match set. Denominators count transfers with a
    /// recorded `jeditaskid` (the paper's 1,585,229); numerators count
    /// distinct matched transfers.
    pub fn build(store: &MetaStore, set: &MatchSet) -> Self {
        let matched_ids: HashSet<u32> = set
            .jobs
            .iter()
            .flat_map(|j| j.transfers.iter().copied())
            .collect();

        let rows = Activity::TABLE1
            .iter()
            .map(|&activity| {
                let mut total = 0;
                let mut matched = 0;
                for (i, t) in store.transfers.iter().enumerate() {
                    if t.activity != activity || t.jeditaskid.is_none() {
                        continue;
                    }
                    total += 1;
                    if matched_ids.contains(&(i as u32)) {
                        matched += 1;
                    }
                }
                ActivityRow {
                    activity,
                    matched,
                    total,
                }
            })
            .collect();
        ActivityBreakdown { rows }
    }

    /// Totals across rows `(matched, total)`.
    pub fn totals(&self) -> (usize, usize) {
        self.rows
            .iter()
            .fold((0, 0), |(m, t), r| (m + r.matched, t + r.total))
    }

    /// Row by activity.
    pub fn row(&self, activity: Activity) -> Option<&ActivityRow> {
        self.rows.iter().find(|r| r.activity == activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_core::{MatchMethod, MatchedJob};
    use dmsa_metastore::{SymbolTable, TransferRecord};
    use dmsa_simcore::SimTime;

    fn transfer(id: u64, activity: Activity, taskid: Option<u64>) -> TransferRecord {
        TransferRecord {
            transfer_id: id,
            lfn: SymbolTable::UNKNOWN,
            dataset: SymbolTable::UNKNOWN,
            proddblock: SymbolTable::UNKNOWN,
            scope: SymbolTable::UNKNOWN,
            file_size: 1,
            starttime: SimTime::from_secs(0),
            endtime: SimTime::from_secs(1),
            source_site: SymbolTable::UNKNOWN,
            destination_site: SymbolTable::UNKNOWN,
            activity,
            jeditaskid: taskid,
            is_download: activity.is_download(),
            is_upload: !activity.is_download() && activity.carries_jeditaskid(),
            attempt: 1,
            succeeded: true,
            gt_pandaid: None,
            gt_source_site: SymbolTable::UNKNOWN,
            gt_destination_site: SymbolTable::UNKNOWN,
            gt_file_size: 1,
        }
    }

    #[test]
    fn breakdown_counts_and_percentages() {
        let mut store = MetaStore::new();
        store
            .transfers
            .push(transfer(0, Activity::AnalysisDownload, Some(1))); // matched
        store
            .transfers
            .push(transfer(1, Activity::AnalysisDownload, Some(1))); // unmatched
        store
            .transfers
            .push(transfer(2, Activity::AnalysisUpload, Some(1))); // matched
        store
            .transfers
            .push(transfer(3, Activity::ProductionUpload, Some(2))); // never matched
        store
            .transfers
            .push(transfer(4, Activity::DataRebalancing, None)); // not in table
        let set = MatchSet {
            method: MatchMethod::Exact,
            jobs: vec![MatchedJob {
                job_idx: 0,
                transfers: vec![0, 2],
            }],
        };
        let table = ActivityBreakdown::build(&store, &set);
        let ad = table.row(Activity::AnalysisDownload).unwrap();
        assert_eq!((ad.matched, ad.total), (1, 2));
        assert!((ad.percent() - 50.0).abs() < 1e-9);
        let au = table.row(Activity::AnalysisUpload).unwrap();
        assert_eq!((au.matched, au.total), (1, 1));
        let pu = table.row(Activity::ProductionUpload).unwrap();
        assert_eq!((pu.matched, pu.total), (0, 1));
        assert_eq!(pu.percent(), 0.0);
        assert_eq!(table.totals(), (2, 4));
    }

    #[test]
    fn transfers_without_taskid_are_excluded_from_denominators() {
        let mut store = MetaStore::new();
        store
            .transfers
            .push(transfer(0, Activity::AnalysisDownload, None));
        let set = MatchSet {
            method: MatchMethod::Exact,
            jobs: vec![],
        };
        let table = ActivityBreakdown::build(&store, &set);
        assert_eq!(table.row(Activity::AnalysisDownload).unwrap().total, 0);
    }

    #[test]
    fn duplicate_matches_count_once() {
        let mut store = MetaStore::new();
        store
            .transfers
            .push(transfer(0, Activity::AnalysisDownload, Some(1)));
        let set = MatchSet {
            method: MatchMethod::Rm2,
            jobs: vec![
                MatchedJob {
                    job_idx: 0,
                    transfers: vec![0],
                },
                MatchedJob {
                    job_idx: 1,
                    transfers: vec![0],
                },
            ],
        };
        let table = ActivityBreakdown::build(&store, &set);
        assert_eq!(table.row(Activity::AnalysisDownload).unwrap().matched, 1);
    }
}
