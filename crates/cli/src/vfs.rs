//! `dmsa::vfs` — a seeded, deterministic fault-injecting I/O layer.
//!
//! Every durable artifact the tool produces — checkpoints, campaign
//! exports, sweep cell outputs, sweep summaries — is written through an
//! [`IoBackend`]. [`RealBackend`] is the plain filesystem.
//! [`ChaosBackend`] wraps it and injects the storage faults a multi-day
//! campaign will eventually meet in production: `ENOSPC`, `EIO`, torn
//! (short) writes that *report success*, fsync failures, and rename
//! failures.
//!
//! ## Fault-schedule determinism
//!
//! A chaos drill must replay byte-identically, or its failures cannot be
//! debugged. The schedule is therefore **not** drawn from a shared
//! stateful RNG (thread interleaving would perturb it); each decision is
//! a pure function of
//!
//! ```text
//! (profile seed, op kind, artifact file name, per-artifact op ordinal)
//! ```
//!
//! hashed into a dedicated one-shot [`SimRng`] stream. Two runs with the
//! same profile fault the same operations on the same files in the same
//! order, no matter how sweep workers or serve threads interleave —
//! the same stateless-oracle discipline `gridnet::faults` uses for grid
//! outages.
//!
//! ## Degradation contract
//!
//! The backend *injects*; it never decides policy. Callers degrade:
//! checkpoint writes retry with backoff and then skip the snapshot
//! (latching [`StorageHealth::degraded`]), sweep cells quarantine with a
//! structured `storage:` reason, serve reloads roll back. The one
//! deliberately silent fault is the torn write — it models a lying disk,
//! and is exactly what `dmsa verify` and the checksum frames exist to
//! catch after the fact.

use dmsa_simcore::fx::hash_bytes;
use dmsa_simcore::SimRng;
use rand::RngCore;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The storage faults the chaos backend can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Write fails with `ENOSPC` after landing a partial prefix — the
    /// classic full-disk failure mode.
    Enospc,
    /// Read or write fails with `EIO`.
    Eio,
    /// Write lands only a prefix of the bytes but **reports success** —
    /// a lying disk / lost-write. Only checksums catch this later.
    TornWrite,
    /// `fsync` fails (`EIO`); the data may or may not be durable.
    FsyncFail,
    /// `rename` fails (`EIO`); the new file is never published.
    RenameFail,
}

impl FaultKind {
    /// Stable one-byte tag mixed into the schedule hash.
    fn tag(self) -> u8 {
        match self {
            FaultKind::Enospc => 1,
            FaultKind::Eio => 2,
            FaultKind::TornWrite => 3,
            FaultKind::FsyncFail => 4,
            FaultKind::RenameFail => 5,
        }
    }

    /// Human label used in injected error messages and drill reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::TornWrite => "torn",
            FaultKind::FsyncFail => "fsync",
            FaultKind::RenameFail => "rename",
        }
    }
}

/// A seeded chaos drill: per-fault probabilities, all applied per
/// operation. Parsed from `--chaos-profile`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosProfile {
    /// Seed of the dedicated fault-schedule stream.
    pub seed: u64,
    /// P(write fails with ENOSPC, partial prefix landed).
    pub p_enospc: f64,
    /// P(read/write fails with EIO).
    pub p_eio: f64,
    /// P(write silently lands only a prefix).
    pub p_torn: f64,
    /// P(fsync fails).
    pub p_fsync: f64,
    /// P(rename fails).
    pub p_rename: f64,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            seed: 0,
            p_enospc: 0.0,
            p_eio: 0.0,
            p_torn: 0.0,
            p_fsync: 0.0,
            p_rename: 0.0,
        }
    }
}

impl ChaosProfile {
    /// Parse a `--chaos-profile` spec: comma-separated `key=value` pairs
    /// with keys `seed`, `enospc`, `eio`, `torn`, `fsync`, `rename`.
    /// Example: `seed=42,enospc=0.2,torn=0.1`.
    pub fn parse(s: &str) -> Result<ChaosProfile, String> {
        let mut p = ChaosProfile::default();
        for part in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos profile part {part:?} (want key=value)"))?;
            let prob = |v: &str| -> Result<f64, String> {
                match v.parse::<f64>() {
                    Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
                    _ => Err(format!("bad chaos probability {v:?} (want 0..=1)")),
                }
            };
            match key {
                "seed" => {
                    p.seed = value
                        .parse()
                        .map_err(|e| format!("bad chaos seed {value:?}: {e}"))?
                }
                "enospc" => p.p_enospc = prob(value)?,
                "eio" => p.p_eio = prob(value)?,
                "torn" => p.p_torn = prob(value)?,
                "fsync" => p.p_fsync = prob(value)?,
                "rename" => p.p_rename = prob(value)?,
                other => {
                    return Err(format!(
                        "unknown chaos knob {other:?} (seed|enospc|eio|torn|fsync|rename)"
                    ))
                }
            }
        }
        Ok(p)
    }

    fn probability(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Enospc => self.p_enospc,
            FaultKind::Eio => self.p_eio,
            FaultKind::TornWrite => self.p_torn,
            FaultKind::FsyncFail => self.p_fsync,
            FaultKind::RenameFail => self.p_rename,
        }
    }
}

/// The durable-I/O primitives every artifact writer goes through.
/// [`crate::atomic::write_atomic_via`] composes them into the
/// temp+fsync+rename pipeline; [`crate::checkpoint::CheckpointDir`] adds
/// rotation and directory fsync on top.
pub trait IoBackend: Send + Sync {
    /// Write all of `bytes` to an open file. `path` is the artifact the
    /// schedule keys on (the *destination*, not the temp name).
    fn write_all(&self, f: &mut File, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Make the file's blocks durable (`File::sync_all`).
    fn sync(&self, f: &File, path: &Path) -> io::Result<()>;
    /// Atomically publish `from` as `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Delete a file (checkpoint rotation).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// fsync a directory, making renames/unlinks in it durable.
    /// Best-effort on filesystems that refuse directory handles.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The plain filesystem.
pub struct RealBackend;

impl IoBackend for RealBackend {
    fn write_all(&self, f: &mut File, _path: &Path, bytes: &[u8]) -> io::Result<()> {
        f.write_all(bytes)
    }

    fn sync(&self, f: &File, _path: &Path) -> io::Result<()> {
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let d = File::open(dir)?;
        d.sync_all()
    }
}

/// Per-kind counters of faults actually injected — the drill's ground
/// truth (tests assert `dmsa verify` finds every torn artifact this
/// records).
#[derive(Default)]
pub struct InjectedFaults {
    pub enospc: AtomicU64,
    pub eio: AtomicU64,
    pub torn: AtomicU64,
    pub fsync: AtomicU64,
    pub rename: AtomicU64,
}

impl InjectedFaults {
    fn bump(&self, kind: FaultKind) {
        match kind {
            FaultKind::Enospc => &self.enospc,
            FaultKind::Eio => &self.eio,
            FaultKind::TornWrite => &self.torn,
            FaultKind::FsyncFail => &self.fsync,
            FaultKind::RenameFail => &self.rename,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Total faults injected so far.
    pub fn total(&self) -> u64 {
        self.enospc.load(Ordering::Relaxed)
            + self.eio.load(Ordering::Relaxed)
            + self.torn.load(Ordering::Relaxed)
            + self.fsync.load(Ordering::Relaxed)
            + self.rename.load(Ordering::Relaxed)
    }

    /// One-line drill report (`enospc 3 | eio 0 | ...`).
    pub fn one_line(&self) -> String {
        format!(
            "enospc {} | eio {} | torn {} | fsync {} | rename {}",
            self.enospc.load(Ordering::Relaxed),
            self.eio.load(Ordering::Relaxed),
            self.torn.load(Ordering::Relaxed),
            self.fsync.load(Ordering::Relaxed),
            self.rename.load(Ordering::Relaxed),
        )
    }
}

/// Fault-injecting wrapper over [`RealBackend`].
pub struct ChaosBackend {
    profile: ChaosProfile,
    inner: RealBackend,
    /// Per `(op-kind-tag, artifact name)` operation ordinals. Keyed on
    /// the artifact name (not the full path) so a drill replays
    /// identically out of different scratch directories.
    ordinals: Mutex<HashMap<(u8, String), u64>>,
    /// Ground truth of what was injected.
    pub injected: InjectedFaults,
    /// Names of artifacts a torn write silently damaged (`dmsa verify`
    /// must find every one of these).
    pub torn_files: Mutex<Vec<String>>,
}

/// Operation classes that draw from the schedule. Distinct from
/// [`FaultKind`]: one write op draws for several fault kinds.
#[derive(Clone, Copy)]
enum OpClass {
    Write,
    Sync,
    Rename,
    Read,
}

impl OpClass {
    fn tag(self) -> u8 {
        match self {
            OpClass::Write => 10,
            OpClass::Sync => 11,
            OpClass::Rename => 12,
            OpClass::Read => 13,
        }
    }
}

impl ChaosBackend {
    pub fn new(profile: ChaosProfile) -> ChaosBackend {
        ChaosBackend {
            profile,
            inner: RealBackend,
            ordinals: Mutex::new(HashMap::new()),
            injected: InjectedFaults::default(),
            torn_files: Mutex::new(Vec::new()),
        }
    }

    /// The artifact name the schedule keys on.
    fn name_of(path: &Path) -> String {
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string()
    }

    /// Claim the next ordinal for `(op, name)`.
    fn next_ordinal(&self, op: OpClass, name: &str) -> u64 {
        let mut map = self.ordinals.lock().expect("ordinal map poisoned");
        let slot = map.entry((op.tag(), name.to_string())).or_insert(0);
        let n = *slot;
        *slot += 1;
        n
    }

    /// The dedicated fault-schedule stream: one deterministic draw per
    /// `(op, artifact, ordinal, fault-kind)` decision point.
    fn draw(&self, op: OpClass, name: &str, ordinal: u64, kind: FaultKind) -> u64 {
        let mut key = Vec::with_capacity(name.len() + 11);
        key.push(op.tag());
        key.push(kind.tag());
        key.extend_from_slice(&ordinal.to_le_bytes());
        key.extend_from_slice(name.as_bytes());
        let mut stream = SimRng::seed_from_u64(self.profile.seed ^ hash_bytes(&key));
        stream.next_u64()
    }

    /// Should this decision point fault? Compares the draw against the
    /// probability scaled to the u64 range.
    fn fires(&self, op: OpClass, name: &str, ordinal: u64, kind: FaultKind) -> bool {
        let p = self.profile.probability(kind);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (u64::MAX as f64)) as u64;
        self.draw(op, name, ordinal, kind) < threshold
    }

    /// Deterministic torn-prefix length in `1..len`.
    fn torn_len(&self, name: &str, ordinal: u64, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        let r = self.draw(OpClass::Write, name, ordinal, FaultKind::TornWrite);
        // Rotate so the cut point is independent of the fires() compare.
        1 + (r.rotate_left(17) as usize) % (len - 1)
    }

    fn enospc(detail: String) -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, detail)
    }

    fn eio(detail: String) -> io::Error {
        io::Error::other(detail)
    }
}

impl IoBackend for ChaosBackend {
    fn write_all(&self, f: &mut File, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = Self::name_of(path);
        let ordinal = self.next_ordinal(OpClass::Write, &name);
        if self.fires(OpClass::Write, &name, ordinal, FaultKind::Enospc) {
            // Realistic ENOSPC: a prefix lands, then the device is full.
            self.injected.bump(FaultKind::Enospc);
            let half = bytes.len() / 2;
            self.inner.write_all(f, path, &bytes[..half])?;
            return Err(Self::enospc(format!(
                "injected ENOSPC writing {name} (op {ordinal}): no space left on device"
            )));
        }
        if self.fires(OpClass::Write, &name, ordinal, FaultKind::Eio) {
            self.injected.bump(FaultKind::Eio);
            return Err(Self::eio(format!(
                "injected EIO writing {name} (op {ordinal}): input/output error"
            )));
        }
        if self.fires(OpClass::Write, &name, ordinal, FaultKind::TornWrite) {
            // The lying disk: a prefix lands, success is reported.
            self.injected.bump(FaultKind::TornWrite);
            let cut = self.torn_len(&name, ordinal, bytes.len());
            self.torn_files
                .lock()
                .expect("torn list poisoned")
                .push(name.clone());
            return self.inner.write_all(f, path, &bytes[..cut]);
        }
        self.inner.write_all(f, path, bytes)
    }

    fn sync(&self, f: &File, path: &Path) -> io::Result<()> {
        let name = Self::name_of(path);
        let ordinal = self.next_ordinal(OpClass::Sync, &name);
        if self.fires(OpClass::Sync, &name, ordinal, FaultKind::FsyncFail) {
            self.injected.bump(FaultKind::FsyncFail);
            return Err(Self::eio(format!(
                "injected fsync failure on {name} (op {ordinal})"
            )));
        }
        self.inner.sync(f, path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let name = Self::name_of(to);
        let ordinal = self.next_ordinal(OpClass::Rename, &name);
        if self.fires(OpClass::Rename, &name, ordinal, FaultKind::RenameFail) {
            self.injected.bump(FaultKind::RenameFail);
            return Err(Self::eio(format!(
                "injected rename failure publishing {name} (op {ordinal})"
            )));
        }
        self.inner.rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let name = Self::name_of(path);
        let ordinal = self.next_ordinal(OpClass::Read, &name);
        if self.fires(OpClass::Read, &name, ordinal, FaultKind::Eio) {
            self.injected.bump(FaultKind::Eio);
            return Err(Self::eio(format!(
                "injected EIO reading {name} (op {ordinal})"
            )));
        }
        self.inner.read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        // Rotation deletions are left real: a failed unlink only delays
        // pruning, which the next rotation retries anyway.
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let name = Self::name_of(dir);
        let ordinal = self.next_ordinal(OpClass::Sync, &name);
        if self.fires(OpClass::Sync, &name, ordinal, FaultKind::FsyncFail) {
            self.injected.bump(FaultKind::FsyncFail);
            return Err(Self::eio(format!(
                "injected directory fsync failure on {name} (op {ordinal})"
            )));
        }
        self.inner.sync_dir(dir)
    }
}

/// Resolve a profile into a backend: `None` is the real filesystem.
pub fn backend_for(profile: Option<&ChaosProfile>) -> Arc<dyn IoBackend> {
    match profile {
        None => Arc::new(RealBackend),
        Some(p) => Arc::new(ChaosBackend::new(*p)),
    }
}

// ---------------------------------------------------------------------------
// Degradation helpers: retry with backoff + the degraded-storage latch
// ---------------------------------------------------------------------------

/// Bounded exponential backoff for durable writes that may hit transient
/// storage faults (ENOSPC while a reaper frees space, a flaky mount).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoRetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Cap on a single delay.
    pub max_delay: Duration,
}

impl Default for IoRetryPolicy {
    fn default() -> Self {
        IoRetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl IoRetryPolicy {
    /// A fast policy for tests (1 ms base delay).
    pub fn fast() -> IoRetryPolicy {
        IoRetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
        }
    }

    /// The capped exponential delay before retry number `retry`
    /// (1-based: `delay_for(1)` precedes the second attempt). Shared by
    /// [`with_retry`]'s per-write backoff and the sweep's cell-level
    /// retry, so both ladders pace identically.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(20);
        self.base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay)
    }
}

/// Run `op` under `policy`, pausing with exponential backoff between
/// attempts and reporting each retry through `note`. Returns the final
/// error only after the budget is exhausted.
pub fn with_retry<T>(
    policy: &IoRetryPolicy,
    what: &str,
    note: &mut dyn FnMut(String),
    mut op: impl FnMut() -> Result<T, String>,
) -> Result<T, String> {
    let mut last = String::new();
    for attempt in 1..=policy.attempts.max(1) {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = e;
                if attempt < policy.attempts {
                    let delay = policy.delay_for(attempt);
                    note(format!(
                        "{what}: attempt {attempt}/{} failed ({last}); retrying in {} ms",
                        policy.attempts,
                        delay.as_millis()
                    ));
                    std::thread::sleep(delay);
                }
            }
        }
    }
    Err(last)
}

/// The degraded-storage latch a long run carries: once any durable write
/// exhausts its retries, the run keeps going but reports itself degraded
/// in its summary — never a silent loss, never an abort.
#[derive(Debug, Default)]
pub struct StorageHealth {
    degraded: AtomicBool,
    /// Checkpoint writes abandoned after the retry budget.
    pub checkpoints_skipped: AtomicU64,
    /// Durable writes that needed at least one retry.
    pub retried_writes: AtomicU64,
}

impl StorageHealth {
    /// Latch the degraded flag (idempotent).
    pub fn mark_degraded(&self) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Has any durable write exhausted its retries?
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// One-line summary for stderr / health replies.
    pub fn summary(&self) -> String {
        format!(
            "degraded_storage={} checkpoints_skipped={} retried_writes={}",
            self.degraded(),
            self.checkpoints_skipped.load(Ordering::Relaxed),
            self.retried_writes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmsa-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_via(io: &dyn IoBackend, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        io.write_all(&mut f, path, bytes)
    }

    #[test]
    fn profile_parsing() {
        let p = ChaosProfile::parse("seed=7,enospc=0.2,torn=0.1").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.p_enospc, 0.2);
        assert_eq!(p.p_torn, 0.1);
        assert_eq!(p.p_eio, 0.0);
        assert!(ChaosProfile::parse("enospc=1.5").is_err());
        assert!(ChaosProfile::parse("seed=x").is_err());
        assert!(ChaosProfile::parse("gamma=0.1").is_err());
        assert!(ChaosProfile::parse("seed").is_err());
        // Blank spec is the all-zero (inert) profile.
        assert_eq!(ChaosProfile::parse("").unwrap(), ChaosProfile::default());
    }

    #[test]
    fn fault_schedule_is_deterministic_and_order_independent() {
        let profile = ChaosProfile {
            seed: 42,
            p_enospc: 0.3,
            p_torn: 0.2,
            ..ChaosProfile::default()
        };
        // Two backends, operations issued in different file orders, must
        // agree on every per-file fault decision.
        let a = ChaosBackend::new(profile);
        let b = ChaosBackend::new(profile);
        let files = ["x.json", "y.json", "z.dmsa"];
        let mut decisions_a = Vec::new();
        for name in &files {
            for _ in 0..20 {
                let ord = a.next_ordinal(OpClass::Write, name);
                decisions_a.push(a.fires(OpClass::Write, name, ord, FaultKind::Enospc));
            }
        }
        let mut decisions_b = Vec::new();
        // Interleave round-robin instead of file-major.
        let mut ords = [0u64; 3];
        let mut per_file: Vec<Vec<bool>> = vec![Vec::new(); 3];
        for _ in 0..20 {
            for (i, name) in files.iter().enumerate() {
                let ord = b.next_ordinal(OpClass::Write, name);
                assert_eq!(ord, ords[i]);
                ords[i] += 1;
                per_file[i].push(b.fires(OpClass::Write, name, ord, FaultKind::Enospc));
            }
        }
        for row in per_file {
            decisions_b.extend(row);
        }
        assert_eq!(decisions_a, decisions_b);
        // And the schedule actually fires somewhere at p=0.3 over 60 ops.
        assert!(
            decisions_a.iter().any(|&d| d),
            "p=0.3 never fired in 60 ops"
        );
        assert!(!decisions_a.iter().all(|&d| d), "p=0.3 always fired");
    }

    #[test]
    fn enospc_lands_a_prefix_then_errors() {
        let dir = scratch("enospc");
        let io = ChaosBackend::new(ChaosProfile {
            seed: 1,
            p_enospc: 1.0,
            ..ChaosProfile::default()
        });
        let path = dir.join("victim.bin");
        let err = write_via(&io, &path, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        // Half the payload landed: the torn state a crash would leave.
        assert_eq!(fs::read(&path).unwrap(), b"01234");
        assert_eq!(io.injected.enospc.load(Ordering::Relaxed), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_reports_success_but_lands_a_prefix() {
        let dir = scratch("torn");
        let io = ChaosBackend::new(ChaosProfile {
            seed: 3,
            p_torn: 1.0,
            ..ChaosProfile::default()
        });
        let path = dir.join("lying.bin");
        let payload = vec![0xAB; 1000];
        write_via(&io, &path, &payload).unwrap(); // success!
        let on_disk = fs::read(&path).unwrap();
        assert!(on_disk.len() < payload.len(), "write was not torn");
        assert!(!on_disk.is_empty(), "torn write landed nothing");
        assert_eq!(
            io.torn_files.lock().unwrap().as_slice(),
            &["lying.bin".to_string()]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_rename_and_read_faults_fire() {
        let dir = scratch("misc");
        let io = ChaosBackend::new(ChaosProfile {
            seed: 5,
            p_fsync: 1.0,
            p_rename: 1.0,
            p_eio: 1.0,
            ..ChaosProfile::default()
        });
        let path = dir.join("a.bin");
        fs::write(&path, b"data").unwrap();
        let f = File::open(&path).unwrap();
        assert!(io.sync(&f, &path).is_err());
        assert!(io.rename(&path, &dir.join("b.bin")).is_err());
        assert!(io.read(&path).is_err());
        assert_eq!(io.injected.fsync.load(Ordering::Relaxed), 1);
        assert_eq!(io.injected.rename.load(Ordering::Relaxed), 1);
        assert!(io.injected.eio.load(Ordering::Relaxed) >= 1);
        assert!(io.injected.total() >= 3);
        assert!(io.injected.one_line().contains("fsync 1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inert_profile_injects_nothing() {
        let dir = scratch("inert");
        let io = ChaosBackend::new(ChaosProfile {
            seed: 9,
            ..ChaosProfile::default()
        });
        let path = dir.join("clean.bin");
        for _ in 0..50 {
            write_via(&io, &path, b"payload").unwrap();
        }
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert_eq!(io.injected.total(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_succeeds_after_transient_faults_and_reports_each_attempt() {
        let mut notes = Vec::new();
        let mut left = 2u32;
        let out = with_retry(
            &IoRetryPolicy::fast(),
            "checkpoint write",
            &mut |l| notes.push(l),
            || {
                if left > 0 {
                    left -= 1;
                    Err("injected ENOSPC".into())
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out, Ok(7));
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("attempt 1/4"), "{notes:?}");
        assert!(notes[0].contains("retrying"), "{notes:?}");
    }

    #[test]
    fn retry_exhausts_and_returns_the_last_error() {
        let mut notes = Vec::new();
        let out: Result<(), String> = with_retry(
            &IoRetryPolicy::fast(),
            "export write",
            &mut |l| notes.push(l),
            || Err("still full".into()),
        );
        assert_eq!(out, Err("still full".to_string()));
        assert_eq!(notes.len(), 3, "retries = attempts - 1: {notes:?}");
    }

    #[test]
    fn delay_ladder_doubles_and_caps() {
        let p = IoRetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        };
        assert_eq!(p.delay_for(1), Duration::from_millis(50));
        assert_eq!(p.delay_for(2), Duration::from_millis(100));
        assert_eq!(p.delay_for(3), Duration::from_millis(200));
        assert_eq!(p.delay_for(6), Duration::from_millis(1600));
        assert_eq!(p.delay_for(7), Duration::from_secs(2), "cap");
        assert_eq!(p.delay_for(100), Duration::from_secs(2), "no overflow");
    }

    #[test]
    fn storage_health_latches() {
        let h = StorageHealth::default();
        assert!(!h.degraded());
        h.checkpoints_skipped.fetch_add(1, Ordering::Relaxed);
        h.mark_degraded();
        assert!(h.degraded());
        h.mark_degraded(); // idempotent
        assert!(h.degraded());
        assert!(h.summary().contains("degraded_storage=true"));
        assert!(h.summary().contains("checkpoints_skipped=1"));
    }
}
