//! Cross-run aggregation for ablation sweeps.
//!
//! A sweep produces one campaign per grid cell; this module reduces the
//! fleet to per-knob statistics. [`cell_metrics`] flattens one
//! campaign's outcome (built on [`crate::exclusion::exclusion_report`],
//! so the numbers line up with the single-run `exclusion` report), and
//! [`aggregate`] groups cells by every `(axis, value)` knob they were
//! run under — all cells at `fail_prob=0.15`, all cells at
//! `breaker=adp`, … — summarizing each outcome metric with
//! [`Summary`] (mean, sd, p50, p95, 95% CI). The sweep summary JSON and
//! human report are direct renderings of these rows.

use crate::exclusion::exclusion_report;
use dmsa_gridnet::HealthSummary;
use dmsa_metastore::MetaStore;
use dmsa_rucio_sim::TransferPathStats;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::stats::Summary;

/// One cell's outcome, flattened to the metrics the sweep aggregates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellMetrics {
    /// Transfer requests that exhausted their retry budget.
    pub exhausted: u64,
    /// Failed transfer attempts (engine view).
    pub failed_attempts: u64,
    /// Requests delivered (with or without retries).
    pub delivered: u64,
    /// Total transfer requests.
    pub requests: u64,
    /// Retry-attributed staging delay, seconds.
    pub retry_delay_secs: f64,
    /// Breaker exclusion, site-hours + link-hours (0 when disarmed).
    pub excluded_hours: f64,
    /// Breaker trips (0 when disarmed).
    pub trips: u64,
    /// Jobs in the exported store.
    pub jobs: u64,
    /// Transfer records in the exported store.
    pub transfers: u64,
}

/// Flatten one campaign to its sweep metrics.
pub fn cell_metrics(
    store: &MetaStore,
    window: Interval,
    path: TransferPathStats,
    health: Option<&HealthSummary>,
) -> CellMetrics {
    let r = exclusion_report(store, window, path, health);
    let (jobs, _, transfers, _) = store.counts();
    CellMetrics {
        exhausted: r.path.exhausted,
        failed_attempts: r.path.failed_attempts,
        delivered: r.path.delivered,
        requests: r.path.requests,
        retry_delay_secs: r.retry_delay_total_secs,
        excluded_hours: r.excluded_site_hours + r.excluded_link_hours,
        trips: r.trips,
        jobs: jobs as u64,
        transfers: transfers as u64,
    }
}

/// The reason taxonomy of a quarantined sweep cell, keyed by the stable
/// prefix of its quarantine reason string. The supervision layer reacts
/// per class: `Storage` quarantines are retried (transient by
/// definition), `Timeout` and `Interrupted` are re-dispatched only by a
/// `--resume`, `Panic` and `Other` are never retried automatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellFailureClass {
    /// `storage:` — an I/O fault exhausted the write retry budget.
    Storage,
    /// `timeout:` — the cell exceeded its cooperative deadline.
    Timeout,
    /// `interrupted:` — termination was requested mid-sweep.
    Interrupted,
    /// `panicked:` — the cell's simulation panicked.
    Panic,
    /// Anything else (config errors, fork mismatches, …).
    Other,
}

impl CellFailureClass {
    /// The stable reason-string prefix this class is keyed on (empty for
    /// [`CellFailureClass::Other`]).
    pub fn prefix(self) -> &'static str {
        match self {
            CellFailureClass::Storage => "storage:",
            CellFailureClass::Timeout => "timeout:",
            CellFailureClass::Interrupted => "interrupted:",
            CellFailureClass::Panic => "panicked:",
            CellFailureClass::Other => "",
        }
    }
}

/// Classify a quarantine reason by its stable prefix.
pub fn classify_failure(reason: &str) -> CellFailureClass {
    for class in [
        CellFailureClass::Storage,
        CellFailureClass::Timeout,
        CellFailureClass::Interrupted,
        CellFailureClass::Panic,
    ] {
        if reason.starts_with(class.prefix()) {
            return class;
        }
    }
    CellFailureClass::Other
}

/// Statistics over every cell sharing one `(axis, value)` knob.
#[derive(Clone, Debug, PartialEq)]
pub struct KnobGroup {
    /// Axis name, e.g. `fail_prob`.
    pub axis: String,
    /// Axis value, e.g. `0.15`.
    pub value: String,
    /// Cells in the group.
    pub n_cells: usize,
    pub exhausted: Summary,
    pub failed_attempts: Summary,
    pub retry_delay_secs: Summary,
    pub excluded_hours: Summary,
}

/// Group cells by every knob they carry and summarize each group.
/// Rows come out in first-seen knob order (grid expansion order), so the
/// aggregation is as deterministic as the grid itself. Cells that failed
/// (and therefore have no metrics) are simply absent from `cells`.
pub fn aggregate(cells: &[(Vec<(String, String)>, CellMetrics)]) -> Vec<KnobGroup> {
    let mut keys: Vec<(String, String)> = Vec::new();
    for (knobs, _) in cells {
        for k in knobs {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
    }
    keys.iter()
        .map(|(axis, value)| {
            let group: Vec<&CellMetrics> = cells
                .iter()
                .filter(|(knobs, _)| knobs.iter().any(|(a, v)| a == axis && v == value))
                .map(|(_, m)| m)
                .collect();
            let col = |f: &dyn Fn(&CellMetrics) -> f64| -> Summary {
                let xs: Vec<f64> = group.iter().map(|m| f(m)).collect();
                Summary::of(&xs).expect("knob groups are non-empty by construction")
            };
            KnobGroup {
                axis: axis.clone(),
                value: value.clone(),
                n_cells: group.len(),
                exhausted: col(&|m| m.exhausted as f64),
                failed_attempts: col(&|m| m.failed_attempts as f64),
                retry_delay_secs: col(&|m| m.retry_delay_secs),
                excluded_hours: col(&|m| m.excluded_hours),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(exhausted: u64, delay: f64, excluded: f64) -> CellMetrics {
        CellMetrics {
            exhausted,
            failed_attempts: exhausted * 3,
            delivered: 100,
            requests: 100 + exhausted,
            retry_delay_secs: delay,
            excluded_hours: excluded,
            trips: 0,
            jobs: 50,
            transfers: 200,
        }
    }

    fn knobs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, v)| (a.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn failure_classification_keys_on_stable_prefixes() {
        assert_eq!(
            classify_failure("storage: export write failed after 4 attempts"),
            CellFailureClass::Storage
        );
        assert_eq!(
            classify_failure("timeout: cell exceeded 30s (cooperative cancel)"),
            CellFailureClass::Timeout
        );
        assert_eq!(
            classify_failure("interrupted: cell never started"),
            CellFailureClass::Interrupted
        );
        assert_eq!(
            classify_failure("panicked: index out of bounds"),
            CellFailureClass::Panic
        );
        assert_eq!(
            classify_failure("prefix fork structural fingerprint mismatch"),
            CellFailureClass::Other
        );
        // Prefixes are position-sensitive: a reason merely *mentioning*
        // storage is not a storage failure.
        assert_eq!(
            classify_failure("canceled: storage: red herring"),
            CellFailureClass::Other
        );
    }

    #[test]
    fn aggregate_groups_by_every_knob_and_summarizes() {
        let cells = vec![
            (
                knobs(&[("seed", "1"), ("breaker", "off")]),
                m(10, 100.0, 0.0),
            ),
            (
                knobs(&[("seed", "2"), ("breaker", "off")]),
                m(14, 140.0, 0.0),
            ),
            (knobs(&[("seed", "1"), ("breaker", "adp")]), m(4, 40.0, 6.0)),
            (knobs(&[("seed", "2"), ("breaker", "adp")]), m(6, 60.0, 8.0)),
        ];
        let rows = aggregate(&cells);
        // 2 seed values + 2 breaker values.
        assert_eq!(rows.len(), 4);
        let off = rows
            .iter()
            .find(|r| r.axis == "breaker" && r.value == "off")
            .unwrap();
        assert_eq!(off.n_cells, 2);
        assert_eq!(off.exhausted.mean, 12.0);
        assert_eq!(off.excluded_hours.mean, 0.0);
        let adp = rows
            .iter()
            .find(|r| r.axis == "breaker" && r.value == "adp")
            .unwrap();
        assert_eq!(adp.exhausted.mean, 5.0);
        assert!(adp.excluded_hours.mean > 0.0);
        // CI brackets the mean.
        assert!(adp.exhausted.ci95_lo <= adp.exhausted.mean);
        assert!(adp.exhausted.ci95_hi >= adp.exhausted.mean);
        // Knob order is first-seen: seed=1 row precedes breaker=adp row.
        assert_eq!(rows[0].axis, "seed");
        assert_eq!(rows[0].value, "1");
    }

    #[test]
    fn failed_cells_simply_shrink_the_groups() {
        let cells = vec![
            (knobs(&[("seed", "1"), ("breaker", "off")]), m(10, 0.0, 0.0)),
            (knobs(&[("seed", "1"), ("breaker", "adp")]), m(2, 0.0, 1.0)),
        ];
        let rows = aggregate(&cells);
        let seed1 = rows.iter().find(|r| r.axis == "seed").unwrap();
        assert_eq!(seed1.n_cells, 2);
        let off = rows
            .iter()
            .find(|r| r.axis == "breaker" && r.value == "off")
            .unwrap();
        assert_eq!(off.n_cells, 1);
        // Single-cell group: degenerate but well-defined CI.
        assert_eq!(off.exhausted.ci95_lo, off.exhausted.mean);
    }
}
