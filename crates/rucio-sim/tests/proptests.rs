//! Property tests for the Rucio substrate: catalog invariants under random
//! operation sequences, rule-engine fixpoints, and transfer-engine slot
//! discipline.

use dmsa_gridnet::{BandwidthModel, FaultConfig, FaultModel, GridTopology, RseId, TopologyConfig};
use dmsa_rucio_sim::transfer::TransferRequest;
use dmsa_rucio_sim::{
    Activity, ReplicaCatalog, RetryPolicy, RuleEngine, Scope, TransferEngine, TransferOutcome,
};
use dmsa_simcore::{RngFactory, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddReplica { file: usize, rse: u32 },
    RemoveReplica { file: usize, rse: u32 },
    RegisterDataset { n_files: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0u32..8).prop_map(|(file, rse)| Op::AddReplica { file, rse }),
        (0usize..64, 0u32..8).prop_map(|(file, rse)| Op::RemoveReplica { file, rse }),
        (1usize..6).prop_map(|n_files| Op::RegisterDataset { n_files }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn catalog_invariants_hold_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut cat = ReplicaCatalog::new();
        cat.register_dataset(Scope::User(1), 0, "seed", &[10, 20, 30], SimTime::EPOCH);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::AddReplica { file, rse } => {
                    let n = cat.n_files();
                    let f = cat.files()[file % n].id;
                    cat.add_replica(f, RseId(rse));
                }
                Op::RemoveReplica { file, rse } => {
                    let n = cat.n_files();
                    let f = cat.files()[file % n].id;
                    cat.remove_replica(f, RseId(rse));
                }
                Op::RegisterDataset { n_files } => {
                    let sizes: Vec<u64> = (0..n_files as u64).map(|k| 100 + k).collect();
                    cat.register_dataset(Scope::User(2), i as u64 + 1, "gen", &sizes, SimTime::EPOCH);
                }
            }
            prop_assert!(cat.check_invariants().is_ok(), "{:?}", cat.check_invariants());
        }
        // Physical bytes never exceed registered bytes x replica bound.
        prop_assert!(cat.total_physical_bytes() <= cat.total_registered_bytes() * 8);
    }

    #[test]
    fn satisfying_a_rule_reaches_a_fixpoint(
        copies in 1usize..3,
        n_files in 1usize..6,
    ) {
        let mut cat = ReplicaCatalog::new();
        let sizes: Vec<u64> = (0..n_files as u64).map(|k| 1 + k).collect();
        let ds = cat.register_dataset(Scope::Data, 0, "x", &sizes, SimTime::EPOCH);
        let mut eng = RuleEngine::new();
        let rses: Vec<RseId> = (0..4).map(RseId).collect();
        let rule = eng.add_rule(ds, rses, copies, SimTime::EPOCH, None);
        // Apply every needed transfer as an instantaneous replica add.
        let needed = eng.missing_replicas(rule, &cat);
        prop_assert_eq!(needed.len(), copies * n_files);
        for t in &needed {
            cat.add_replica(t.file, t.dest);
        }
        // Fixpoint: nothing more to do, and idempotent.
        prop_assert!(eng.missing_replicas(rule, &cat).is_empty());
        for t in &needed {
            cat.add_replica(t.file, t.dest);
        }
        prop_assert!(eng.missing_replicas(rule, &cat).is_empty());
        prop_assert!(cat.check_invariants().is_ok());
    }

    #[test]
    fn transfer_engine_never_violates_slot_capacity(
        n_transfers in 1usize..40,
        seed in 0u64..64,
    ) {
        let rngs = RngFactory::new(seed);
        let topo = GridTopology::generate(&rngs, &TopologyConfig::small());
        let bw = BandwidthModel::new(&rngs, &topo);
        let mut cat = ReplicaCatalog::new();
        let sizes: Vec<u64> = (0..n_transfers as u64).map(|k| 50_000_000 + k * 1_000).collect();
        let ds = cat.register_dataset(Scope::Data, 0, "x", &sizes, SimTime::EPOCH);
        let files = cat.dataset_files(ds).to_vec();
        // All files seeded at site 1's disk; stage them all to site 2.
        let src_rse = topo.disk_rse(dmsa_gridnet::SiteId(1));
        let dst_rse = topo.disk_rse(dmsa_gridnet::SiteId(2));
        for &f in &files {
            cat.add_replica(f, src_rse);
        }
        let mut engine = TransferEngine::new(&topo, &rngs);
        let events: Vec<_> = files
            .iter()
            .map(|&f| {
                engine
                    .execute(
                        &TransferRequest {
                            file: f,
                            dest: dst_rse,
                            activity: Activity::DataRebalancing,
                            caused_by_pandaid: None,
                            jeditaskid: None,
                            preferred_source: None,
                        },
                        SimTime::EPOCH,
                        &mut cat,
                        &topo,
                        &bw,
                    )
                    .delivered()
                    .expect("replica exists and faults are off")
                    .clone()
            })
            .collect();
        // At no instant may more transfers be active on the pair than the
        // tighter endpoint's stream budget.
        let cap = topo
            .site(dmsa_gridnet::SiteId(1))
            .transfer_slots
            .min(topo.site(dmsa_gridnet::SiteId(2)).transfer_slots) as usize;
        let mut boundaries: Vec<SimTime> = events
            .iter()
            .flat_map(|e| [e.starttime, e.endtime])
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        for &t in &boundaries {
            let active = events
                .iter()
                .filter(|e| e.starttime <= t && t < e.endtime)
                .count();
            prop_assert!(
                active <= cap,
                "{} active transfers at {:?}, cap {}",
                active,
                t,
                cap
            );
        }
        // Every event is well-formed and was registered.
        for (e, &f) in events.iter().zip(&files) {
            prop_assert!(e.endtime > e.starttime);
            prop_assert!(cat.has_replica(f, dst_rse));
        }
    }

    /// Slot-heap conservation: whatever `execute` does — delivers on the
    /// first attempt, burns through retries, exhausts them, or bails out
    /// early because the file has no replica at all — every per-site slot
    /// heap must hold exactly as many entries afterwards as before. A leak
    /// (transfer forgets to release) would deadlock the site; growth
    /// (double release) would overcommit its streams.
    #[test]
    fn slot_heaps_conserve_entries_across_outcome_mix(
        seed in 0u64..48,
        p_fail in prop_oneof![Just(0.0), Just(0.35), Just(1.0)],
        max_retries in 0u32..4,
        requests in prop::collection::vec((0usize..12, 0u32..6, prop::bool::weighted(0.2)), 1..30),
    ) {
        let rngs = RngFactory::new(seed);
        let topo = GridTopology::generate(&rngs, &TopologyConfig::small());
        let bw = BandwidthModel::new(&rngs, &topo);
        let mut cat = ReplicaCatalog::new();
        let sizes: Vec<u64> = (0..12u64).map(|k| 40_000_000 + k * 7_000).collect();
        let ds = cat.register_dataset(Scope::Data, 0, "x", &sizes, SimTime::EPOCH);
        let files = cat.dataset_files(ds).to_vec();
        let src_rse = topo.disk_rse(dmsa_gridnet::SiteId(0));
        for &f in &files {
            cat.add_replica(f, src_rse);
        }
        let faults = FaultModel::new(&rngs, FaultConfig {
            p_attempt_failure: p_fail,
            ..FaultConfig::none()
        });
        let retry = RetryPolicy { max_retries, ..RetryPolicy::default() };
        let mut engine = TransferEngine::with_faults(&topo, &rngs, faults, retry);
        let baseline: Vec<usize> = (0..engine.n_sites())
            .map(|s| engine.slot_count(dmsa_gridnet::SiteId(s as u32)))
            .collect();
        for (i, &(fi, dsite, lose_replica)) in requests.iter().enumerate() {
            let file = files[fi % files.len()];
            if lose_replica {
                // Strip every replica so execute takes the no-replica
                // early return (which must not touch any heap either).
                for s in 0..engine.n_sites() {
                    cat.remove_replica(file, topo.disk_rse(dmsa_gridnet::SiteId(s as u32)));
                }
            }
            let out = engine.execute(
                &TransferRequest {
                    file,
                    dest: topo.disk_rse(dmsa_gridnet::SiteId(dsite % topo.sites().len() as u32)),
                    activity: Activity::DataRebalancing,
                    caused_by_pandaid: None,
                    jeditaskid: None,
                    preferred_source: None,
                },
                SimTime::from_secs(i as i64 * 30),
                &mut cat,
                &topo,
                &bw,
            );
            if lose_replica && cat.replicas_of(file).is_empty() {
                prop_assert!(matches!(out, TransferOutcome::NoReplica));
            }
            let now: Vec<usize> = (0..engine.n_sites())
                .map(|s| engine.slot_count(dmsa_gridnet::SiteId(s as u32)))
                .collect();
            prop_assert_eq!(&now, &baseline, "slot heaps leaked or grew after request {}", i);
        }
    }
}
