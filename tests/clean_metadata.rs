//! Clean-metadata baseline: with corruption disabled, exact matching must
//! be perfect on everything that is structurally matchable.

use dmsa::prelude::*;
use dmsa_analysis::activity::ActivityBreakdown;
use dmsa_core::matcher::Matcher;
use dmsa_rucio_sim::Activity;

fn clean_campaign() -> Campaign {
    dmsa_scenario::run(&ScenarioConfig::small_clean())
}

#[test]
fn precision_is_perfect_without_corruption() {
    let c = clean_campaign();
    for method in MatchMethod::ALL {
        let set = IndexedMatcher.match_jobs(&c.store, c.window, method);
        let e = evaluate(&c.store, &set, c.window);
        assert_eq!(
            e.transfer_precision(),
            1.0,
            "{method:?} produced a false pair on clean metadata"
        );
        assert_eq!(e.job_precision(), 1.0);
    }
}

#[test]
fn stagein_relaxation_gains_vanish_without_corruption() {
    // RM1/RM2 exist to absorb metadata damage. On pristine metadata the
    // only structural sum-breaker left is direct I/O (a job records only
    // some of its streaming reads, so its download group can never sum to
    // `ninputfilebytes`). Restricted to the stage-in activity — where the
    // whole file set is recorded atomically — the strategies must agree.
    let c = clean_campaign();
    let exact = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Exact);
    let rm2 = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Rm2);
    let ad = |set: &dmsa_core::MatchSet| {
        ActivityBreakdown::build(&c.store, set)
            .row(Activity::AnalysisDownload)
            .map(|r| r.matched)
            .unwrap_or(0)
    };
    assert_eq!(
        ad(&exact),
        ad(&rm2),
        "RM2 found stage-in transfers exact missed on clean metadata"
    );
    // And the site relaxation specifically adds nothing: with no unknown
    // or invalid endpoints in the store, every RM2 match passed the strict
    // site check.
    for mj in &rm2.jobs {
        for &ti in &mj.transfers {
            let t = &c.store.transfers[ti as usize];
            assert!(c.store.is_valid_site(t.source_site));
            assert!(c.store.is_valid_site(t.destination_site));
        }
    }
}

#[test]
fn clean_analysis_uploads_of_in_window_jobs_all_match() {
    let c = clean_campaign();
    let exact = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Exact);
    let matched: std::collections::HashSet<u32> = exact
        .jobs
        .iter()
        .flat_map(|j| j.transfers.iter().copied())
        .collect();
    // Structural claim, noise-free: every Analysis Upload whose causing
    // job completed inside the window is matched on clean metadata. (The
    // paper's 4.6 % AU shortfall is corruption + window edges; here only
    // the window edge exists and we exclude it from the population.)
    let in_window: std::collections::HashSet<u64> =
        c.store.user_jobs_in(c.window).map(|j| j.pandaid).collect();
    for (i, t) in c.store.transfers.iter().enumerate() {
        if t.activity != Activity::AnalysisUpload {
            continue;
        }
        let Some(p) = t.gt_pandaid else { continue };
        if in_window.contains(&p) {
            assert!(
                matched.contains(&(i as u32)),
                "clean in-window upload {} (job {p}) unmatched",
                t.transfer_id
            );
        }
    }
}

#[test]
fn clean_stagein_match_rate_is_far_higher_than_corrupted() {
    let clean = clean_campaign();
    let dirty = dmsa_scenario::run(&ScenarioConfig::small());
    let rate = |c: &Campaign| {
        let exact = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Exact);
        let table = ActivityBreakdown::build(&c.store, &exact);
        table
            .row(Activity::AnalysisDownload)
            .map(|r| r.percent())
            .unwrap_or(0.0)
    };
    let clean_rate = rate(&clean);
    let dirty_rate = rate(&dirty);
    assert!(
        clean_rate > dirty_rate * 2.0,
        "corruption should slash the AD match rate: clean {clean_rate:.1}% vs dirty {dirty_rate:.1}%"
    );
    // The absolute floor is calibrated loosely: the exact rate depends on
    // the RNG stream layout (the vendored offline `rand` shim and the real
    // crate draw different sequences), so only the order of magnitude is
    // stable. The relative assertion above carries the real invariant.
    assert!(clean_rate > 10.0, "clean AD rate {clean_rate:.1}%");
}

#[test]
fn ground_truth_equals_recorded_fields_when_clean() {
    let c = clean_campaign();
    for t in &c.store.transfers {
        assert_eq!(t.file_size, t.gt_file_size);
        assert_eq!(t.source_site, t.gt_source_site);
        assert_eq!(t.destination_site, t.gt_destination_site);
    }
}
