//! Simulated time.
//!
//! Time is an absolute number of **milliseconds** since the simulation epoch.
//! Millisecond resolution is enough for the phenomena the paper studies
//! (transfers lasting seconds to hours, jobs lasting minutes to days) while
//! keeping arithmetic exact — no floating-point drift in event ordering.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant in simulated time (milliseconds since the epoch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(i64);

/// A span of simulated time (milliseconds; may be negative as an
/// intermediate value, e.g. when clamping intervals).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(i64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);
    /// The greatest representable instant; useful as a sentinel.
    pub const MAX: SimTime = SimTime(i64::MAX);

    /// Construct from raw milliseconds since the epoch.
    pub const fn from_millis(ms: i64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: i64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from whole hours since the epoch.
    pub const fn from_hours(h: i64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// Construct from whole days since the epoch.
    pub const fn from_days(d: i64) -> Self {
        SimTime(d * 86_400_000)
    }

    /// Raw milliseconds since the epoch.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for statistics and plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since `earlier`. Negative if `earlier` is later.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from a fractional number of seconds (rounded to ms).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1000.0).round() as i64)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: i64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: i64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if the duration is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Clamp negative durations to zero.
    pub fn clamp_non_negative(self) -> SimDuration {
        SimDuration(self.0.max(0))
    }

    /// Scale by a float factor (rounded to ms).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).round() as i64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ms(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ms(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

fn format_ms(ms: i64) -> String {
    let sign = if ms < 0 { "-" } else { "" };
    let ms = ms.unsigned_abs();
    let (s, ms_rem) = (ms / 1000, ms % 1000);
    let (m, s_rem) = (s / 60, s % 60);
    let (h, m_rem) = (m / 60, m % 60);
    if h > 0 {
        format!("{sign}{h}h{m_rem:02}m{s_rem:02}s")
    } else if m > 0 {
        format!("{sign}{m}m{s_rem:02}s")
    } else if ms_rem == 0 {
        format!("{sign}{s}s")
    } else {
        format!("{sign}{s}.{ms_rem:03}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(5).as_millis(), 5_000);
        assert_eq!(SimTime::from_hours(2).as_millis(), 7_200_000);
        assert_eq!(SimTime::from_days(1).as_millis(), 86_400_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(100);
        let t1 = t0 + SimDuration::from_secs(30);
        assert_eq!((t1 - t0).as_millis(), 30_000);
        assert_eq!(t1.since(t0), SimDuration::from_secs(30));
        assert_eq!(t0.since(t1), SimDuration::from_secs(-30));
        assert_eq!(t0.since(t1).clamp_non_negative(), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5).as_millis(), 5_000);
        assert_eq!(d.mul_f64(1.25).as_millis(), 12_500);
    }

    #[test]
    fn display_formats_human_readable() {
        assert_eq!(SimDuration::from_secs(45).to_string(), "45s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::from_hours(25).to_string(), "25h00m00s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(-5).to_string(), "-5s");
    }
}
