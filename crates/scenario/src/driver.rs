//! The co-simulation event loop.
//!
//! One [`EventQueue`] drives both systems, mirroring the production
//! coupling the paper studies: PanDA creates tasks and jobs, the brokerage
//! places them (data-locality first), Harvester-style staging asks the
//! Rucio transfer engine to materialize input replicas, compute slots gate
//! execution, and output upload completes the job *before* PanDA marks it
//! finished — which is why Algorithm 1's `starttime < endtime` condition
//! catches uploads too.
//!
//! The loop produces ground-truth [`dmsa_rucio_sim::TransferEvent`]s and
//! finished jobs; [`run`] then flattens both into a [`MetaStore`] and
//! applies the corruption model. Everything downstream (matching, analysis,
//! benches) consumes only the store.

use crate::config::ScenarioConfig;
use dmsa_gridnet::{
    BandwidthModel, FaultModel, GridTopology, HealthEvent, HealthMonitor, HealthSignal,
    HealthSubject, HealthSummary, SiteId,
};
use dmsa_metastore::{FileDirection, FileRecord, JobRecord, MetaStore, Sym, TransferRecord};
use dmsa_panda_sim::task::TaskProgress;
use dmsa_panda_sim::{
    Broker, DispatchOutcome, HeartbeatOutcome, IoMode, Job, JobId, JobStatus, PilotModel,
    SiteLoadView, TaskId, TaskKind, TaskStatus, WorkloadModel,
};
use dmsa_rucio_sim::transfer::TransferRequest;
use dmsa_rucio_sim::{
    reap_all, Activity, DatasetId, FileId, ReaperPolicy, ReplicaCatalog, RuleEngine, Scope,
    TransferEngine, TransferEvent, TransferPathStats, TransferStatus,
};
use dmsa_simcore::fx::FxHashMap;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::SimRng;
use dmsa_simcore::{EventQueue, QueueBackend, RngFactory, SimDuration, SimTime, SymbolTable};
use rand::RngExt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// First `pandaid` issued (paper-era ids are ~6.58 × 10⁹).
const FIRST_PANDAID: u64 = 6_583_000_000;
/// First `jeditaskid` issued.
const FIRST_TASKID: u64 = 44_000_000;
/// Synthetic transfer-id offset for direct-I/O read events (the transfer
/// engine owns the low id space).
const DIO_ID_BASE: u64 = 1 << 40;

/// The flattened result of one campaign.
pub struct Campaign {
    /// Configuration that produced it.
    pub config: ScenarioConfig,
    /// The generated grid.
    pub topology: GridTopology,
    /// Bandwidth oracle (shared by analyses that need rate context).
    pub bw: BandwidthModel,
    /// Final replica catalog.
    pub catalog: ReplicaCatalog,
    /// Corrupted metadata — the matcher's world.
    pub store: MetaStore,
    /// The observation window (`[0, duration)`).
    pub window: Interval,
    /// Site-name symbol per `SiteId` index.
    pub sym_of_site: Vec<Sym>,
    /// Always-on transfer-path counters from the engine.
    pub path_stats: TransferPathStats,
    /// Total events the queue delivered while producing this campaign
    /// (the denominator of `bench_sim`'s events/s figure).
    pub events_processed: u64,
    /// Circuit-breaker telemetry; `None` when the health loop is off.
    pub health: Option<HealthSummary>,
}

/// A job in flight, threaded through the event queue.
#[derive(Clone)]
pub(crate) struct PendingJob {
    pub(crate) pandaid: u64,
    pub(crate) task_idx: u32,
    pub(crate) kind: TaskKind,
    pub(crate) io_mode: IoMode,
    pub(crate) doomed: bool,
    pub(crate) input_files: Vec<FileId>,
    pub(crate) input_bytes: u64,
    pub(crate) creation: SimTime,
    pub(crate) site: SiteId,
    pub(crate) recorded_stagein: bool,
    /// Pinned stage-in source RSE when the data is not local (one source
    /// per job, as JEDI/Rucio negotiate a single best replica site).
    pub(crate) stage_source: Option<dmsa_gridnet::RseId>,
    /// Intervals of this job's stage-in transfers (recorded or not).
    pub(crate) stage_intervals: Vec<Interval>,
    /// True staging completion (may exceed `start` under the anomaly knob).
    pub(crate) staging_end: SimTime,
    /// A stage-in exhausted its transfer retries: the input never arrived
    /// and the job must fail instead of running its payload.
    pub(crate) lost_input: bool,
    /// This job is already a re-brokered replacement for a lost-input
    /// failure; it will not be re-brokered again (one retry at the PanDA
    /// level, like JEDI's re-brokerage cap).
    pub(crate) rebrokered: bool,
    pub(crate) start: SimTime,
    pub(crate) exec_end: SimTime,
}

#[derive(Clone)]
pub(crate) enum Event {
    TaskArrival,
    JobCreated(Box<PendingJob>),
    StagingDone(Box<PendingJob>),
    ExecDone(Box<PendingJob>),
    Background,
    /// Periodic site reaper pass: deletes unprotected replicas at RSEs
    /// above their high watermark. Deleted inputs must be transferred
    /// again by later jobs — one *causal* source of the paper's redundant
    /// transfers.
    Reaper,
}

#[derive(Clone)]
pub(crate) struct TaskCtx {
    pub(crate) id: TaskId,
    pub(crate) kind: TaskKind,
    pub(crate) doomed: bool,
    pub(crate) n_jobs: u32,
    pub(crate) progress: TaskProgress,
}

/// Receives `(boundary time, encoded snapshot)` at each checkpoint
/// cadence crossing; an `Err` aborts the campaign.
pub type SnapshotSink<'a> = &'a mut dyn FnMut(SimTime, &[u8]) -> Result<(), String>;

/// Event-loop iterations between wall-clock deadline checks — the same
/// stride pattern as serve's mid-matcher deadline checks. The shared
/// flag and probe are atomic loads and checked every tick batch; only
/// `Instant::now()` is strided.
const CANCEL_STRIDE: u32 = 1024;

/// Cooperative cancellation for an in-flight campaign. The driver's hot
/// loop polls this once per tick batch; none of the checks consume a
/// random draw, so a run that is *not* canceled is byte-identical to a
/// token-free run (locked by a test).
///
/// Three independent triggers, any of which aborts the drain with a
/// `canceled:` error:
/// - [`CancelToken::cancel`] — an explicit request, shared across
///   clones (all clones observe it);
/// - a wall-clock `deadline` — the sweep's `--cell-timeout`;
/// - a `probe` fn — e.g. `signals::termination_requested`, so SIGTERM
///   aborts in-flight cells cleanly.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    probe: Option<fn() -> bool>,
}

impl CancelToken {
    /// A token with no deadline and no probe — cancelable only via
    /// [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a wall-clock deadline: the drain aborts once `Instant::now()`
    /// passes it (checked every [`CANCEL_STRIDE`] tick batches).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Add an external probe checked every tick batch (must be cheap —
    /// an atomic load, like `signals::termination_requested`).
    pub fn with_probe(mut self, probe: fn() -> bool) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Request cancellation. Visible to every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has the explicit flag or the probe fired? (Does not consult the
    /// deadline — that is strided separately in the hot loop.)
    fn fast_canceled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.probe.map(|p| p()) == Some(true)
    }

    /// Has the wall-clock deadline passed?
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Any trigger fired? (Flag, probe, or deadline.)
    pub fn is_canceled(&self) -> bool {
        self.fast_canceled() || self.deadline_exceeded()
    }
}

/// Run one campaign.
pub fn run(config: &ScenarioConfig) -> Campaign {
    run_with_queue(config, QueueBackend::default())
}

/// [`run`] with an explicit event-queue backend. Exists so `bench_sim`
/// (and the differential tests) can pit the calendar queue against the
/// reference binary heap on identical campaigns; the produced campaign
/// is byte-identical across backends.
pub fn run_with_queue(config: &ScenarioConfig, backend: QueueBackend) -> Campaign {
    let mut d = Driver::with_backend(config.clone(), backend);
    d.start();
    d.drain_with(None, &mut |_, _| Ok(()), None)
        .expect("no-op checkpoint sink cannot fail")
}

/// [`run`] polling a [`CancelToken`] once per tick batch. An un-canceled
/// run is byte-identical to [`run`]; a canceled one returns a
/// `canceled:` error (interrogate the token for which trigger fired).
pub fn run_cancelable(config: &ScenarioConfig, cancel: &CancelToken) -> Result<Campaign, String> {
    let mut d = Driver::new(config.clone());
    d.start();
    d.drain_with(None, &mut |_, _| Ok(()), Some(cancel))
}

/// Run one campaign, emitting a state snapshot to `sink` at every
/// `every`-aligned sim-time boundary the event clock crosses. The sink
/// receives the boundary time and the encoded snapshot; a sink error
/// aborts the campaign (the caller decides whether a failed checkpoint
/// write is fatal).
///
/// Checkpointing never mutates simulator state and never consumes a
/// random draw, so the produced campaign is byte-identical to [`run`]
/// regardless of cadence.
pub fn run_checkpointed(
    config: &ScenarioConfig,
    every: SimDuration,
    sink: SnapshotSink<'_>,
) -> Result<Campaign, String> {
    let mut d = Driver::new(config.clone());
    d.start();
    d.drain_with(Some(every), sink, None)
}

/// Resume a campaign from a snapshot produced by [`run_checkpointed`]
/// under the *same* config, running it to completion. When `every` is
/// `Some`, checkpointing continues from the resumed clock.
///
/// The resumed campaign is byte-identical to the uninterrupted same-seed
/// run: the snapshot captures every piece of mutable driver state,
/// including the exact positions of all RNG streams and the pending event
/// queue with its FIFO tie-break counters.
pub fn resume_checkpointed(
    config: &ScenarioConfig,
    snapshot: &[u8],
    every: Option<SimDuration>,
    sink: SnapshotSink<'_>,
) -> Result<Campaign, String> {
    let d = crate::snapshot::decode(config, snapshot)?;
    d.drain_with(every, sink, None)
}

/// Run `config`'s campaign up to (but not including) sim-time `at` and
/// return the encoded snapshot of that state. Byte-identical to the
/// checkpoint [`run_checkpointed`] would emit at an `at`-aligned
/// boundary: every event strictly before `at` is dispatched, the queue
/// is left intact, and no random draw is consumed by the encoding.
///
/// This is the shared-prefix half of a warm start: sweep cells that
/// agree on `(seed, prefix config)` pay this once and each continue via
/// [`fork_with_config`].
pub fn prefix_snapshot(config: &ScenarioConfig, at: SimTime) -> Vec<u8> {
    let mut d = Driver::new(config.clone());
    d.start();
    d.run_until(at);
    crate::snapshot::encode(&d)
}

/// Resume a snapshot under a **deliberately different** config — the
/// escape hatch around the strict behavior fingerprint that
/// [`resume_checkpointed`] enforces. Seed and topology must still match
/// (they are structural: the snapshot's tables are indexed by them);
/// every other knob — fault rates, breaker settings, retry budgets,
/// workload shape — is taken from `config` and governs the campaign
/// from the snapshot time onward. Arming the health loop across the
/// fork starts fresh breakers; disarming drops the snapshot's breaker
/// state.
pub fn fork_with_config(
    config: &ScenarioConfig,
    snapshot: &[u8],
    every: Option<SimDuration>,
    sink: SnapshotSink<'_>,
) -> Result<Campaign, String> {
    let d = crate::snapshot::decode_forked(config, snapshot)?;
    d.drain_with(every, sink, None)
}

/// One-shot reference for a warm-started sweep cell: run `base` up to
/// `at`, then continue under `fork` to completion. Exactly equivalent to
/// `fork_with_config(fork, &prefix_snapshot(base, at), ..)` — the CLI's
/// `simulate --fork-at` uses this so a standalone run can reproduce any
/// warm-started cell byte-for-byte.
pub fn run_forked(
    base: &ScenarioConfig,
    fork: &ScenarioConfig,
    at: SimTime,
) -> Result<Campaign, String> {
    fork_with_config(fork, &prefix_snapshot(base, at), None, &mut |_, _| Ok(()))
}

/// [`shared_prefix`] polling a [`CancelToken`] while computing the
/// prefix, so a sweep deadline or SIGTERM can abort even the warm-start
/// phase. An un-canceled prefix is byte-identical to [`shared_prefix`].
pub fn shared_prefix_cancelable(
    config: &ScenarioConfig,
    at: SimTime,
    cancel: &CancelToken,
) -> Result<SharedPrefix, String> {
    let mut d = Driver::new(config.clone());
    d.start();
    d.run_until_cancelable(at, Some(cancel))?;
    Ok(SharedPrefix { driver: d })
}

/// A fully materialized warm-start prefix: the live driver state of
/// `config`'s campaign at sim-time `at`, reusable across any number of
/// forked continuations. The in-memory sibling of [`prefix_snapshot`]:
/// forking from it restores exactly the state the snapshot codec
/// round-trips — [`SharedPrefix::fork`] is byte-identical to
/// [`fork_with_config`] over the encoded prefix at the same boundary —
/// but costs a memcpy-scale clone per fork instead of a parse.
pub struct SharedPrefix {
    driver: Driver,
}

/// Run `config`'s campaign up to (but not including) `at` and keep the
/// live driver state for reuse. Sweep cells that agree on `(seed,
/// prefix config)` pay this once and each continue via
/// [`SharedPrefix::fork`].
pub fn shared_prefix(config: &ScenarioConfig, at: SimTime) -> SharedPrefix {
    let mut d = Driver::new(config.clone());
    d.start();
    d.run_until(at);
    SharedPrefix { driver: d }
}

impl SharedPrefix {
    /// The prefix config this state was produced under.
    pub fn config(&self) -> &ScenarioConfig {
        &self.driver.config
    }

    /// Encode the prefix as a snapshot — what [`prefix_snapshot`] would
    /// return for the same `(config, at)`.
    pub fn encode(&self) -> Vec<u8> {
        crate::snapshot::encode(&self.driver)
    }

    /// Continue this prefix to completion under a (possibly different)
    /// config — the in-memory equivalent of [`fork_with_config`], with
    /// the same rules: seed and topology are structural and must match;
    /// every other knob is taken from `config` from the prefix time
    /// onward; arming the health loop starts fresh breakers, disarming
    /// drops the prefix's breaker state.
    pub fn fork(&self, config: &ScenarioConfig) -> Result<Campaign, String> {
        self.driver
            .fork_clone(config)?
            .drain_with(None, &mut |_, _| Ok(()), None)
    }

    /// [`SharedPrefix::fork`] polling a [`CancelToken`] once per tick
    /// batch. An un-canceled fork is byte-identical to [`fork`].
    pub fn fork_cancelable(
        &self,
        config: &ScenarioConfig,
        cancel: &CancelToken,
    ) -> Result<Campaign, String> {
        self.driver
            .fork_clone(config)?
            .drain_with(None, &mut |_, _| Ok(()), Some(cancel))
    }
}

pub(crate) struct Driver {
    pub(crate) config: ScenarioConfig,
    pub(crate) rngs: RngFactory,
    pub(crate) topology: GridTopology,
    pub(crate) bw: BandwidthModel,
    pub(crate) catalog: ReplicaCatalog,
    pub(crate) engine: TransferEngine,
    pub(crate) rules: RuleEngine,
    pub(crate) reaper_policy: ReaperPolicy,
    pub(crate) broker: Broker,
    pub(crate) workload: WorkloadModel,
    pub(crate) pilot: PilotModel,
    /// Circuit breakers closing the failure-telemetry loop; `None` keeps
    /// every decision path byte-identical to pre-health builds.
    pub(crate) health: Option<HealthMonitor>,
    pub(crate) queue: EventQueue<Event>,
    // Load feedback for the brokerage.
    pub(crate) queued: Vec<u32>,
    pub(crate) running: Vec<u32>,
    pub(crate) compute_slots: Vec<BinaryHeap<Reverse<i64>>>,
    // Site sampling by activity weight.
    pub(crate) cum_weights: Vec<f64>,
    // Outputs.
    pub(crate) tasks: Vec<TaskCtx>,
    pub(crate) finished: Vec<(Job, u32, bool)>, // job, task_idx, recorded_upload
    pub(crate) transfers: Vec<(TransferEvent, bool)>, // event, recorded
    pub(crate) next_pandaid: u64,
    pub(crate) next_taskid: u64,
    pub(crate) next_dio_id: u64,
    pub(crate) next_output_seq: u64,
    /// Events delivered so far (snapshotted, so a resumed campaign
    /// reports the full count).
    pub(crate) events_processed: u64,
    // Reusable hot-loop scratch (never snapshotted: both are drained
    // empty between events, so a checkpoint boundary never sees content).
    scratch_events: Vec<TransferEvent>,
    scratch_files: Vec<FileId>,
    // RNG streams.
    pub(crate) rng_task: SimRng,
    pub(crate) rng_job: SimRng,
    pub(crate) rng_bg: SimRng,
}

impl Driver {
    pub(crate) fn new(config: ScenarioConfig) -> Self {
        Self::with_backend(config, QueueBackend::default())
    }

    pub(crate) fn with_backend(config: ScenarioConfig, backend: QueueBackend) -> Self {
        let rngs = RngFactory::new(config.seed);
        let topology = GridTopology::generate(&rngs, &config.topology);
        let bw = BandwidthModel::new(&rngs, &topology);
        let faults = FaultModel::new(&rngs, config.faults.clone());
        let engine = TransferEngine::with_faults(&topology, &rngs, faults, config.retry.clone());
        let health = config
            .health
            .enabled
            .then(|| HealthMonitor::new(config.health.clone(), topology.n_sites()));
        let broker = Broker::new(config.broker.clone());
        let workload = WorkloadModel::new(config.workload.clone());
        let n = topology.n_sites();

        let mut cum = 0.0;
        let cum_weights = topology
            .sites()
            .iter()
            .map(|s| {
                cum += s.activity_weight;
                cum
            })
            .collect();

        let compute_slots = topology
            .sites()
            .iter()
            .map(|s| (0..s.compute_slots.max(1)).map(|_| Reverse(0i64)).collect())
            .collect();

        Driver {
            rng_task: rngs.stream("scenario/tasks"),
            rng_job: rngs.stream("scenario/jobs"),
            rng_bg: rngs.stream("scenario/background"),
            config,
            rngs,
            topology,
            bw,
            catalog: ReplicaCatalog::new(),
            engine,
            rules: RuleEngine::new(),
            reaper_policy: ReaperPolicy::default(),
            broker,
            workload,
            pilot: PilotModel::default(),
            health,
            queue: EventQueue::with_backend(backend),
            queued: vec![0; n],
            running: vec![0; n],
            compute_slots,
            cum_weights,
            tasks: Vec::new(),
            finished: Vec::new(),
            transfers: Vec::new(),
            next_pandaid: FIRST_PANDAID,
            next_taskid: FIRST_TASKID,
            next_dio_id: DIO_ID_BASE,
            next_output_seq: 0,
            events_processed: 0,
            scratch_events: Vec::new(),
            scratch_files: Vec::new(),
        }
    }

    /// Clone this driver's mutable state onto a fresh `config`-derived
    /// driver — the in-memory mirror of `snapshot::decode_forked`
    /// (construct `Driver::new(config)`, then overwrite exactly the
    /// state the snapshot codec carries). Kept in lockstep with the
    /// codec: a field added to `encode`/`decode_inner` must be cloned
    /// here too — the sweep's byte-identity tests against [`run_forked`]
    /// catch a miss.
    pub(crate) fn fork_clone(&self, config: &ScenarioConfig) -> Result<Driver, String> {
        if config.structural_fingerprint() != self.config.structural_fingerprint() {
            return Err(format!(
                "prefix fork structural fingerprint mismatch: prefix ran under seed {} — \
                 fork config has seed {} (seed and topology can never change across a fork)",
                self.config.seed, config.seed
            ));
        }
        let mut d = Driver::new(config.clone());
        // Clock + event queue (FIFO tie-break counters included).
        let entries = self
            .queue
            .snapshot_entries()
            .into_iter()
            .map(|(t, seq, ev)| (t, seq, ev.clone()))
            .collect();
        d.queue = EventQueue::restore(entries, self.queue.next_seq(), self.queue.now());
        // Driver RNG streams.
        d.rng_task = self.rng_task.clone();
        d.rng_job = self.rng_job.clone();
        d.rng_bg = self.rng_bg.clone();
        // Transfer engine: mutable state from the prefix; fault oracle
        // and retry policy stay config-derived, which is where the
        // forked knobs take effect.
        d.engine
            .restore(self.engine.snapshot())
            .map_err(|e| format!("transfer engine: {e}"))?;
        d.catalog = self.catalog.clone();
        d.rules = self.rules.clone();
        // Same arm/disarm matrix as a forked decode: arming starts fresh
        // breakers, disarming drops the prefix's breaker state.
        d.health = match (&self.health, config.health.enabled) {
            (None, false) | (Some(_), false) => None,
            (Some(h), true) => Some(HealthMonitor::restore(config.health.clone(), h.snapshot())),
            (None, true) => Some(HealthMonitor::new(
                config.health.clone(),
                d.topology.n_sites(),
            )),
        };
        d.queued = self.queued.clone();
        d.running = self.running.clone();
        d.compute_slots = self.compute_slots.clone();
        d.tasks = self.tasks.clone();
        d.finished = self.finished.clone();
        d.transfers = self.transfers.clone();
        d.next_pandaid = self.next_pandaid;
        d.next_taskid = self.next_taskid;
        d.next_dio_id = self.next_dio_id;
        d.next_output_seq = self.next_output_seq;
        d.events_processed = self.events_processed;
        Ok(d)
    }

    /// Weighted site draw (activity-weighted; used for replica placement
    /// and background destinations).
    fn sample_site(&mut self, rng_kind: RngKind) -> SiteId {
        let total = *self.cum_weights.last().expect("non-empty topology");
        let x = match rng_kind {
            RngKind::Task => self.rng_task.random::<f64>(),
            RngKind::Background => self.rng_bg.random::<f64>(),
        } * total;
        let idx = self.cum_weights.partition_point(|&c| c < x);
        SiteId(idx.min(self.topology.n_sites() - 1) as u32)
    }

    fn seed_catalog(&mut self) {
        let mut rng = self.rngs.stream("scenario/catalog");
        for i in 0..self.config.initial_datasets {
            let sizes = self.workload.sample_file_sizes(&mut rng);
            let scope = match i % 4 {
                0 => Scope::Data,
                1 => Scope::McProd,
                2 => Scope::GroupPhys,
                _ => Scope::User(rng.random_range(0..200)),
            };
            let ds =
                self.catalog
                    .register_dataset(scope, i as u64, "input", &sizes, SimTime::EPOCH);
            // Place 1..=max replicas at activity-weighted sites.
            let n_rep = rng.random_range(1..=self.config.max_replicas_per_dataset.max(1));
            let mut placed: Vec<SiteId> = Vec::new();
            for _ in 0..n_rep {
                let total = *self.cum_weights.last().expect("non-empty");
                let x = rng.random::<f64>() * total;
                let idx = self.cum_weights.partition_point(|&c| c < x);
                let site = SiteId(idx.min(self.topology.n_sites() - 1) as u32);
                if placed.contains(&site) {
                    continue;
                }
                placed.push(site);
                let rse = self.topology.disk_rse(site);
                for &f in self.catalog.dataset_files(ds).to_vec().iter() {
                    self.catalog.add_replica(f, rse);
                }
            }
            // The primary copy is pinned by a long-lived rule; secondary
            // copies are cache-like and expire, exposing them to the
            // reaper (and later jobs to re-staging).
            if let Some(&primary) = placed.first() {
                self.rules.add_rule(
                    ds,
                    vec![self.topology.disk_rse(primary)],
                    1,
                    SimTime::EPOCH,
                    None,
                );
            }
            for &site in placed.iter().skip(1) {
                self.rules.add_rule(
                    ds,
                    vec![self.topology.disk_rse(site)],
                    1,
                    SimTime::EPOCH,
                    Some(SimDuration::from_days(rng.random_range(1..14))),
                );
            }
        }
    }

    /// Sites currently holding all files of `ds` on disk.
    fn dataset_sites(&self, ds: DatasetId) -> Vec<SiteId> {
        let files = self.catalog.dataset_files(ds);
        let Some(&first) = files.first() else {
            return Vec::new();
        };
        let mut sites: Vec<SiteId> = self
            .catalog
            .replicas_of(first)
            .iter()
            .map(|&r| self.topology.site_of_rse(r))
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites.retain(|&s| {
            files.iter().all(|&f| {
                self.catalog
                    .replicas_of(f)
                    .iter()
                    .any(|&r| self.topology.site_of_rse(r) == s)
            })
        });
        sites
    }

    /// Cold-start initialization: seed the catalog and plant the three
    /// self-perpetuating event chains. A resumed driver must NOT run this
    /// — its catalog and queue come from the snapshot.
    pub(crate) fn start(&mut self) {
        self.seed_catalog();
        self.queue.push(SimTime::EPOCH, Event::TaskArrival);
        self.queue.push(SimTime::EPOCH, Event::Background);
        self.queue
            .push(SimTime::EPOCH + SimDuration::from_hours(6), Event::Reaper);
    }

    /// The uniform abort error for a canceled drain. Deliberately does
    /// not say *why* (flag vs probe vs deadline): the caller holds the
    /// token and can interrogate it — the sweep maps this to its
    /// `timeout:` / `interrupted:` quarantine taxonomy.
    fn cancel_error(&self) -> String {
        format!(
            "canceled: {} events dispatched, sim-time {} ms",
            self.events_processed,
            self.queue.now().as_millis()
        )
    }

    /// Dispatch every event strictly before `at`, leaving the queue
    /// intact from `at` onward. The resulting state is what a
    /// checkpoint boundary at `at` observes (snapshots are taken with
    /// nothing popped), which is what makes [`prefix_snapshot`]
    /// byte-identical to a [`run_checkpointed`] emission.
    pub(crate) fn run_until(&mut self, at: SimTime) {
        self.run_until_cancelable(at, None)
            .expect("cancel-free prefix run cannot abort")
    }

    /// [`Driver::run_until`] polling a [`CancelToken`] once per tick
    /// batch — same cadence (and same stride for the wall-clock check)
    /// as the full drain.
    pub(crate) fn run_until_cancelable(
        &mut self,
        at: SimTime,
        cancel: Option<&CancelToken>,
    ) -> Result<(), String> {
        let mut strided = 0u32;
        while let Some(peek) = self.queue.peek_time() {
            if peek >= at {
                break;
            }
            if let Some(tok) = cancel {
                strided += 1;
                if tok.fast_canceled()
                    || (strided >= CANCEL_STRIDE && {
                        strided = 0;
                        tok.deadline_exceeded()
                    })
                {
                    return Err(self.cancel_error());
                }
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.dispatch(t, ev);
        }
        Ok(())
    }

    /// Drain the event queue to completion, snapshotting between events
    /// whenever the clock is about to cross an `every`-aligned boundary.
    /// Snapshots are taken with the queue intact (nothing popped) so a
    /// resume replays the boundary-crossing event itself.
    ///
    /// When `cancel` is provided it is polled once per tick batch: the
    /// shared flag and probe on every batch, the wall-clock deadline
    /// every [`CANCEL_STRIDE`] batches (serve's mid-matcher pattern).
    /// Cancellation aborts with a `canceled:` error between events —
    /// never mid-dispatch — and consumes no random draw, so an
    /// un-canceled run is byte-identical to a token-free one.
    pub(crate) fn drain_with(
        mut self,
        every: Option<SimDuration>,
        sink: SnapshotSink<'_>,
        cancel: Option<&CancelToken>,
    ) -> Result<Campaign, String> {
        // First boundary strictly after the current clock (EPOCH on a cold
        // start; the restored `now` on a resume).
        let mut next_cp = every.map(|e| {
            let em = e.as_millis().max(1);
            SimTime::from_millis((self.queue.now().as_millis() / em + 1) * em)
        });
        let mut strided = 0u32;

        loop {
            if let Some(tok) = cancel {
                strided += 1;
                if tok.fast_canceled()
                    || (strided >= CANCEL_STRIDE && {
                        strided = 0;
                        tok.deadline_exceeded()
                    })
                {
                    return Err(self.cancel_error());
                }
            }
            if let (Some(e), Some(cp)) = (every, next_cp) {
                if let Some(peek) = self.queue.peek_time() {
                    if peek >= cp {
                        let bytes = crate::snapshot::encode(&self);
                        sink(cp, &bytes)?;
                        // One snapshot per crossing, however many
                        // boundaries the gap spans: the state at each of
                        // them is identical (no event fired in between).
                        let mut n = cp;
                        while n <= peek {
                            n += e;
                        }
                        next_cp = Some(n);
                    }
                }
            }
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            self.dispatch(t, ev);
            // Batch the rest of the tick: a checkpoint boundary can never
            // fall between two same-time events (next_cp is advanced past
            // `peek`, and boundaries are strictly increasing), so popping
            // them without re-checking `next_cp` is behavior-identical —
            // and skips a boundary comparison per event.
            while self.queue.peek_time() == Some(t) {
                let (_, ev) = self.queue.pop().expect("peeked event exists");
                self.dispatch(t, ev);
            }
        }

        Ok(self.finish())
    }

    fn dispatch(&mut self, t: SimTime, ev: Event) {
        self.events_processed += 1;
        match ev {
            Event::TaskArrival => self.on_task_arrival(t),
            Event::JobCreated(pj) => self.on_job_created(t, pj),
            Event::StagingDone(pj) => self.on_staging_done(t, pj),
            Event::ExecDone(pj) => self.on_exec_done(t, pj),
            Event::Background => self.on_background(t),
            Event::Reaper => self.on_reaper(t),
        }
    }

    fn window_end(&self) -> SimTime {
        SimTime::EPOCH + self.config.duration
    }

    fn on_task_arrival(&mut self, t: SimTime) {
        // Schedule the next arrival while inside the window.
        let rate_per_sec = self.workload.params().tasks_per_hour / 3_600.0;
        let gap = {
            let u: f64 = self.rng_task.random();
            -(1.0 - u).ln() / rate_per_sec.max(1e-9)
        };
        let next = t + SimDuration::from_secs_f64(gap);
        if next < self.window_end() {
            self.queue.push(next, Event::TaskArrival);
        }

        // Materialize this task.
        let kind = self.workload.sample_kind(&mut self.rng_task);
        let n_jobs = self.workload.sample_n_jobs(kind, &mut self.rng_task);
        let io_mode = self.workload.sample_io_mode(&mut self.rng_task);
        let doomed = self.workload.sample_doomed(&mut self.rng_task);
        let taskid = self.next_taskid;
        self.next_taskid += 1;

        let n_datasets = self
            .catalog
            .datasets()
            .len()
            .min(self.config.initial_datasets);
        if n_datasets == 0 {
            return;
        }
        let ds = DatasetId(self.rng_task.random_range(0..n_datasets as u64));

        let task_idx = self.tasks.len() as u32;
        self.tasks.push(TaskCtx {
            id: TaskId(taskid),
            kind,
            doomed,
            n_jobs,
            progress: TaskProgress::default(),
        });

        // iDDS-style pre-staging: deliver the whole input dataset to a
        // chosen site now, ahead of job dispatch. Drawn from a dedicated
        // per-task substream so prestage_fraction = 0 leaves every other
        // stream untouched (bit-identical baseline campaigns).
        // The dataset's file list is consulted while `self` is mutably
        // borrowed below, so it must be buffered — but into a reusable
        // scratch vec rather than a fresh allocation per task.
        let mut files = std::mem::take(&mut self.scratch_files);
        files.clear();
        files.extend_from_slice(self.catalog.dataset_files(ds));

        if self.config.prestage_fraction > 0.0 && kind == TaskKind::UserAnalysis {
            let mut prng = self.rngs.substream("scenario/prestage", taskid);
            if prng.random::<f64>() < self.config.prestage_fraction {
                let total = *self.cum_weights.last().expect("non-empty topology");
                let x = prng.random::<f64>() * total;
                let idx = self.cum_weights.partition_point(|&c| c < x);
                let target = SiteId(idx.min(self.topology.n_sites() - 1) as u32);
                let dest = self.topology.disk_rse(target);
                for &file in &files {
                    let req = TransferRequest {
                        file,
                        dest,
                        activity: Activity::DataRebalancing,
                        caused_by_pandaid: None,
                        jeditaskid: None,
                        preferred_source: None,
                    };
                    // Every attempt is a recorded rule-driven transfer;
                    // an exhausted prestage just means the jobs will
                    // stage the file themselves later.
                    self.engine.execute_into(
                        &req,
                        t,
                        &mut self.catalog,
                        &self.topology,
                        &self.bw,
                        self.health.as_mut(),
                        &mut self.scratch_events,
                    );
                    for ev in self.scratch_events.drain(..) {
                        self.transfers.push((ev, true));
                    }
                }
            }
        }

        // Fan out jobs with exponential submission stagger. JEDI splits
        // the input dataset across jobs: each file is processed by exactly
        // one job of the task (user analysis caps fan-out at the file
        // count; production tasks may wrap around and share).
        let n_jobs = match kind {
            TaskKind::UserAnalysis => n_jobs.min(files.len() as u32),
            TaskKind::Production => n_jobs,
        };
        self.tasks[task_idx as usize].n_jobs = n_jobs;
        // Balanced partition: the first `rem` jobs take `base + 1` files,
        // capped at 4 per job (JEDI's nFilesPerJob-style split).
        let base = files.len() / n_jobs.max(1) as usize;
        let rem = files.len() % n_jobs.max(1) as usize;
        let mut cursor = 0usize;
        let mut created = t;
        for ji in 0..n_jobs {
            let gap: f64 = {
                let u: f64 = self.rng_task.random();
                -(1.0 - u).ln() * 90.0
            };
            created += SimDuration::from_secs_f64(gap);
            // This job's disjoint slice (wrapping only for production).
            let take = (base + usize::from((ji as usize) < rem)).clamp(1, 4);
            let mut input_files: Vec<FileId> = (0..take)
                .map(|k| files[(cursor + k) % files.len()])
                .collect();
            cursor += take;
            input_files.dedup();
            input_files.sort_unstable();
            let input_bytes = input_files.iter().map(|&f| self.catalog.file(f).size).sum();
            let pandaid = self.next_pandaid;
            self.next_pandaid += 1;
            let pj = PendingJob {
                pandaid,
                task_idx,
                kind,
                io_mode,
                doomed,
                input_files,
                input_bytes,
                creation: created,
                site: SiteId(0),
                recorded_stagein: false,
                stage_source: None,
                stage_intervals: Vec::new(),
                staging_end: created,
                lost_input: false,
                rebrokered: false,
                start: created,
                exec_end: created,
            };
            self.queue.push(created, Event::JobCreated(Box::new(pj)));
        }
        self.scratch_files = files;
    }

    fn on_job_created(&mut self, t: SimTime, mut pj: Box<PendingJob>) {
        // Brokerage.
        let ds = self.catalog.file(pj.input_files[0]).dataset;
        let replica_sites = self.dataset_sites(ds);
        let load = SiteLoadView {
            queued: &self.queued,
            running: &self.running,
        };
        let placement = match self.health.as_mut() {
            Some(monitor) => {
                // Closed-loop brokerage: Open sites are hard-excluded
                // (with the broker's load-shed waiver chain behind it),
                // and the chosen site consumes a probe grant if it was on
                // probation.
                let p = self.broker.choose_site_guarded(
                    &replica_sites,
                    load,
                    &self.topology,
                    &mut self.rng_job,
                    |s| !monitor.site_admits(s, t),
                );
                monitor.commit_site(p.site, t);
                p
            }
            None => {
                self.broker
                    .choose_site(&replica_sites, load, &self.topology, &mut self.rng_job)
            }
        };
        pj.site = placement.site;
        self.queued[pj.site.index()] += 1;

        // Pin one stage-in source per job: local if the dataset is fully
        // present at the computing site; otherwise the replica site with
        // the best current effective rate. This keeps a job's transfers
        // all-local or all-remote, as in production (the paper's Table 2b
        // shows zero mixed jobs under exact matching). With the health
        // loop on, sites/links the breakers refuse are skipped unless
        // they are the only holders (degrade, don't starve).
        if !replica_sites.is_empty() && !replica_sites.contains(&pj.site) {
            let admitted: Vec<SiteId> = match self.health.as_mut() {
                Some(monitor) => replica_sites
                    .iter()
                    .copied()
                    .filter(|&s| monitor.source_admits(s, pj.site, t))
                    .collect(),
                None => Vec::new(),
            };
            let pool: &[SiteId] = if admitted.is_empty() {
                &replica_sites
            } else {
                &admitted
            };
            let best = pool
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ra = self.bw.effective_mbps(a, pj.site, t);
                    let rb = self.bw.effective_mbps(b, pj.site, t);
                    ra.total_cmp(&rb).then(b.cmp(&a))
                })
                .expect("non-empty replica set");
            if let Some(monitor) = self.health.as_mut() {
                monitor.commit_source(best, pj.site, t);
            }
            pj.stage_source = Some(self.topology.disk_rse(best));
        }

        // Harvester/pilot dispatch: provisioning + validation (+retries)
        // before staging begins. A pilot that exhausts validation retries
        // fails the job without it ever running.
        let dispatch = match self.pilot.sample_dispatch(&mut self.rng_job) {
            DispatchOutcome::Ready { delay_secs, .. } => SimDuration::from_secs_f64(delay_secs),
            DispatchOutcome::ExhaustedRetries { delay_secs } => {
                self.queued[pj.site.index()] = self.queued[pj.site.index()].saturating_sub(1);
                let end = t + SimDuration::from_secs_f64(delay_secs);
                if let Some(monitor) = self.health.as_mut() {
                    monitor.observe(HealthEvent {
                        subject: HealthSubject::Site(pj.site),
                        at: end,
                        signal: HealthSignal::PilotValidationFailed,
                    });
                }
                let task = &mut self.tasks[pj.task_idx as usize];
                task.progress.record(false);
                let job = Job {
                    id: JobId(pj.pandaid),
                    task: task.id,
                    kind: pj.kind,
                    computing_site: pj.site,
                    creationtime: pj.creation,
                    starttime: end,
                    endtime: end,
                    input_files: std::mem::take(&mut pj.input_files),
                    output_files: Vec::new(),
                    ninputfilebytes: pj.input_bytes,
                    noutputfilebytes: 0,
                    io_mode: pj.io_mode,
                    status: JobStatus::Failed,
                    task_status: TaskStatus::Done, // finalized after the loop
                    error_code: Some(dmsa_panda_sim::types::error_codes::PILOT_VALIDATION),
                };
                self.finished.push((job, pj.task_idx, false));
                return;
            }
        };
        let stage_begin = t + dispatch;

        let mut staging_end = stage_begin;
        match pj.kind {
            TaskKind::Production => {
                // Production inputs are pre-placed by rules; a fraction
                // records an explicit Production Download.
                if self.rng_job.random::<f64>() < self.config.prod_download_fraction {
                    staging_end =
                        self.stage_files(&mut pj, stage_begin, Activity::ProductionDownload, true);
                }
            }
            TaskKind::UserAnalysis => match pj.io_mode {
                IoMode::StageIn => {
                    pj.recorded_stagein = self.workload.sample_recorded_stagein(&mut self.rng_job);
                    let rec = pj.recorded_stagein;
                    staging_end =
                        self.stage_files(&mut pj, stage_begin, Activity::AnalysisDownload, rec);
                }
                IoMode::DirectIo => {
                    // No pre-staging; reads overlap execution.
                }
            },
        }
        pj.staging_end = staging_end;

        // The Fig 11 anomaly: occasionally the job is released to a worker
        // partway through staging, so a transfer spans queue and wall.
        let release = if self.rng_job.random::<f64>() < self.config.p_start_before_staging
            && staging_end > stage_begin
        {
            let frac = 0.2 + 0.6 * self.rng_job.random::<f64>();
            stage_begin + (staging_end - stage_begin).mul_f64(frac)
        } else {
            staging_end
        };
        self.queue.push(release, Event::StagingDone(pj));
    }

    /// Execute stage-in transfers for all input files; returns the staging
    /// completion time and records intervals on the job.
    ///
    /// Some pilots serialize their downloads regardless of how many
    /// streams the storage frontend offers (the Fig 10 pathology); for
    /// those, each file's request is only issued once the previous one
    /// completed.
    fn stage_files(
        &mut self,
        pj: &mut PendingJob,
        begin: SimTime,
        activity: Activity,
        recorded: bool,
    ) -> SimTime {
        let dest = self.topology.disk_rse(pj.site);
        let sequential = self.rng_job.random::<f64>() < self.config.p_sequential_stagein;
        let mut end = begin;
        let mut ready = begin;
        for i in 0..pj.input_files.len() {
            let req = TransferRequest {
                file: pj.input_files[i],
                dest,
                activity,
                caused_by_pandaid: Some(pj.pandaid),
                jeditaskid: Some(self.tasks[pj.task_idx as usize].id.0),
                preferred_source: pj.stage_source,
            };
            let status = self.engine.execute_into(
                &req,
                ready,
                &mut self.catalog,
                &self.topology,
                &self.bw,
                self.health.as_mut(),
                &mut self.scratch_events,
            );
            // Exhausted retries mean this input never arrives; a file
            // with no replica at all is (as before) silently absent —
            // production jobs read pre-placed copies we don't model
            // individually.
            if status == TransferStatus::Exhausted {
                pj.lost_input = true;
            }
            for ev in self.scratch_events.drain(..) {
                end = end.max(ev.endtime);
                if sequential {
                    // The pilot's serial loop waits out failed attempts
                    // and their retries too.
                    ready = ev.endtime;
                }
                pj.stage_intervals
                    .push(Interval::new(ev.starttime, ev.endtime));
                self.transfers.push((ev, recorded));
            }
        }
        end
    }

    fn on_staging_done(&mut self, t: SimTime, mut pj: Box<PendingJob>) {
        if pj.lost_input {
            self.fail_lost_input(t, pj);
            return;
        }
        // Acquire a compute slot.
        let heap = &mut self.compute_slots[pj.site.index()];
        let Reverse(free) = heap.pop().expect("compute slot heap never empties");
        let start = SimTime::from_millis(free).max(t);
        let wall =
            SimDuration::from_secs_f64(self.workload.sample_walltime_secs(&mut self.rng_job));
        let exec_end = start + wall;
        heap.push(Reverse(exec_end.as_millis()));

        self.queued[pj.site.index()] = self.queued[pj.site.index()].saturating_sub(1);
        self.running[pj.site.index()] += 1;

        pj.start = start;
        pj.exec_end = exec_end;
        self.queue.push(exec_end, Event::ExecDone(pj));
    }

    /// Graceful degradation for exhausted stage-in retries: the job fails
    /// with `LOST_INPUT` without ever holding a compute slot, and PanDA
    /// re-brokers it once — a fresh `pandaid`, a fresh brokerage pass
    /// (the input's surviving replicas may favour a different site now).
    fn fail_lost_input(&mut self, t: SimTime, mut pj: Box<PendingJob>) {
        self.queued[pj.site.index()] = self.queued[pj.site.index()].saturating_sub(1);
        let will_rebroker = !pj.rebrokered && t < self.window_end();
        let task = &mut self.tasks[pj.task_idx as usize];
        task.progress.record(false);
        let job = Job {
            id: JobId(pj.pandaid),
            task: task.id,
            kind: pj.kind,
            computing_site: pj.site,
            creationtime: pj.creation,
            starttime: t,
            endtime: t,
            // The input list is only cloned when the replacement job
            // below still needs it; the common path moves it.
            input_files: if will_rebroker {
                pj.input_files.clone()
            } else {
                std::mem::take(&mut pj.input_files)
            },
            output_files: Vec::new(),
            ninputfilebytes: pj.input_bytes,
            noutputfilebytes: 0,
            io_mode: pj.io_mode,
            status: JobStatus::Failed,
            task_status: TaskStatus::Done, // finalized after the loop
            error_code: Some(dmsa_panda_sim::types::error_codes::LOST_INPUT),
        };
        self.finished.push((job, pj.task_idx, false));

        if !will_rebroker {
            return;
        }
        // Recycle the box as the re-brokered replacement: fresh pandaid,
        // fresh brokerage pass, same inputs (one retry, like JEDI's
        // re-brokerage cap).
        let pandaid = self.next_pandaid;
        self.next_pandaid += 1;
        pj.pandaid = pandaid;
        pj.creation = t;
        pj.site = SiteId(0);
        pj.recorded_stagein = false;
        pj.stage_source = None;
        pj.stage_intervals.clear();
        pj.staging_end = t;
        pj.lost_input = false;
        pj.rebrokered = true;
        pj.start = t;
        pj.exec_end = t;
        self.queue.push(t, Event::JobCreated(pj));
    }

    fn on_exec_done(&mut self, t: SimTime, pj: Box<PendingJob>) {
        let mut pj = pj;
        self.running[pj.site.index()] = self.running[pj.site.index()].saturating_sub(1);

        // Direct-I/O reads: emitted during execution.
        if pj.kind == TaskKind::UserAnalysis && pj.io_mode == IoMode::DirectIo {
            self.emit_dio_reads(&mut pj);
        }

        // Staging fraction of queuing time drives the failure draw.
        let queue_window = Interval::new(pj.creation, pj.start);
        let queue_secs = queue_window.len().as_secs_f64().max(1.0);
        let staged_secs =
            dmsa_simcore::interval::union_len_within(&pj.stage_intervals, queue_window)
                .as_secs_f64();
        let staging_frac = staged_secs / queue_secs;
        // A stage-in still running after the job started (the Fig 11
        // anomaly) is treated as a severe staging pathology: the payload
        // races its own input. The paper observes exactly this coupling
        // ("it remains plausible that the lengthy transfer increased the
        // likelihood of failure").
        let crossed = pj.io_mode == IoMode::StageIn && pj.staging_end > pj.start;
        let effective_frac = if crossed {
            staging_frac.max(0.85)
        } else {
            staging_frac
        };
        let mut outcome = self
            .config
            .failure
            .draw(pj.doomed, effective_frac, &mut self.rng_job);

        // Pilot heartbeat watch: a lost heartbeat fails the payload
        // partway through its walltime regardless of everything else.
        let wall = pj.exec_end - pj.start;
        let mut truncated_end: Option<SimTime> = None;
        if let HeartbeatOutcome::LostAtFraction(frac) = self
            .pilot
            .sample_heartbeat(wall.as_secs_f64(), &mut self.rng_job)
        {
            outcome = dmsa_panda_sim::JobOutcome {
                status: JobStatus::Failed,
                error_code: Some(dmsa_panda_sim::types::error_codes::LOST_HEARTBEAT),
            };
            let lost_at = pj.start + wall.mul_f64(frac);
            truncated_end = Some(lost_at);
            if let Some(monitor) = self.health.as_mut() {
                monitor.observe(HealthEvent {
                    subject: HealthSubject::Site(pj.site),
                    at: lost_at,
                    signal: HealthSignal::LostHeartbeat,
                });
            }
        }

        // Output registration and (maybe) upload.
        let output_bytes = self
            .workload
            .sample_output_bytes(pj.input_bytes, &mut self.rng_job);
        let mut endtime = truncated_end.unwrap_or(pj.exec_end.max(pj.staging_end));
        let mut output_files: Vec<FileId> = Vec::new();
        let mut recorded_upload = false;
        if outcome.status == JobStatus::Finished {
            let scope = match pj.kind {
                TaskKind::UserAnalysis => Scope::User((pj.pandaid % 200) as u32),
                TaskKind::Production => Scope::McProd,
            };
            let seq = self.next_output_seq;
            self.next_output_seq += 1;
            let out_ds =
                self.catalog
                    .register_dataset(scope, 1_000_000 + seq, "output", &[output_bytes], t);
            let out_file = self.catalog.dataset_files(out_ds)[0];
            output_files.push(out_file);
            // Output first lands on the job's local storage.
            let local_rse = self.topology.disk_rse(pj.site);
            self.catalog.add_replica(out_file, local_rse);

            // Recorded uploads come from a different client population
            // than recorded stage-ins (different pilot I/O plugins), so a
            // job never records both — which is why the paper's Table 2b
            // shows zero mixed-locality jobs under exact matching.
            let (do_upload, activity) = match pj.kind {
                TaskKind::Production => (true, Activity::ProductionUpload),
                TaskKind::UserAnalysis => (
                    !pj.recorded_stagein
                        && self.rng_job.random::<f64>() < self.config.upload_recorded_fraction,
                    Activity::AnalysisUpload,
                ),
            };
            if do_upload {
                let dest_site = if self.rng_job.random::<f64>() < self.config.upload_remote_fraction
                {
                    self.sample_site(RngKind::Task)
                } else {
                    pj.site
                };
                let req = TransferRequest {
                    file: out_file,
                    dest: self.topology.disk_rse(dest_site),
                    activity,
                    caused_by_pandaid: Some(pj.pandaid),
                    jeditaskid: Some(self.tasks[pj.task_idx as usize].id.0),
                    preferred_source: None,
                };
                let status = self.engine.execute_into(
                    &req,
                    pj.exec_end,
                    &mut self.catalog,
                    &self.topology,
                    &self.bw,
                    self.health.as_mut(),
                    &mut self.scratch_events,
                );
                if status == TransferStatus::Delivered {
                    recorded_upload = true;
                } else if status == TransferStatus::Exhausted {
                    // The output never reached its destination RSE: the
                    // job degrades to a stage-out failure (its local copy
                    // survives, but PanDA counts the job failed).
                    outcome = dmsa_panda_sim::JobOutcome {
                        status: JobStatus::Failed,
                        error_code: Some(dmsa_panda_sim::types::error_codes::STAGEOUT_FAILURE),
                    };
                }
                for ev in self.scratch_events.drain(..) {
                    endtime = endtime.max(ev.endtime);
                    self.transfers.push((ev, true));
                }
            }
        }

        // Assemble the finished job.
        let task = &mut self.tasks[pj.task_idx as usize];
        task.progress.record(outcome.status == JobStatus::Finished);
        let job = Job {
            id: JobId(pj.pandaid),
            task: task.id,
            kind: pj.kind,
            computing_site: pj.site,
            creationtime: pj.creation,
            starttime: pj.start,
            endtime,
            input_files: std::mem::take(&mut pj.input_files),
            output_files,
            ninputfilebytes: pj.input_bytes,
            noutputfilebytes: output_bytes,
            io_mode: pj.io_mode,
            status: outcome.status,
            task_status: TaskStatus::Done, // finalized after the loop
            error_code: outcome.error_code,
        };
        self.finished.push((job, pj.task_idx, recorded_upload));
    }

    /// Synthesize streaming-read transfer events for a direct-I/O job.
    fn emit_dio_reads(&mut self, pj: &mut PendingJob) {
        let wall = (pj.exec_end - pj.start).as_secs_f64().max(1.0);
        for i in 0..pj.input_files.len() {
            let file = pj.input_files[i];
            if self.rng_job.random::<f64>() >= self.config.dio_recorded_fraction {
                continue;
            }
            let entry = self.catalog.file(file);
            let full = self.rng_job.random::<f64>() < self.config.dio_full_read_fraction;
            let size = if full {
                entry.size
            } else {
                // Partial read: 5–80 % of the file.
                let frac = 0.05 + 0.75 * self.rng_job.random::<f64>();
                ((entry.size as f64 * frac) as u64).max(1)
            };
            // Source: the job's pinned staging SE (one streaming session
            // per job), falling back to per-file selection for fully
            // local data.
            let src_site = pj
                .stage_source
                .map(|r| self.topology.site_of_rse(r))
                .or_else(|| {
                    self.engine
                        .select_source(
                            &self.catalog,
                            &self.topology,
                            &self.bw,
                            file,
                            pj.site,
                            pj.start,
                        )
                        .map(|r| self.topology.site_of_rse(r))
                })
                .unwrap_or(pj.site);
            let offset = self.rng_job.random::<f64>() * 0.8 * wall;
            let start = pj.start + SimDuration::from_secs_f64(offset);
            let rate = self.bw.effective_mbps(src_site, pj.site, start) * 1e6;
            let dur = (size as f64 / rate).max(0.5);
            let end = start + SimDuration::from_secs_f64(dur);
            pj.stage_intervals.push(Interval::new(start, end));

            let ds = self.catalog.dataset(entry.dataset);
            let id = self.next_dio_id;
            self.next_dio_id += 1;
            let ev = TransferEvent {
                id: dmsa_rucio_sim::TransferId(id),
                file,
                lfn: entry.lfn,
                dataset: ds.name,
                proddblock: ds.prod_dblock,
                scope: entry.scope,
                file_size: size,
                source_site: src_site,
                destination_site: pj.site,
                queued: start,
                starttime: start,
                endtime: end,
                activity: Activity::AnalysisDownloadDirectIo,
                attempt: 1,
                succeeded: true,
                caused_by_pandaid: Some(pj.pandaid),
                jeditaskid: Some(self.tasks[pj.task_idx as usize].id.0),
            };
            self.transfers.push((ev, true));
        }
    }

    fn on_reaper(&mut self, t: SimTime) {
        if t < self.window_end() {
            self.queue
                .push(t + SimDuration::from_hours(6), Event::Reaper);
        }
        reap_all(
            &mut self.catalog,
            &self.rules,
            &self.topology,
            &self.reaper_policy,
            t,
        );
    }

    fn on_background(&mut self, t: SimTime) {
        // Schedule the next background event while inside the window.
        let rate = self.config.background_transfers_per_hour / 3_600.0;
        if rate > 0.0 {
            let u: f64 = self.rng_bg.random();
            let gap = -(1.0 - u).ln() / rate;
            let next = t + SimDuration::from_secs_f64(gap);
            if next < self.window_end() {
                self.queue.push(next, Event::Background);
            }
        }

        if self.catalog.n_files() == 0 {
            return;
        }
        let file = FileId(self.rng_bg.random_range(0..self.catalog.n_files() as u64));
        let replicas = self.catalog.replicas_of(file);
        if replicas.is_empty() {
            return;
        }
        let src_site = self.topology.site_of_rse(replicas[0]);

        let local = self.rng_bg.random::<f64>() < self.config.background_local_fraction;
        let (dest_site, activity) = if local {
            let act = if self.rng_bg.random::<bool>() {
                Activity::TapeRecall
            } else {
                Activity::DataConsolidation
            };
            (src_site, act)
        } else {
            (
                self.sample_site(RngKind::Background),
                Activity::DataRebalancing,
            )
        };

        let req = TransferRequest {
            file,
            dest: self.topology.disk_rse(dest_site),
            activity,
            caused_by_pandaid: None,
            jeditaskid: None,
            preferred_source: None,
        };
        self.engine.execute_into(
            &req,
            t,
            &mut self.catalog,
            &self.topology,
            &self.bw,
            self.health.as_mut(),
            &mut self.scratch_events,
        );
        for ev in self.scratch_events.drain(..) {
            self.transfers.push((ev, true));
        }
    }

    /// Flatten jobs/transfers into the metadata store and corrupt it.
    fn finish(self) -> Campaign {
        let mut store = MetaStore::new();
        let sym_of_site: Vec<Sym> = self
            .topology
            .sites()
            .iter()
            .map(|s| store.register_site(&s.name))
            .collect();

        // Task final statuses.
        let task_status: Vec<TaskStatus> = self
            .tasks
            .iter()
            .map(|t| {
                let fake = dmsa_panda_sim::JediTask {
                    id: t.id,
                    kind: t.kind,
                    user: 0,
                    input_dataset: DatasetId(0),
                    n_jobs: t.n_jobs,
                    io_mode: IoMode::StageIn,
                    created: SimTime::EPOCH,
                    doomed: t.doomed,
                };
                t.progress.final_status(&fake)
            })
            .collect();

        // Catalog-sym -> store-sym memo. `store.symbols.intern` already
        // dedupes by string, so the memo changes no sym numbering — it
        // only skips re-hashing the same long DID string per record.
        let names = self.catalog.names();
        let mut name_map: Vec<Option<Sym>> = vec![None; names.len()];
        let mut scope_map: FxHashMap<Scope, Sym> = FxHashMap::default();

        // Job + file records.
        for (job, task_idx, _) in &self.finished {
            let site_sym = sym_of_site[job.computing_site.index()];
            store.jobs.push(JobRecord {
                pandaid: job.id.0,
                jeditaskid: job.task.0,
                computingsite: site_sym,
                creationtime: job.creationtime,
                starttime: job.starttime,
                endtime: job.endtime,
                ninputfilebytes: job.ninputfilebytes,
                noutputfilebytes: job.noutputfilebytes,
                io_mode: job.io_mode,
                status: job.status,
                task_status: task_status[*task_idx as usize],
                error_code: job.error_code,
                is_user_analysis: job.kind == TaskKind::UserAnalysis,
            });
            for (&f, direction) in job
                .input_files
                .iter()
                .map(|f| (f, FileDirection::Input))
                .chain(job.output_files.iter().map(|f| (f, FileDirection::Output)))
            {
                let entry = self.catalog.file(f);
                let ds = self.catalog.dataset(entry.dataset);
                let rec = FileRecord {
                    pandaid: job.id.0,
                    jeditaskid: job.task.0,
                    lfn: remap_name(&mut name_map, names, &mut store.symbols, entry.lfn),
                    dataset: remap_name(&mut name_map, names, &mut store.symbols, ds.name),
                    proddblock: remap_name(
                        &mut name_map,
                        names,
                        &mut store.symbols,
                        ds.prod_dblock,
                    ),
                    scope: remap_scope(&mut scope_map, &mut store.symbols, entry.scope),
                    file_size: entry.size,
                    direction,
                };
                store.files.push(rec);
            }
        }

        // Transfer records (recorded ones only).
        for (ev, recorded) in &self.transfers {
            if !*recorded {
                continue;
            }
            let rec = TransferRecord {
                transfer_id: ev.id.0,
                lfn: remap_name(&mut name_map, names, &mut store.symbols, ev.lfn),
                dataset: remap_name(&mut name_map, names, &mut store.symbols, ev.dataset),
                proddblock: remap_name(&mut name_map, names, &mut store.symbols, ev.proddblock),
                scope: remap_scope(&mut scope_map, &mut store.symbols, ev.scope),
                file_size: ev.file_size,
                starttime: ev.starttime,
                endtime: ev.endtime,
                source_site: sym_of_site[ev.source_site.index()],
                destination_site: sym_of_site[ev.destination_site.index()],
                activity: ev.activity,
                jeditaskid: ev.jeditaskid,
                is_download: ev.activity.is_download(),
                is_upload: !ev.activity.is_download() && ev.activity.carries_jeditaskid(),
                attempt: ev.attempt,
                succeeded: ev.succeeded,
                gt_pandaid: ev.caused_by_pandaid,
                gt_source_site: sym_of_site[ev.source_site.index()],
                gt_destination_site: sym_of_site[ev.destination_site.index()],
                gt_file_size: ev.file_size,
            };
            store.transfers.push(rec);
        }

        // Apply the metadata-quality model.
        let corruption = self.config.corruption.clone();
        corruption.apply(&mut store, &self.rngs);

        debug_assert!(self.catalog.check_invariants().is_ok());

        let window = Interval::new(SimTime::EPOCH, self.window_end());
        Campaign {
            config: self.config,
            topology: self.topology,
            bw: self.bw,
            catalog: self.catalog,
            store,
            window,
            sym_of_site,
            path_stats: self.engine.path_stats(),
            events_processed: self.events_processed,
            health: self.health.as_ref().map(|m| m.summary()),
        }
    }
}

/// Intern a catalog name into the store's symbol table, memoized by the
/// catalog sym id (the store dedupes by string, so the memo is purely a
/// fast path — numbering is unaffected).
fn remap_name(
    map: &mut [Option<Sym>],
    names: &SymbolTable,
    symbols: &mut SymbolTable,
    s: Sym,
) -> Sym {
    if let Some(m) = map[s.0 as usize] {
        return m;
    }
    let m = symbols.intern(names.resolve(s));
    map[s.0 as usize] = Some(m);
    m
}

/// Intern a scope's display form, memoized so the formatting (a fresh
/// `String` per call) happens once per distinct scope instead of once
/// per record.
fn remap_scope(map: &mut FxHashMap<Scope, Sym>, symbols: &mut SymbolTable, scope: Scope) -> Sym {
    *map.entry(scope)
        .or_insert_with(|| symbols.intern(&scope.to_string()))
}

/// Which RNG stream a helper should draw from (keeps streams disjoint by
/// caller role).
enum RngKind {
    Task,
    Background,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn small_campaign() -> Campaign {
        run(&ScenarioConfig::small())
    }

    #[test]
    fn calendar_and_heap_queues_export_identical_campaigns() {
        let config = ScenarioConfig::small();
        let cal = run_with_queue(&config, QueueBackend::Calendar);
        let heap = run_with_queue(&config, QueueBackend::BinaryHeap);
        assert_eq!(cal.events_processed, heap.events_processed);
        assert_eq!(cal.store, heap.store);
    }

    #[test]
    fn inert_cancel_token_is_byte_identical_to_a_plain_run() {
        // The containment layer's regression criterion: polling a token
        // that never fires consumes no draw and perturbs nothing.
        let config = ScenarioConfig::small();
        let plain = run(&config);
        let token = CancelToken::new()
            .with_deadline(Instant::now() + std::time::Duration::from_secs(3600))
            .with_probe(|| false);
        let watched = run_cancelable(&config, &token).expect("token never fired");
        assert_eq!(plain.events_processed, watched.events_processed);
        assert_eq!(plain.store, watched.store);
        // Same for the warm-start prefix path.
        let at = SimTime::from_hours(2);
        let cold = shared_prefix(&config, at).encode();
        let guarded = shared_prefix_cancelable(&config, at, &token)
            .expect("token never fired")
            .encode();
        assert_eq!(cold, guarded);
    }

    #[test]
    fn canceled_and_expired_tokens_abort_between_events() {
        let config = ScenarioConfig::small();
        // An explicitly canceled token aborts before the first batch.
        let must_cancel = |tok: &CancelToken| match run_cancelable(&config, tok) {
            Err(e) => e,
            Ok(_) => panic!("canceled run must abort"),
        };
        let token = CancelToken::new();
        token.cancel();
        let err = must_cancel(&token);
        assert!(err.starts_with("canceled:"), "{err}");
        assert!(!token.deadline_exceeded());
        // A probe (e.g. a termination latch) aborts the same way...
        let probed = CancelToken::new().with_probe(|| true);
        let err = must_cancel(&probed);
        assert!(err.starts_with("canceled:"), "{err}");
        // ...and an already-passed deadline aborts once the stride
        // consults the clock, leaving the trigger interrogable.
        let expired = CancelToken::new().with_deadline(Instant::now());
        let err = must_cancel(&expired);
        assert!(err.starts_with("canceled:"), "{err}");
        assert!(expired.deadline_exceeded());
        // Cancellation also reaches the prefix phase.
        let err = shared_prefix_cancelable(&config, SimTime::from_hours(2), &token)
            .err()
            .expect("canceled prefix must abort");
        assert!(err.starts_with("canceled:"), "{err}");
    }

    #[test]
    fn campaign_produces_jobs_files_and_transfers() {
        let c = small_campaign();
        let (jobs, files, transfers, with_tid) = c.store.counts();
        assert!(jobs > 500, "only {jobs} jobs");
        assert!(files >= jobs, "file table smaller than job table");
        assert!(transfers > 500, "only {transfers} transfers");
        assert!(with_tid > 0 && with_tid < transfers);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a.store.counts(), b.store.counts());
        for (x, y) in a.store.transfers.iter().zip(&b.store.transfers) {
            assert_eq!(x.transfer_id, y.transfer_id);
            assert_eq!(x.file_size, y.file_size);
            assert_eq!(x.starttime, y.starttime);
        }
        for (x, y) in a.store.jobs.iter().zip(&b.store.jobs) {
            assert_eq!(x.pandaid, y.pandaid);
            assert_eq!(x.endtime, y.endtime);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_campaign();
        let b = run(&ScenarioConfig {
            seed: 43,
            ..ScenarioConfig::small()
        });
        assert_ne!(a.store.counts(), b.store.counts());
    }

    #[test]
    fn job_timelines_are_ordered() {
        let c = small_campaign();
        for j in &c.store.jobs {
            assert!(
                j.creationtime <= j.starttime,
                "queue phase must be non-negative"
            );
            assert!(j.starttime <= j.endtime, "wall phase must be non-negative");
        }
    }

    #[test]
    fn production_and_user_jobs_both_exist() {
        let c = small_campaign();
        let user = c.store.jobs.iter().filter(|j| j.is_user_analysis).count();
        let prod = c.store.jobs.len() - user;
        assert!(user > 0 && prod > 0, "user {user}, prod {prod}");
    }

    #[test]
    fn transfer_activities_cover_job_and_background_classes() {
        let c = small_campaign();
        let mut has = std::collections::HashSet::new();
        for t in &c.store.transfers {
            has.insert(t.activity);
        }
        assert!(has.contains(&Activity::AnalysisDownload));
        assert!(has.contains(&Activity::AnalysisDownloadDirectIo));
        assert!(has.contains(&Activity::ProductionUpload));
        assert!(has.contains(&Activity::DataRebalancing));
    }

    #[test]
    fn background_transfers_have_no_taskid_ground_truth() {
        let c = small_campaign();
        for t in &c.store.transfers {
            if !t.activity.carries_jeditaskid() {
                assert!(t.gt_pandaid.is_none());
                assert!(t.jeditaskid.is_none());
            }
        }
    }

    #[test]
    fn zero_fault_knobs_are_strictly_additive() {
        // The PR's acceptance criterion: with every failure/outage knob
        // at zero, the campaign must be byte-identical to one that never
        // heard of the fault layer — including with retry knobs cranked,
        // since they must never be consulted.
        let base = small_campaign();
        let cranked = run(&ScenarioConfig {
            retry: dmsa_rucio_sim::RetryPolicy {
                max_retries: 9,
                backoff_base: SimDuration::from_secs(5),
                ..dmsa_rucio_sim::RetryPolicy::default()
            },
            ..ScenarioConfig::small()
        });
        assert_eq!(base.store.counts(), cranked.store.counts());
        for (x, y) in base.store.transfers.iter().zip(&cranked.store.transfers) {
            assert_eq!(x.transfer_id, y.transfer_id);
            assert_eq!(x.file_size, y.file_size);
            assert_eq!(x.starttime, y.starttime);
            assert_eq!(x.endtime, y.endtime);
            assert_eq!(x.attempt, 1);
            assert!(x.succeeded);
        }
        for (x, y) in base.store.jobs.iter().zip(&cranked.store.jobs) {
            assert_eq!(x.pandaid, y.pandaid);
            assert_eq!(x.endtime, y.endtime);
            assert_eq!(x.error_code, y.error_code);
        }
    }

    #[test]
    fn faulty_campaign_produces_retries_and_lost_input_jobs() {
        let c = run(&ScenarioConfig::small_faulty());
        let retries = c.store.transfers.iter().filter(|t| t.is_retry()).count();
        let failed_attempts = c.store.transfers.iter().filter(|t| !t.succeeded).count();
        assert!(retries > 0, "degraded grid must record retry attempts");
        assert!(
            failed_attempts > 0,
            "degraded grid must record failed attempts"
        );
        // Graceful degradation: some jobs surface exhausted stage-in
        // retries as LOST_INPUT failures...
        let lost: Vec<&JobRecord> = c
            .store
            .jobs
            .iter()
            .filter(|j| j.error_code == Some(dmsa_panda_sim::types::error_codes::LOST_INPUT))
            .collect();
        assert!(!lost.is_empty(), "no lost-input job in a degraded grid");
        for j in &lost {
            assert_eq!(j.status, JobStatus::Failed);
            assert_eq!(j.starttime, j.endtime, "lost-input jobs never run");
        }
        // ...and the re-brokered replacements keep overall throughput up:
        // most jobs still finish.
        let finished = c
            .store
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Finished)
            .count();
        assert!(finished * 2 > c.store.jobs.len(), "re-brokering collapsed");
    }

    #[test]
    fn zero_fault_adaptive_run_is_byte_identical_to_non_adaptive() {
        // The health satellite's regression criterion: with faults
        // disabled no breaker can ever open, so arming the closed loop
        // must not perturb a single decision, draw, or timestamp.
        let base = small_campaign();
        let adaptive = run(&ScenarioConfig {
            health: dmsa_gridnet::HealthConfig::adaptive(),
            ..ScenarioConfig::small()
        });
        assert_eq!(base.store.counts(), adaptive.store.counts());
        for (x, y) in base.store.transfers.iter().zip(&adaptive.store.transfers) {
            assert_eq!(x.transfer_id, y.transfer_id);
            assert_eq!(x.starttime, y.starttime);
            assert_eq!(x.endtime, y.endtime);
            assert_eq!(x.source_site, y.source_site);
            assert_eq!(x.destination_site, y.destination_site);
        }
        for (x, y) in base.store.jobs.iter().zip(&adaptive.store.jobs) {
            assert_eq!(x.pandaid, y.pandaid);
            assert_eq!(x.computingsite, y.computingsite);
            assert_eq!(x.starttime, y.starttime);
            assert_eq!(x.endtime, y.endtime);
            assert_eq!(x.error_code, y.error_code);
        }
        // The monitor existed and watched everything, but never tripped
        // and never refused.
        let summary = adaptive.health.expect("health loop was armed");
        assert!(
            summary.episodes.is_empty(),
            "breaker tripped without faults"
        );
        assert_eq!(summary.counters.trips, 0);
        assert_eq!(summary.counters.site_refusals, 0);
        assert_eq!(summary.counters.link_refusals, 0);
        assert_eq!(base.path_stats.requests, adaptive.path_stats.requests);
        assert_eq!(base.path_stats.exhausted, 0);
        assert!(base.health.is_none());
    }

    #[test]
    fn adaptive_exclusion_beats_non_adaptive_on_a_degraded_grid() {
        // The PR's headline acceptance criterion: at the same seed on the
        // same degraded grid, closing the loop must strictly reduce
        // exhausted transfers and the retry-attributed staging delay.
        let baseline = run(&ScenarioConfig::small_faulty());
        let adaptive = run(&ScenarioConfig::faulty_adaptive());

        let summary = adaptive.health.as_ref().expect("health loop was armed");
        assert!(
            summary.counters.trips > 0,
            "a degraded grid must trip breakers"
        );
        assert!(summary.excluded_site_hours(adaptive.window.end) > 0.0);

        assert!(
            adaptive.path_stats.exhausted < baseline.path_stats.exhausted,
            "adaptive {} !< baseline {} exhausted transfers",
            adaptive.path_stats.exhausted,
            baseline.path_stats.exhausted,
        );

        let retry_delay = |c: &Campaign| {
            dmsa_analysis::redundancy::redundancy_breakdown(&c.store, SimDuration::from_hours(24))
                .retry_delay_secs
                .iter()
                .sum::<f64>()
        };
        let (da, db) = (retry_delay(&adaptive), retry_delay(&baseline));
        assert!(
            da < db,
            "adaptive retry-attributed staging delay {da} !< baseline {db}"
        );
    }

    #[test]
    fn most_volume_is_local_ground_truth() {
        let c = small_campaign();
        let mut local = 0u64;
        let mut total = 0u64;
        for t in &c.store.transfers {
            total += t.gt_file_size;
            if t.gt_source_site == t.gt_destination_site {
                local += t.gt_file_size;
            }
        }
        let frac = local as f64 / total.max(1) as f64;
        assert!(
            frac > 0.5,
            "local volume fraction {frac} too low for the Fig 3 diagonal"
        );
    }
}
