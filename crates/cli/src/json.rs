//! A small position-tracking JSON reader/writer for the campaign format.
//!
//! The offline build environment stubs `serde_json` out, and the campaign
//! loader needs something the stub never offered anyway: every parsed
//! value remembers the **line and column** it started at, so a rejected
//! export or a quarantined record can be reported as *where* in the file
//! it went wrong, not just *that* it did.
//!
//! The dialect is strict JSON with two deliberate relaxations on input:
//! numbers are held as `f64` (every integer the campaign format emits is
//! below 2^53, so the round-trip is exact), and object keys keep their
//! first-seen order (duplicates are rejected).

use std::fmt;

/// A parsed JSON value plus the source position it started at.
#[derive(Clone, Debug, PartialEq)]
pub struct Json {
    /// The value itself.
    pub value: Value,
    /// 1-based source line of the value's first character.
    pub line: u32,
    /// 1-based source column of the value's first character.
    pub col: u32,
}

/// The JSON value kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// `"at line L column C"` — for error messages.
    pub fn at(&self) -> String {
        format!("at line {} column {}", self.line, self.col)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match &self.value {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match &self.value {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.value {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.value {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.value {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number as a signed integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.abs() <= 9_007_199_254_740_992.0 && n.fract() == 0.0 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self.value, Value::Null)
    }
}

/// A parse failure with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at line {} column {}: {}",
            self.line, self.col, self.what
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            what: what.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Advance one byte, maintaining the line/column counters. Multi-byte
    /// UTF-8 sequences advance the column once, on their leading byte.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        let (line, col) = (self.line, self.col);
        let wrap = |value| Json { value, line, col };
        match self.peek() {
            Some(b'{') => self.object().map(wrap),
            Some(b'[') => self.array().map(wrap),
            Some(b'"') => self.string().map(|s| wrap(Value::Str(s))),
            Some(b't') => self.keyword("true").map(|()| wrap(Value::Bool(true))),
            Some(b'f') => self.keyword("false").map(|()| wrap(Value::Bool(false))),
            Some(b'n') => self.keyword("null").map(|()| wrap(Value::Null)),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.number().map(|n| wrap(Value::Num(n)))
            }
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            for _ in 0..kw.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}")))
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .ok_or(ParseError {
                line,
                col,
                what: format!("invalid number {text:?}"),
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.bump();
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.bump();
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: require the low half.
                                self.keyword("\\u")
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.bump();
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.bump();
                    }
                    // The source is a &str, so the slice is valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8 source"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        // Called with `pos` on the first hex digit ('u' already consumed).
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.bump();
        }
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.bump(),
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_pos = (self.line, self.col);
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(ParseError {
                    line: key_pos.0,
                    col: key_pos.1,
                    what: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.bump(),
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a number. Rust's shortest-round-trip `Display` for `f64` is
/// already valid JSON for every finite value; non-finite values cannot
/// occur in the campaign format (asserted in debug builds).
pub fn push_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "campaign format never contains {v}");
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_positions() {
        let j = parse("  {\n  \"a\": [1, -2.5, 1e3],\n  \"b\": null\n}").unwrap();
        assert_eq!(j.line, 1);
        assert_eq!(j.col, 3);
        let a = j.get("a").unwrap();
        assert_eq!(a.line, 2);
        let items = a.as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert!(j.get("b").unwrap().is_null());
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut lit = String::new();
        push_str_lit(&mut lit, "a\"b\\c\nd\te\u{1}é世");
        let j = parse(&lit).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nd\te\u{1}é世"));
        // Unicode escapes, including surrogate pairs.
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap().as_str(),
            Some("é😀")
        );
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": 1,\n  \"a\": 2\n}").unwrap_err();
        assert_eq!((err.line, err.col), (3, 3));
        assert!(err.what.contains("duplicate"));
        let err = parse("[1, 2").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse("{\"a\": nope}").unwrap_err();
        assert!(err.what.contains("null"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [
            0.0,
            -0.5,
            1.25e-3,
            6_583_000_000.0f64,
            9_007_199_254_740_992.0,
            5_000_000_000_000_000.0,
            0.1_f64 + 0.2, // 0.30000000000000004: shortest repr needs 17 digits
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(v), "value {v}");
        }
        // Integer accessors refuse to silently truncate.
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_i64(), Some(-1));
    }

    #[test]
    fn column_counts_characters_not_bytes() {
        // 'é' is two bytes but one column.
        let err = parse("[\"é\", x]").unwrap_err();
        assert_eq!((err.line, err.col), (1, 7));
    }
}
