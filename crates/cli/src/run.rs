//! Subcommand implementations.
//!
//! Kept binary-free so every path is unit-testable; the `dmsa` binary is a
//! thin argv adapter over [`simulate`], [`run_match`], and [`analyze`].

use crate::export::CampaignExport;
use dmsa_analysis::activity::ActivityBreakdown;
use dmsa_analysis::matrix::TransferMatrix;
use dmsa_analysis::overlap::{all_overlaps, summarize};
use dmsa_analysis::redundancy::redundancy_breakdown;
use dmsa_analysis::temporal::{peak_to_trough, site_volume_gini, volume_series};
use dmsa_core::matcher::Matcher;
use dmsa_core::{
    evaluate, IndexedMatcher, MatchMethod, MatchSet, NaiveMatcher, ParallelMatcher,
    PreparedMatcher, PreparedStore, ScoredMatcher,
};
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::SimDuration;
use std::fmt::Write as _;

/// Which matcher the `match` subcommand runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MatcherChoice {
    /// Algorithm 1.
    Exact,
    /// Relaxed level 1.
    Rm1,
    /// Relaxed level 2.
    Rm2,
    /// Scored matcher at a threshold.
    Scored(f64),
}

impl MatcherChoice {
    /// Parse a `--method` argument (`exact`, `rm1`, `rm2`,
    /// `scored[:threshold]`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(MatcherChoice::Exact),
            "rm1" => Ok(MatcherChoice::Rm1),
            "rm2" => Ok(MatcherChoice::Rm2),
            _ => {
                if let Some(rest) = s.strip_prefix("scored") {
                    let threshold = match rest.strip_prefix(':') {
                        None if rest.is_empty() => 0.75,
                        Some(t) => t
                            .parse()
                            .map_err(|e| format!("bad scored threshold {t:?}: {e}"))?,
                        _ => return Err(format!("unknown method {s:?}")),
                    };
                    Ok(MatcherChoice::Scored(threshold))
                } else {
                    Err(format!(
                        "unknown method {s:?} (expected exact|rm1|rm2|scored[:T])"
                    ))
                }
            }
        }
    }
}

/// Which matching engine runs the chosen method. All engines produce
/// identical match sets (property-tested); they differ only in speed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum EngineChoice {
    /// Quadratic reference scan.
    Naive,
    /// Sequential prepared-index engine.
    Indexed,
    /// Rayon-parallel prepared-index engine.
    Parallel,
    /// Prepared CSR index, parallel matching (default).
    #[default]
    Prepared,
}

impl EngineChoice {
    /// Parse an `--engine` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(EngineChoice::Naive),
            "indexed" => Ok(EngineChoice::Indexed),
            "parallel" => Ok(EngineChoice::Parallel),
            "prepared" => Ok(EngineChoice::Prepared),
            _ => Err(format!(
                "unknown engine {s:?} (expected naive|indexed|parallel|prepared)"
            )),
        }
    }

    fn matcher(self) -> &'static dyn Matcher {
        match self {
            EngineChoice::Naive => &NaiveMatcher,
            EngineChoice::Indexed => &IndexedMatcher,
            EngineChoice::Parallel => &ParallelMatcher,
            EngineChoice::Prepared => &PreparedMatcher,
        }
    }
}

/// Failure-injection overrides for `dmsa simulate`. `None` leaves the
/// preset's value (inert for every preset except `faulty`) untouched, so
/// default runs stay byte-identical to the pre-fault tool.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultKnobs {
    /// Per-attempt transfer failure probability.
    pub fail_prob: Option<f64>,
    /// Fraction of site-hours spent in outage.
    pub site_outage: Option<f64>,
    /// Fraction of link-hours spent in outage.
    pub link_outage: Option<f64>,
    /// Retry budget per transfer request.
    pub max_retries: Option<u32>,
}

impl FaultKnobs {
    fn apply(&self, config: &mut ScenarioConfig) {
        if let Some(p) = self.fail_prob {
            config.faults.p_attempt_failure = p;
        }
        if let Some(p) = self.site_outage {
            config.faults.site_outage_fraction = p;
        }
        if let Some(p) = self.link_outage {
            config.faults.link_outage_fraction = p;
        }
        if let Some(n) = self.max_retries {
            config.retry.max_retries = n;
        }
    }
}

/// `dmsa simulate`: run a preset campaign and return its JSON export.
pub fn simulate(preset: &str, scale: f64, seed: u64, faults: FaultKnobs) -> Result<String, String> {
    let mut config = match preset {
        "8day" => ScenarioConfig::paper_8day(scale),
        "92day" => ScenarioConfig::paper_92day(scale),
        "small" => ScenarioConfig::small(),
        "faulty" => ScenarioConfig::small_faulty(),
        other => {
            return Err(format!(
                "unknown preset {other:?} (8day|92day|small|faulty)"
            ))
        }
    };
    config.seed = seed;
    faults.apply(&mut config);
    let campaign = dmsa_scenario::run(&config);
    CampaignExport::from_campaign(&campaign)
        .to_json()
        .map_err(|e| format!("serialize error: {e}"))
}

/// `dmsa match`: run a matcher over an exported campaign; returns the
/// match set as JSON plus a one-line stats summary. `engine` selects the
/// implementation for the exact/RM1/RM2 methods (scored matching has a
/// single engine and ignores it).
pub fn run_match(
    campaign_json: &str,
    choice: MatcherChoice,
    engine: EngineChoice,
) -> Result<(String, String), String> {
    let export = CampaignExport::from_json(campaign_json)?;
    let set: MatchSet = match choice {
        MatcherChoice::Exact => {
            engine
                .matcher()
                .match_jobs(&export.store, export.window, MatchMethod::Exact)
        }
        MatcherChoice::Rm1 => {
            engine
                .matcher()
                .match_jobs(&export.store, export.window, MatchMethod::Rm1)
        }
        MatcherChoice::Rm2 => {
            engine
                .matcher()
                .match_jobs(&export.store, export.window, MatchMethod::Rm2)
        }
        MatcherChoice::Scored(t) => {
            ScoredMatcher::default().match_jobs_scored(&export.store, export.window, t)
        }
    };
    let eval = evaluate(&export.store, &set, export.window);
    let stats = format!(
        "matched {} transfers across {} jobs | precision {:.3} recall {:.3}",
        set.n_matched_transfers(),
        set.n_matched_jobs(),
        eval.transfer_precision(),
        eval.transfer_recall()
    );
    let json = serde_json::to_string(&set).map_err(|e| format!("serialize error: {e}"))?;
    Ok((json, stats))
}

/// `dmsa analyze`: produce a textual report over a campaign (and
/// optionally a match set).
pub fn analyze(
    campaign_json: &str,
    matches_json: Option<&str>,
    report: &str,
) -> Result<String, String> {
    let export = CampaignExport::from_json(campaign_json)?;
    let store = &export.store;
    let mut out = String::new();
    match report {
        "summary" => {
            let (jobs, files, transfers, with_tid) = store.counts();
            let user = store.user_jobs_in(export.window).count();
            writeln!(out, "jobs {jobs} (user {user}) | file rows {files}").unwrap();
            writeln!(out, "transfers {transfers} (with taskid {with_tid})").unwrap();
            if let Some(mj) = matches_json {
                let set: MatchSet =
                    serde_json::from_str(mj).map_err(|e| format!("matches parse error: {e}"))?;
                let overlaps = all_overlaps(store, &set);
                let s = summarize(&overlaps);
                writeln!(
                    out,
                    "matched jobs {} | transfer-time in queue: mean {:.2}% geo {:.2}% max {:.1}%",
                    set.n_matched_jobs(),
                    s.mean_percent,
                    s.geo_mean_percent,
                    s.max_percent
                )
                .unwrap();
                let table = ActivityBreakdown::build(store, &set);
                for row in &table.rows {
                    writeln!(
                        out,
                        "  {:<30} {:>7}/{:<8} {:.2}%",
                        row.activity.label(),
                        row.matched,
                        row.total,
                        row.percent()
                    )
                    .unwrap();
                }
            }
        }
        "matrix" => {
            let m = TransferMatrix::build(store, export.window);
            let s = m.summary();
            writeln!(out, "sites {} | transfers {}", m.n(), m.n_transfers).unwrap();
            writeln!(
                out,
                "total {} B | local {:.1}% | mean/geo {:.1}x",
                s.total_bytes,
                100.0 * s.local_bytes as f64 / s.total_bytes.max(1) as f64,
                s.mean_pair_bytes / s.geo_mean_pair_bytes.max(1.0)
            )
            .unwrap();
            for c in m.top_outliers(5) {
                writeln!(
                    out,
                    "  {:>16} B  {} -> {}",
                    c.bytes, c.src_label, c.dst_label
                )
                .unwrap();
            }
        }
        "temporal" => {
            let series = volume_series(store, export.window, SimDuration::from_hours(6));
            let p2t = peak_to_trough(&series)
                .map(|r| format!("{r:.1}x"))
                .unwrap_or_else(|| "n/a".into());
            writeln!(out, "{} buckets of 6h | peak/trough {}", series.len(), p2t).unwrap();
            writeln!(
                out,
                "destination-site volume Gini {:.3}",
                site_volume_gini(store, export.window)
            )
            .unwrap();
        }
        "redundancy" => {
            let b = redundancy_breakdown(store, SimDuration::from_hours(24));
            writeln!(
                out,
                "retry-induced: {} groups, {} redundant transfers, {} B",
                b.retry_induced.n_groups,
                b.retry_induced.n_redundant,
                b.retry_induced.redundant_bytes
            )
            .unwrap();
            writeln!(
                out,
                "reaper-induced: {} groups, {} redundant transfers, {} B",
                b.reaper_induced.n_groups,
                b.reaper_induced.n_redundant,
                b.reaper_induced.redundant_bytes
            )
            .unwrap();
            let share = b
                .retry_share()
                .map(|s| format!("{:.1}%", 100.0 * s))
                .unwrap_or_else(|| "n/a".into());
            let delay = b
                .mean_retry_delay_secs()
                .map(|d| format!("{d:.0} s"))
                .unwrap_or_else(|| "n/a".into());
            writeln!(
                out,
                "retry share {share} | mean retry-added staging delay {delay}"
            )
            .unwrap();
        }
        other => {
            return Err(format!(
                "unknown report {other:?} (summary|matrix|temporal|redundancy)"
            ))
        }
    }
    Ok(out)
}

/// Run the three matchers sequentially on one campaign (the `bench-lite`
/// subcommand used by docs and smoke tests).
pub fn compare_methods(campaign_json: &str) -> Result<String, String> {
    let export = CampaignExport::from_json(campaign_json)?;
    let mut out = String::new();
    // One prepared index serves all three methods.
    let prepared = PreparedStore::build(&export.store);
    for method in MatchMethod::ALL {
        let set = prepared.par_match_window(export.window, method);
        let e = evaluate(&export.store, &set, export.window);
        writeln!(
            out,
            "{:<6} {:>7} transfers {:>6} jobs  precision {:.3} recall {:.3}",
            method.label(),
            set.n_matched_transfers(),
            set.n_matched_jobs(),
            e.transfer_precision(),
            e.transfer_recall()
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign_json() -> String {
        let mut c = ScenarioConfig::small();
        c.duration = SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.background_transfers_per_hour = 50.0;
        c.initial_datasets = 20;
        let campaign = dmsa_scenario::run(&c);
        CampaignExport::from_campaign(&campaign).to_json().unwrap()
    }

    #[test]
    fn matcher_choice_parsing() {
        assert_eq!(MatcherChoice::parse("exact").unwrap(), MatcherChoice::Exact);
        assert_eq!(MatcherChoice::parse("rm1").unwrap(), MatcherChoice::Rm1);
        assert_eq!(MatcherChoice::parse("rm2").unwrap(), MatcherChoice::Rm2);
        assert_eq!(
            MatcherChoice::parse("scored").unwrap(),
            MatcherChoice::Scored(0.75)
        );
        assert_eq!(
            MatcherChoice::parse("scored:0.9").unwrap(),
            MatcherChoice::Scored(0.9)
        );
        assert!(MatcherChoice::parse("fuzzy").is_err());
        assert!(MatcherChoice::parse("scored:x").is_err());
    }

    #[test]
    fn engine_choice_parsing() {
        assert_eq!(EngineChoice::parse("naive").unwrap(), EngineChoice::Naive);
        assert_eq!(
            EngineChoice::parse("indexed").unwrap(),
            EngineChoice::Indexed
        );
        assert_eq!(
            EngineChoice::parse("parallel").unwrap(),
            EngineChoice::Parallel
        );
        assert_eq!(
            EngineChoice::parse("prepared").unwrap(),
            EngineChoice::Prepared
        );
        assert_eq!(EngineChoice::default(), EngineChoice::Prepared);
        assert!(EngineChoice::parse("quantum").is_err());
    }

    #[test]
    fn simulate_rejects_unknown_preset() {
        assert!(simulate("weekly", 1.0, 1, FaultKnobs::default()).is_err());
    }

    #[test]
    fn fault_knobs_override_only_what_they_set() {
        let mut config = ScenarioConfig::small();
        let knobs = FaultKnobs {
            fail_prob: Some(0.1),
            max_retries: Some(5),
            ..FaultKnobs::default()
        };
        knobs.apply(&mut config);
        assert_eq!(config.faults.p_attempt_failure, 0.1);
        assert_eq!(config.retry.max_retries, 5);
        // Untouched knobs keep the preset's inert defaults.
        assert_eq!(config.faults.site_outage_fraction, 0.0);
        assert_eq!(config.faults.link_outage_fraction, 0.0);
        assert!(!config.faults.enabled() || config.faults.p_attempt_failure > 0.0);
    }

    #[test]
    fn all_engines_agree_via_cli_path() {
        let campaign = tiny_campaign_json();
        let engines = [
            EngineChoice::Naive,
            EngineChoice::Indexed,
            EngineChoice::Parallel,
            EngineChoice::Prepared,
        ];
        let results: Vec<String> = engines
            .iter()
            .map(|&e| run_match(&campaign, MatcherChoice::Rm2, e).unwrap().0)
            .collect();
        for r in &results[1..] {
            assert_eq!(*r, results[0], "engine output diverged");
        }
    }

    #[test]
    fn full_cli_pipeline_runs() {
        let campaign = tiny_campaign_json();
        let (matches, stats) =
            run_match(&campaign, MatcherChoice::Rm2, EngineChoice::default()).unwrap();
        assert!(stats.contains("precision"));
        let report = analyze(&campaign, Some(&matches), "summary").unwrap();
        assert!(report.contains("transfers"));
        let matrix = analyze(&campaign, None, "matrix").unwrap();
        assert!(matrix.contains("local"));
        let temporal = analyze(&campaign, None, "temporal").unwrap();
        assert!(temporal.contains("Gini"));
        let redundancy = analyze(&campaign, None, "redundancy").unwrap();
        assert!(redundancy.contains("retry-induced") && redundancy.contains("reaper-induced"));
        let cmp = compare_methods(&campaign).unwrap();
        assert!(cmp.contains("Exact") && cmp.contains("RM2"));
    }

    #[test]
    fn faulty_campaign_attributes_retry_induced_redundancy() {
        let mut c = ScenarioConfig::small_faulty();
        c.duration = SimDuration::from_hours(6);
        c.workload.tasks_per_hour = 20.0;
        let campaign = dmsa_scenario::run(&c);
        let b = redundancy_breakdown(&campaign.store, SimDuration::from_hours(24));
        // Failed attempts must surface as a *separately attributed* class
        // of duplicates, not blend into the reaper-induced pool.
        assert!(b.retry_induced.n_groups > 0, "no retry-induced groups");
        assert!(b.retry_induced.n_redundant > 0);
    }

    #[test]
    fn analyze_rejects_unknown_report() {
        let campaign = tiny_campaign_json();
        assert!(analyze(&campaign, None, "pie-chart").is_err());
    }

    #[test]
    fn scored_match_runs_via_cli_path() {
        let campaign = tiny_campaign_json();
        let engine = EngineChoice::default();
        let (json, _) = run_match(&campaign, MatcherChoice::Scored(0.6), engine).unwrap();
        let set: MatchSet = serde_json::from_str(&json).unwrap();
        let (strict_json, _) = run_match(&campaign, MatcherChoice::Scored(0.99), engine).unwrap();
        let strict: MatchSet = serde_json::from_str(&strict_json).unwrap();
        assert!(set.n_matched_transfers() >= strict.n_matched_transfers());
    }
}
