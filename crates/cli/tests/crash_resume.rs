//! Kill-and-resume: a campaign interrupted mid-flight and resumed from a
//! checkpoint must export byte-identical JSON — even when the newest
//! checkpoint on disk was torn by the crash and resume has to fall back
//! to the previous one.

use dmsa_cli::checkpoint::CheckpointDir;
use dmsa_cli::run::{run_with_checkpoints, CheckpointKnobs};
use dmsa_cli::CampaignExport;
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::SimDuration;
use std::fs;
use std::path::PathBuf;

fn faulty_config() -> ScenarioConfig {
    let mut c = ScenarioConfig::small_faulty();
    c.duration = SimDuration::from_hours(6);
    c.workload.tasks_per_hour = 20.0;
    c
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmsa-crash-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn resume_after_truncated_checkpoint_is_byte_identical() {
    let config = faulty_config();
    let dir = scratch("trunc");
    let knobs = CheckpointKnobs {
        dir: Some(dir.clone()),
        every: SimDuration::from_hours(1),
        resume: false,
        keep: 3,
        ..CheckpointKnobs::default()
    };

    // The uninterrupted reference run, leaving checkpoints behind — the
    // same files a run killed after its last checkpoint would leave.
    let mut quiet = |_: String| {};
    let full = run_with_checkpoints(&config, &knobs, &mut quiet).unwrap();
    let reference = CampaignExport::from_campaign(&full).to_json();

    // The crash tears the newest checkpoint mid-write.
    let store = CheckpointDir::open(&dir, 3).unwrap();
    let newest = store.scan().unwrap().into_iter().next().unwrap();
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    // Resume must fall back to the previous checkpoint (reporting the
    // skip), replay the tail, and reproduce the reference bytes exactly.
    let mut notes = Vec::new();
    let mut note = |l: String| notes.push(l);
    let resumed = run_with_checkpoints(
        &config,
        &CheckpointKnobs {
            resume: true,
            ..knobs
        },
        &mut note,
    )
    .unwrap();
    let skips = notes.iter().filter(|l| l.contains("skipping")).count();
    assert_eq!(
        skips, 1,
        "expected exactly one skipped checkpoint: {notes:?}"
    );
    assert!(
        notes.iter().any(|l| l.contains("resuming from")),
        "{notes:?}"
    );
    assert_eq!(CampaignExport::from_campaign(&resumed).to_json(), reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_with_all_checkpoints_destroyed_cold_starts_identically() {
    let config = faulty_config();
    let dir = scratch("cold");
    let knobs = CheckpointKnobs {
        dir: Some(dir.clone()),
        every: SimDuration::from_hours(2),
        resume: false,
        keep: 3,
        ..CheckpointKnobs::default()
    };
    let mut quiet = |_: String| {};
    let full = run_with_checkpoints(&config, &knobs, &mut quiet).unwrap();
    let reference = CampaignExport::from_campaign(&full).to_json();

    for path in CheckpointDir::open(&dir, 3).unwrap().scan().unwrap() {
        fs::write(&path, b"not a checkpoint").unwrap();
    }

    let mut notes = Vec::new();
    let mut note = |l: String| notes.push(l);
    let resumed = run_with_checkpoints(
        &config,
        &CheckpointKnobs {
            resume: true,
            ..knobs
        },
        &mut note,
    )
    .unwrap();
    assert!(
        notes.iter().any(|l| l.contains("no usable checkpoint")),
        "{notes:?}"
    );
    assert_eq!(CampaignExport::from_campaign(&resumed).to_json(), reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_ignores_checkpoints_from_a_different_scenario() {
    // A checkpoint directory accidentally shared with another scenario
    // must not poison the run: the foreign snapshot frame-verifies but
    // fails config validation, so the ladder skips it.
    let config = faulty_config();
    let dir = scratch("foreign");
    let mut quiet = |_: String| {};

    let mut other = faulty_config();
    other.seed ^= 0xDEAD_BEEF;
    let foreign_knobs = CheckpointKnobs {
        dir: Some(dir.clone()),
        every: SimDuration::from_hours(3),
        resume: false,
        keep: 3,
        ..CheckpointKnobs::default()
    };
    run_with_checkpoints(&other, &foreign_knobs, &mut quiet).unwrap();

    let reference = CampaignExport::from_campaign(&dmsa_scenario::run(&config)).to_json();
    let mut notes = Vec::new();
    let mut note = |l: String| notes.push(l);
    let resumed = run_with_checkpoints(
        &config,
        &CheckpointKnobs {
            resume: true,
            ..foreign_knobs
        },
        &mut note,
    )
    .unwrap();
    assert!(
        notes.iter().any(|l| l.contains("fingerprint")),
        "foreign snapshots should be skipped by fingerprint: {notes:?}"
    );
    assert_eq!(CampaignExport::from_campaign(&resumed).to_json(), reference);
    fs::remove_dir_all(&dir).unwrap();
}
