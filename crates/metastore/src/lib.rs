//! # dmsa-metastore
//!
//! The OpenSearch-like metadata layer (paper §4.1, Fig 4).
//!
//! The paper's querying module retrieves three record families from
//! production telemetry: **job metadata** from PanDA, and **file** and
//! **transfer-event** metadata from Rucio. This crate holds their in-memory
//! equivalents:
//!
//! * [`records`] — flattened [`records::JobRecord`], [`records::FileRecord`]
//!   (PanDA's per-job file table), and [`records::TransferRecord`], carrying
//!   precisely the attributes Algorithm 1 consumes;
//! * [`intern`] — a string-interning table so millions of records share
//!   site names, LFNs and dataset names as `u32` symbols (string-equality
//!   joins become integer joins without changing semantics);
//! * [`store`] — the [`store::MetaStore`] with the common-time-window
//!   queries §4.2 prescribes ("the query module only reports jobs that are
//!   completed before the end of the interval");
//! * [`corrupt`] — the metadata-quality model. Production metadata is
//!   "heterogeneous and incomplete, with issues such as missing site
//!   information, inconsistent file attributes, or incomplete records"
//!   (§1). Each of those pathologies is a tunable probability here, applied
//!   deterministically from a seeded stream. Ground-truth fields are
//!   preserved untouched on every record (prefixed `gt_`) so the matcher
//!   can be *scored* — something the paper could not do on production data.

pub mod corrupt;
pub mod intern;
pub mod records;
pub mod store;

pub use corrupt::CorruptionModel;
pub use intern::{Sym, SymbolTable};
pub use records::{FileDirection, FileRecord, JobRecord, TransferRecord};
pub use store::MetaStore;
