//! Accumulated bandwidth-usage time series (Fig 7 and Fig 8).
//!
//! The paper plots, for selected site pairs, the bandwidth used by the
//! matched transfers over time: in each time bucket, the sum over active
//! transfers of their mean rates. Fig 7 shows six *remote* links (usage
//! mostly under 10 MBps with spikes to 60–130 MBps, asymmetric by
//! direction); Fig 8 shows six *local* sites (higher but fluctuating, with
//! intermittent drops).

use dmsa_metastore::{MetaStore, Sym, TransferRecord};
use dmsa_simcore::interval::Interval;
use dmsa_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One series point: bucket start time and usage in MB/s.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UsagePoint {
    /// Bucket start.
    pub t: SimTime,
    /// Accumulated usage, megabytes/second.
    pub mbps: f64,
}

/// Bandwidth-usage series for one directed site pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UsageSeries {
    /// Source site symbol.
    pub src: Sym,
    /// Destination site symbol.
    pub dst: Sym,
    /// Bucket width.
    pub bucket: SimDuration,
    /// Non-empty buckets in time order.
    pub points: Vec<UsagePoint>,
    /// Transfers contributing.
    pub n_transfers: usize,
}

impl UsageSeries {
    /// Peak usage (0 for an empty series).
    pub fn peak_mbps(&self) -> f64 {
        self.points.iter().map(|p| p.mbps).fold(0.0, f64::max)
    }

    /// Mean over non-empty buckets (0 for an empty series).
    pub fn mean_mbps(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.mbps).sum::<f64>() / self.points.len() as f64
    }
}

/// Build the usage series for the directed pair `src → dst` from the given
/// transfers (typically a match set's transfers, per the paper).
pub fn usage_series<'a>(
    transfers: impl Iterator<Item = &'a TransferRecord>,
    src: Sym,
    dst: Sym,
    bucket: SimDuration,
) -> UsageSeries {
    let bucket_ms = bucket.as_millis().max(1);
    let mut acc: HashMap<i64, f64> = HashMap::new();
    let mut n = 0usize;
    for t in transfers {
        if t.source_site != src || t.destination_site != dst {
            continue;
        }
        let rate_mbps = t.throughput_bytes_per_sec() / 1e6;
        let span = Interval::new(t.starttime, t.endtime);
        // Empty-interval transfers contribute no bandwidth, so they must
        // not inflate `n_transfers` either — count and contribution stay
        // consistent.
        if span.is_empty() {
            continue;
        }
        n += 1;
        let first = span.start.as_millis().div_euclid(bucket_ms);
        let last = (span.end.as_millis() - 1).div_euclid(bucket_ms);
        for b in first..=last {
            let bs = SimTime::from_millis(b * bucket_ms);
            let be = bs + bucket;
            let overlap = span.intersect(&Interval::new(bs, be)).len().as_millis() as f64;
            // Contribution weighted by in-bucket residency.
            *acc.entry(b).or_insert(0.0) += rate_mbps * overlap / bucket_ms as f64;
        }
    }
    let mut points: Vec<UsagePoint> = acc
        .into_iter()
        .map(|(b, mbps)| UsagePoint {
            t: SimTime::from_millis(b * bucket_ms),
            mbps,
        })
        .collect();
    points.sort_by_key(|p| p.t);
    UsageSeries {
        src,
        dst,
        bucket,
        points,
        n_transfers: n,
    }
}

/// The site pairs with the most matched transfers — how we pick the "six
/// representative connections" of Fig 7/8.
pub fn busiest_pairs(
    store: &MetaStore,
    transfer_ids: &[u32],
    local: bool,
    k: usize,
) -> Vec<(Sym, Sym, usize)> {
    let mut counts: HashMap<(Sym, Sym), usize> = HashMap::new();
    for &ti in transfer_ids {
        let t = &store.transfers[ti as usize];
        let is_local = t.source_site == t.destination_site && store.is_valid_site(t.source_site);
        if is_local != local {
            continue;
        }
        // Skip pairs with unidentified endpoints: the figures name sites.
        if !store.is_valid_site(t.source_site) || !store.is_valid_site(t.destination_site) {
            continue;
        }
        *counts
            .entry((t.source_site, t.destination_site))
            .or_insert(0) += 1;
    }
    let mut pairs: Vec<(Sym, Sym, usize)> =
        counts.into_iter().map(|((s, d), c)| (s, d, c)).collect();
    pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_metastore::SymbolTable;
    use dmsa_rucio_sim::Activity;

    fn transfer(src: Sym, dst: Sym, start_s: i64, end_s: i64, bytes: u64) -> TransferRecord {
        TransferRecord {
            transfer_id: 0,
            lfn: SymbolTable::UNKNOWN,
            dataset: SymbolTable::UNKNOWN,
            proddblock: SymbolTable::UNKNOWN,
            scope: SymbolTable::UNKNOWN,
            file_size: bytes,
            starttime: SimTime::from_secs(start_s),
            endtime: SimTime::from_secs(end_s),
            source_site: src,
            destination_site: dst,
            activity: Activity::AnalysisDownload,
            jeditaskid: None,
            is_download: true,
            is_upload: false,
            attempt: 1,
            succeeded: true,
            gt_pandaid: None,
            gt_source_site: src,
            gt_destination_site: dst,
            gt_file_size: bytes,
        }
    }

    #[test]
    fn single_transfer_fills_its_buckets() {
        let (a, b) = (Sym(1), Sym(2));
        // 100 MB over 100 s => 1 MB/s, spanning two 60 s buckets.
        let ts = [transfer(a, b, 0, 100, 100_000_000)];
        let s = usage_series(ts.iter(), a, b, SimDuration::from_secs(60));
        assert_eq!(s.n_transfers, 1);
        assert_eq!(s.points.len(), 2);
        // First bucket fully covered: 1 MB/s; second covered 40/60.
        assert!((s.points[0].mbps - 1.0).abs() < 1e-9);
        assert!((s.points[1].mbps - 1.0 * 40.0 / 60.0).abs() < 1e-9);
        assert!((s.peak_mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_transfers_accumulate() {
        let (a, b) = (Sym(1), Sym(2));
        let ts = [
            transfer(a, b, 0, 60, 60_000_000),
            transfer(a, b, 0, 60, 120_000_000),
        ];
        let s = usage_series(ts.iter(), a, b, SimDuration::from_secs(60));
        assert_eq!(s.points.len(), 1);
        assert!((s.points[0].mbps - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_transfers_are_excluded_from_count_and_series() {
        let (a, b) = (Sym(1), Sym(2));
        let ts = [
            transfer(a, b, 0, 100, 100_000_000),
            // Zero-duration record (equal timestamps): no bandwidth
            // contribution, so it must not count either.
            transfer(a, b, 50, 50, 5_000_000),
            // Negative-duration record (corrupted timestamps): same.
            transfer(a, b, 80, 20, 5_000_000),
        ];
        let s = usage_series(ts.iter(), a, b, SimDuration::from_secs(60));
        assert_eq!(s.n_transfers, 1, "only the real transfer counts");
        assert_eq!(s.points.len(), 2);
        assert!((s.peak_mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn direction_is_respected() {
        let (a, b) = (Sym(1), Sym(2));
        let ts = [transfer(a, b, 0, 10, 1_000_000)];
        let rev = usage_series(ts.iter(), b, a, SimDuration::from_secs(60));
        assert_eq!(rev.n_transfers, 0);
        assert!(rev.points.is_empty());
        assert_eq!(rev.mean_mbps(), 0.0);
    }

    #[test]
    fn busiest_pairs_split_local_remote() {
        let mut store = MetaStore::new();
        let a = store.register_site("A");
        let b = store.register_site("B");
        store.transfers.push(transfer(a, a, 0, 10, 1));
        store.transfers.push(transfer(a, a, 20, 30, 1));
        store.transfers.push(transfer(a, b, 0, 10, 1));
        let ids: Vec<u32> = (0..3).collect();
        let local = busiest_pairs(&store, &ids, true, 5);
        assert_eq!(local, vec![(a, a, 2)]);
        let remote = busiest_pairs(&store, &ids, false, 5);
        assert_eq!(remote, vec![(a, b, 1)]);
    }

    #[test]
    fn unknown_endpoints_are_skipped_in_pair_selection() {
        let mut store = MetaStore::new();
        let a = store.register_site("A");
        store
            .transfers
            .push(transfer(a, SymbolTable::UNKNOWN, 0, 10, 1));
        let remote = busiest_pairs(&store, &[0], false, 5);
        assert!(remote.is_empty());
    }
}
