//! Sites, tiers, and storage elements.
//!
//! Mirrors the WLCG organisation described in §2.1 of the paper: Tier-0 at
//! CERN records and first-processes raw data; Tier-1 national labs hold
//! long-term storage; Tier-2 universities contribute simulation and analysis
//! capacity; Tier-3 institutions serve localized access. Each site exposes
//! one or more Rucio Storage Elements (RSEs, §2.2) — logical endpoints for
//! disk or tape.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense site identifier; index into [`crate::GridTopology::sites`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Index form, for matrix addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Dense RSE identifier; index into [`crate::GridTopology::rses`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RseId(pub u32);

impl RseId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// WLCG tier of a computing site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Tier {
    /// CERN: raw data recording and first-pass processing.
    T0,
    /// National laboratories: long-term storage, reprocessing.
    T1,
    /// Universities / labs: simulation and user analysis.
    T2,
    /// Small institutions: localized access.
    T3,
}

impl Tier {
    /// All tiers, hub first.
    pub const ALL: [Tier; 4] = [Tier::T0, Tier::T1, Tier::T2, Tier::T3];

    /// Short label used in site names ("Tier-0" etc.).
    pub fn label(self) -> &'static str {
        match self {
            Tier::T0 => "Tier-0",
            Tier::T1 => "Tier-1",
            Tier::T2 => "Tier-2",
            Tier::T3 => "Tier-3",
        }
    }
}

/// Storage media class behind an RSE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RseKind {
    /// Online disk storage (DATADISK / SCRATCHDISK style).
    Disk,
    /// Nearline tape; access implies a staging recall.
    Tape,
}

/// A computing site on the grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Site {
    /// Dense identifier.
    pub id: SiteId,
    /// Human-readable name, e.g. `"BNL_T1"` or `"CERN-PROD"`.
    pub name: String,
    /// WLCG tier.
    pub tier: Tier,
    /// Geographic region label (used for figure captions, e.g. "NY, USA").
    pub region: String,
    /// Number of concurrent job slots (compute capacity).
    pub compute_slots: u32,
    /// Number of concurrent inbound/outbound transfer streams the site's
    /// storage frontend sustains. Sites with `1` serialize their transfers —
    /// the paper's Fig 10 "sequential rather than parallel" pathology.
    pub transfer_slots: u32,
    /// Relative activity weight; heavy-tailed across sites, which produces
    /// the Fig 3 hot spots.
    pub activity_weight: f64,
    /// RSEs hosted at this site.
    pub rses: Vec<RseId>,
}

/// A Rucio Storage Element: a logical storage endpoint at a site.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rse {
    /// Dense identifier.
    pub id: RseId,
    /// Endpoint name, e.g. `"BNL_T1_DATADISK"`.
    pub name: String,
    /// Hosting site.
    pub site: SiteId,
    /// Disk or tape.
    pub kind: RseKind,
    /// Capacity in bytes (used by rule evaluation / deletion pressure).
    pub capacity_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels() {
        assert_eq!(Tier::T0.label(), "Tier-0");
        assert_eq!(Tier::T3.label(), "Tier-3");
        assert_eq!(Tier::ALL.len(), 4);
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(SiteId(1) < SiteId(2));
        assert_eq!(SiteId(5).index(), 5);
        assert_eq!(RseId(3).index(), 3);
        assert_eq!(format!("{:?}", SiteId(7)), "S7");
        assert_eq!(format!("{:?}", RseId(7)), "R7");
    }
}
