//! Jobs and their recorded lifecycle.

use crate::types::{IoMode, JobId, JobStatus, TaskId, TaskKind, TaskStatus};
use dmsa_gridnet::SiteId;
use dmsa_rucio_sim::FileId;
use dmsa_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A fully executed job, with the timeline fields the paper's Algorithm 1
/// and analyses consume.
///
/// Lifecycle (paper §4.2): `creationtime → starttime` is the **queuing
/// time** (brokerage, staging, waiting for a compute slot);
/// `starttime → endtime` is the **wall time** (execution plus output
/// upload, since PanDA marks a job finished only after its outputs are
/// safely stored).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Job {
    /// `pandaid`.
    pub id: JobId,
    /// `jeditaskid` of the owning task.
    pub task: TaskId,
    /// User analysis or production.
    pub kind: TaskKind,
    /// Site the brokerage assigned (`computingsite`).
    pub computing_site: SiteId,
    /// Submission instant.
    pub creationtime: SimTime,
    /// Execution start (end of queuing).
    pub starttime: SimTime,
    /// Completion (after output upload).
    pub endtime: SimTime,
    /// Input files read by this job.
    pub input_files: Vec<FileId>,
    /// Output files written by this job.
    pub output_files: Vec<FileId>,
    /// Total input bytes (`ninputfilebytes`).
    pub ninputfilebytes: u64,
    /// Total output bytes (`noutputfilebytes`).
    pub noutputfilebytes: u64,
    /// Stage-in vs direct I/O.
    pub io_mode: IoMode,
    /// Final job status.
    pub status: JobStatus,
    /// Final status of the owning task (denormalized for Fig 9).
    pub task_status: TaskStatus,
    /// PanDA error code if failed.
    pub error_code: Option<u32>,
}

impl Job {
    /// Queuing duration (creation → execution start).
    pub fn queuing_time(&self) -> SimDuration {
        (self.starttime - self.creationtime).clamp_non_negative()
    }

    /// Wall duration (execution start → completion).
    pub fn wall_time(&self) -> SimDuration {
        (self.endtime - self.starttime).clamp_non_negative()
    }

    /// End-to-end lifetime (creation → completion).
    pub fn lifetime(&self) -> SimDuration {
        (self.endtime - self.creationtime).clamp_non_negative()
    }

    /// True for successfully finished jobs.
    pub fn succeeded(&self) -> bool {
        self.status == JobStatus::Finished
    }
}

/// Outcome summary handed back by the execution model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// Final status.
    pub status: JobStatus,
    /// Error code when failed.
    pub error_code: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: JobId(1),
            task: TaskId(2),
            kind: TaskKind::UserAnalysis,
            computing_site: SiteId(3),
            creationtime: SimTime::from_secs(100),
            starttime: SimTime::from_secs(400),
            endtime: SimTime::from_secs(1000),
            input_files: vec![],
            output_files: vec![],
            ninputfilebytes: 10,
            noutputfilebytes: 5,
            io_mode: IoMode::StageIn,
            status: JobStatus::Finished,
            task_status: TaskStatus::Done,
            error_code: None,
        }
    }

    #[test]
    fn durations_partition_the_lifetime() {
        let j = job();
        assert_eq!(j.queuing_time(), SimDuration::from_secs(300));
        assert_eq!(j.wall_time(), SimDuration::from_secs(600));
        assert_eq!(j.lifetime(), SimDuration::from_secs(900));
        assert_eq!(
            j.lifetime(),
            j.queuing_time() + j.wall_time(),
            "queue + wall must cover the lifetime"
        );
    }

    #[test]
    fn success_flag_tracks_status() {
        let mut j = job();
        assert!(j.succeeded());
        j.status = JobStatus::Failed;
        assert!(!j.succeeded());
    }

    #[test]
    fn degenerate_timelines_clamp_to_zero() {
        let mut j = job();
        j.starttime = SimTime::from_secs(50); // before creation (corrupted upstream)
        assert_eq!(j.queuing_time(), SimDuration::ZERO);
    }
}
