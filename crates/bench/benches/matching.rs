//! Matcher-engine benchmarks: the §5.5 scalability story.
//!
//! Measures the interchangeable engines (naive reference, sequential
//! indexed, rayon-parallel, prepared CSR index) on identical stores, the
//! prepared-index build cost, the payoff of sharing one build across all
//! three methods and across streaming windows, and engine scaling over
//! store sizes. Run with `cargo bench -p dmsa-bench --bench matching`;
//! `bench_matching` (the binary) emits the tracked `BENCH_matching.json`
//! baseline from the same measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsa_core::matcher::Matcher;
use dmsa_core::{
    IndexedMatcher, MatchMethod, NaiveMatcher, ParallelMatcher, PreparedMatcher, PreparedStore,
    WindowedMatcher,
};
use dmsa_scenario::{Campaign, ScenarioConfig};
use dmsa_simcore::SimDuration;
use std::hint::black_box;

fn campaign(scale: f64) -> Campaign {
    dmsa_scenario::run(&ScenarioConfig::paper_8day(scale))
}

/// Naive vs indexed vs parallel vs prepared at a size the naive engine can
/// still handle.
fn engines(c: &mut Criterion) {
    let small = campaign(0.004);
    let mut g = c.benchmark_group("engines");
    g.sample_size(10);
    g.bench_function("naive/exact", |b| {
        b.iter(|| {
            black_box(NaiveMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.bench_function("indexed/exact", |b| {
        b.iter(|| {
            black_box(IndexedMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.bench_function("parallel/exact", |b| {
        b.iter(|| {
            black_box(ParallelMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.bench_function("prepared/exact", |b| {
        b.iter(|| {
            black_box(PreparedMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.finish();
}

/// Prepared-index construction cost, and the steady-state matching pass
/// over an index built once outside the timing loop.
fn prepared_build(c: &mut Criterion) {
    let camp = campaign(0.02);
    let mut g = c.benchmark_group("prepared_build");
    g.sample_size(10);
    g.bench_function("build", |b| {
        b.iter(|| black_box(PreparedStore::build(&camp.store)))
    });
    let prepared = PreparedStore::build(&camp.store);
    g.bench_function("reuse/rm2", |b| {
        b.iter(|| black_box(prepared.par_match_window(camp.window, MatchMethod::Rm2)))
    });
    g.finish();
}

/// The tentpole comparison: one shared prepared index serving all three
/// methods versus rebuilding the index per method (what `ReproContext`
/// used to do), and one build serving every streaming window versus a
/// rebuild per window.
fn shared_reuse(c: &mut Criterion) {
    let camp = campaign(0.02);
    let mut g = c.benchmark_group("shared_reuse");
    g.sample_size(10);
    g.bench_function("3methods/rebuild-per-method", |b| {
        b.iter(|| {
            for m in MatchMethod::ALL {
                black_box(ParallelMatcher.match_jobs(&camp.store, camp.window, m));
            }
        })
    });
    g.bench_function("3methods/shared-prepared", |b| {
        b.iter(|| {
            let prepared = PreparedStore::build(&camp.store);
            for m in MatchMethod::ALL {
                black_box(prepared.par_match_window(camp.window, m));
            }
        })
    });
    let width = SimDuration::from_days(2);
    let overlap = SimDuration::from_days(1);
    g.bench_function("windows/rebuild-per-window", |b| {
        let w = WindowedMatcher::new(ParallelMatcher, width, overlap);
        b.iter(|| black_box(w.match_streaming(&camp.store, camp.window, MatchMethod::Rm2)))
    });
    g.bench_function("windows/shared-prepared", |b| {
        let w = WindowedMatcher::new(PreparedMatcher, width, overlap);
        b.iter(|| black_box(w.match_streaming(&camp.store, camp.window, MatchMethod::Rm2)))
    });
    g.finish();
}

/// Indexed-engine cost per method (RM2 relaxations widen candidate sets).
fn methods(c: &mut Criterion) {
    let camp = campaign(0.02);
    let mut g = c.benchmark_group("methods");
    g.sample_size(10);
    for method in MatchMethod::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| b.iter(|| black_box(IndexedMatcher.match_jobs(&camp.store, camp.window, m))),
        );
    }
    g.finish();
}

/// Parallel-engine scaling over store size.
fn scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for scale in [0.005, 0.01, 0.02, 0.04] {
        let camp = campaign(scale);
        let transfers = camp.store.transfers.len();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{transfers}tx")),
            &camp,
            |b, camp| {
                b.iter(|| {
                    black_box(ParallelMatcher.match_jobs(
                        &camp.store,
                        camp.window,
                        MatchMethod::Rm2,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    engines,
    prepared_build,
    shared_reuse,
    methods,
    scaling
);
criterion_main!(benches);
