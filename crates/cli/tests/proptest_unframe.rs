//! Property tests for the checkpoint frame codec.
//!
//! The resume ladder feeds `unframe` whatever it finds on disk — files a
//! chaos drill tore mid-write, files a different build wrote, files that
//! are not checkpoints at all. Two properties must hold for every input:
//! it never panics, and every corruption lands in the right taxonomy
//! bucket (truncation vs magic vs version vs checksum), because the
//! ladder's skip notes and `dmsa verify` both classify by those stable
//! message prefixes.

use dmsa_cli::checkpoint::{frame, unframe, CKPT_VERSION};
use proptest::prelude::*;

/// Classify an `unframe` error by its stable message prefix.
fn classify(err: &str) -> &'static str {
    if err.starts_with("truncated") {
        "truncated"
    } else if err.starts_with("bad magic") {
        "magic"
    } else if err.starts_with("frame version") {
        "version"
    } else if err.starts_with("checksum mismatch") {
        "checksum"
    } else if err.starts_with("implausible payload length") {
        "length"
    } else {
        "unknown"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_recovers_the_payload(
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let framed = frame(&payload);
        prop_assert_eq!(unframe(&framed).unwrap(), payload.as_slice());
    }

    #[test]
    fn any_strict_prefix_is_a_truncation(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        cut in 0usize..10_000,
    ) {
        let framed = frame(&payload);
        let cut = cut % framed.len(); // 0..len: strictly shorter
        let err = unframe(&framed[..cut]).unwrap_err();
        prop_assert_eq!(classify(&err), "truncated", "cut {}: {}", cut, err);
    }

    #[test]
    fn single_byte_corruption_maps_to_the_right_bucket(
        payload in prop::collection::vec(any::<u8>(), 1..300),
        pos in 0usize..10_000,
        delta in 0u8..255,
    ) {
        let framed = frame(&payload);
        let pos = pos % framed.len();
        let mut bad = framed.clone();
        bad[pos] ^= delta + 1; // non-zero flip: the byte always changes
        let err = unframe(&bad).unwrap_err();
        let bucket = classify(&err);
        match pos {
            // Frame layout: magic[0..8] version[8..12] len[12..20]
            // payload[20..20+n] crc32[20+n..24+n].
            0..=7 => prop_assert_eq!(bucket, "magic", "pos {}: {}", pos, err),
            8..=11 => prop_assert_eq!(bucket, "version", "pos {}: {}", pos, err),
            // A corrupt length field reads as a truncation (declared
            // and actual sizes disagree) or an implausible length
            // (checked arithmetic overflows) — never as a clean parse.
            12..=19 => prop_assert!(
                bucket == "truncated" || bucket == "length",
                "pos {}: {}", pos, err
            ),
            _ => prop_assert_eq!(bucket, "checksum", "pos {}: {}", pos, err),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_never_false_parse(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        if let Ok(payload) = unframe(&bytes) {
            // Accepting random bytes is only legitimate if they are a
            // canonical frame down to the last byte.
            prop_assert_eq!(frame(payload), bytes.clone());
        }
    }

    #[test]
    fn valid_header_with_garbage_body_never_panics(
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DMSACKPT");
        bytes.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let _ = unframe(&bytes); // classification may vary; panics may not
    }
}
