//! Shared matching semantics and the reference (naive) implementation.
//!
//! All three engines funnel through [`finalize_candidates`], so they can
//! only differ in *candidate generation* — and the property tests pin the
//! candidate sets to be equal too. This is the module to read next to the
//! paper's Algorithm 1 pseudocode.

use crate::matchset::{MatchSet, MatchedJob};
use crate::method::MatchMethod;
use dmsa_metastore::{FileRecord, JobRecord, MetaStore, TransferRecord};
use dmsa_simcore::interval::Interval;
use std::collections::HashSet;

/// The 5-attribute join key of Algorithm 1:
/// (`lfn`, `dataset`, `proddblock`, `scope`, `file_size`).
pub type FileKey = (
    dmsa_metastore::Sym,
    dmsa_metastore::Sym,
    dmsa_metastore::Sym,
    dmsa_metastore::Sym,
    u64,
);

/// Join key of a file-table row.
pub fn file_key(f: &FileRecord) -> FileKey {
    (f.lfn, f.dataset, f.proddblock, f.scope, f.file_size)
}

/// Join key of a transfer record.
pub fn transfer_key(t: &TransferRecord) -> FileKey {
    (t.lfn, t.dataset, t.proddblock, t.scope, t.file_size)
}

/// Indices of the user jobs a matching run considers: user-analysis jobs
/// completed within `window` (§4.2's common-time-window pre-selection).
pub fn job_universe(store: &MetaStore, window: Interval) -> Vec<u32> {
    store
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| {
            j.is_user_analysis && j.endtime < window.end && j.creationtime >= window.start
        })
        .map(|(i, _)| i as u32)
        .collect()
}

/// Does `t` pass the direction-aware site check for `job` under `method`?
///
/// Exact/RM1 (§4.2, condition 3): a download's destination — or an
/// upload's source — must equal the job's computing site. RM2 (§4.3)
/// additionally retains transfers whose relevant endpoint is recorded as
/// `UNKNOWN` or an invalid name, "recognizing that these site labels may
/// be incorrectly recorded in the metadata".
fn site_check(job: &JobRecord, t: &TransferRecord, method: MatchMethod, store: &MetaStore) -> bool {
    let relaxed = |site| method.relaxes_sites() && !store.is_valid_site(site);
    if t.is_download {
        t.destination_site == job.computingsite || relaxed(t.destination_site)
    } else if t.is_upload {
        t.source_site == job.computingsite || relaxed(t.source_site)
    } else {
        false
    }
}

/// Apply Algorithm 1's final filter to a job's candidate transfers.
///
/// `candidates` are transfer indices already joined on `jeditaskid` and the
/// 5-attribute file key. Ordering of the result is ascending by index.
///
/// The byte-sum condition (condition 2) is evaluated per direction group
/// after the time and site filters: the download group must sum to
/// `ninputfilebytes`, the upload group to `noutputfilebytes`; a failing
/// group is rejected wholesale ("this filtering step treats T'_j as a
/// whole set rather than solving the underlying NP-hard subset-selection
/// problem", §4.2).
pub fn finalize_candidates(
    job: &JobRecord,
    candidates: &[u32],
    store: &MetaStore,
    method: MatchMethod,
) -> Vec<u32> {
    let mut downloads = Vec::new();
    let mut uploads = Vec::new();
    let mut out = Vec::new();
    finalize_candidates_into(
        job,
        candidates,
        store,
        method,
        &mut downloads,
        &mut uploads,
        &mut out,
    );
    out
}

/// [`finalize_candidates`] writing into caller-provided buffers, so hot
/// loops (the prepared engine's `match_one`) run allocation-free in steady
/// state. `downloads` and `uploads` are scratch space; `out` receives the
/// surviving transfer indices in ascending order. All three are cleared on
/// entry.
pub fn finalize_candidates_into(
    job: &JobRecord,
    candidates: &[u32],
    store: &MetaStore,
    method: MatchMethod,
    downloads: &mut Vec<u32>,
    uploads: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    downloads.clear();
    uploads.clear();
    out.clear();
    for &ti in candidates {
        let t = &store.transfers[ti as usize];
        // Condition 1: the transfer started before the job ended.
        if t.starttime >= job.endtime {
            continue;
        }
        // Condition 3: direction-aware site consistency.
        if !site_check(job, t, method, store) {
            continue;
        }
        if t.is_download {
            downloads.push(ti);
        } else {
            uploads.push(ti);
        }
    }

    if method.checks_byte_sums() {
        // Condition 2: per-direction byte totals must match the job's.
        let sum = |ids: &[u32]| -> u64 {
            ids.iter()
                .map(|&ti| store.transfers[ti as usize].file_size)
                .sum()
        };
        if !downloads.is_empty() && sum(downloads) == job.ninputfilebytes {
            out.extend_from_slice(downloads);
        }
        if !uploads.is_empty() && sum(uploads) == job.noutputfilebytes {
            out.extend_from_slice(uploads);
        }
    } else {
        out.extend_from_slice(downloads);
        out.extend_from_slice(uploads);
    }
    out.sort_unstable();
}

/// A matching engine: produces the mapping set `M` for a store, window,
/// and strategy.
pub trait Matcher {
    /// Run the matching.
    fn match_jobs(&self, store: &MetaStore, window: Interval, method: MatchMethod) -> MatchSet;

    /// Run the matching over several windows of the **same** store.
    ///
    /// The default runs [`Matcher::match_jobs`] per window; engines with a
    /// reusable prepared index override this to build it once
    /// ([`crate::prepared::PreparedMatcher`] does). The streaming wrapper
    /// ([`crate::windowed::WindowedMatcher`]) funnels through this method,
    /// so the override is what makes windowed matching cheap.
    fn match_many(
        &self,
        store: &MetaStore,
        windows: &[Interval],
        method: MatchMethod,
    ) -> Vec<MatchSet> {
        windows
            .iter()
            .map(|&w| self.match_jobs(store, w, method))
            .collect()
    }
}

/// The reference implementation: per job, scan **every** transfer record.
/// O(|J|·|T|); only suitable for small stores, but trivially correct —
/// the other engines are property-tested against it.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveMatcher;

impl Matcher for NaiveMatcher {
    fn match_jobs(&self, store: &MetaStore, window: Interval, method: MatchMethod) -> MatchSet {
        let mut out = Vec::new();
        for job_idx in job_universe(store, window) {
            let job = &store.jobs[job_idx as usize];
            // F'_j: the job's file-table rows.
            let keys: HashSet<FileKey> = store
                .files
                .iter()
                .filter(|f| f.pandaid == job.pandaid && f.jeditaskid == job.jeditaskid)
                .map(file_key)
                .collect();
            if keys.is_empty() {
                continue;
            }
            // T'_j: transfers sharing the task id and a file key.
            let candidates: Vec<u32> = store
                .transfers
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.jeditaskid == Some(job.jeditaskid) && keys.contains(&transfer_key(t))
                })
                .map(|(i, _)| i as u32)
                .collect();
            let transfers = finalize_candidates(job, &candidates, store, method);
            if !transfers.is_empty() {
                out.push(MatchedJob { job_idx, transfers });
            }
        }
        MatchSet { method, jobs: out }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A hand-built micro-store used across the matcher test modules.

    use dmsa_metastore::{FileDirection, FileRecord, JobRecord, MetaStore, Sym, TransferRecord};
    use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::interval::Interval;
    use dmsa_simcore::SimTime;

    /// Builder for compact matcher test fixtures.
    pub struct StoreBuilder {
        pub store: MetaStore,
        next_transfer: u64,
    }

    impl StoreBuilder {
        pub fn new() -> Self {
            StoreBuilder {
                store: MetaStore::new(),
                next_transfer: 0,
            }
        }

        pub fn site(&mut self, name: &str) -> Sym {
            self.store.register_site(name)
        }

        pub fn sym(&mut self, name: &str) -> Sym {
            self.store.symbols.intern(name)
        }

        /// A user job with one input file of `size` at `site`, with the
        /// matching file-table row. Returns the job index.
        #[allow(clippy::too_many_arguments)]
        pub fn job_with_file(
            &mut self,
            pandaid: u64,
            taskid: u64,
            site: Sym,
            size: u64,
            created_s: i64,
            started_s: i64,
            ended_s: i64,
        ) -> u32 {
            let lfn = self.sym(&format!("lfn-{pandaid}"));
            let ds = self.sym(&format!("ds-{taskid}"));
            let blk = self.sym(&format!("blk-{taskid}"));
            let scope = self.sym("user.u0001");
            self.store.files.push(FileRecord {
                pandaid,
                jeditaskid: taskid,
                lfn,
                dataset: ds,
                proddblock: blk,
                scope,
                file_size: size,
                direction: FileDirection::Input,
            });
            self.store.jobs.push(JobRecord {
                pandaid,
                jeditaskid: taskid,
                computingsite: site,
                creationtime: SimTime::from_secs(created_s),
                starttime: SimTime::from_secs(started_s),
                endtime: SimTime::from_secs(ended_s),
                ninputfilebytes: size,
                noutputfilebytes: 0,
                io_mode: IoMode::StageIn,
                status: JobStatus::Finished,
                task_status: TaskStatus::Done,
                error_code: None,
                is_user_analysis: true,
            });
            (self.store.jobs.len() - 1) as u32
        }

        /// A download transfer for the job created by `job_with_file`.
        #[allow(clippy::too_many_arguments)]
        pub fn download(
            &mut self,
            pandaid: u64,
            taskid: u64,
            src: Sym,
            dst: Sym,
            size: u64,
            start_s: i64,
            end_s: i64,
        ) -> u32 {
            let lfn = self.sym(&format!("lfn-{pandaid}"));
            let ds = self.sym(&format!("ds-{taskid}"));
            let blk = self.sym(&format!("blk-{taskid}"));
            let scope = self.sym("user.u0001");
            let id = self.next_transfer;
            self.next_transfer += 1;
            self.store.transfers.push(TransferRecord {
                transfer_id: id,
                lfn,
                dataset: ds,
                proddblock: blk,
                scope,
                file_size: size,
                starttime: SimTime::from_secs(start_s),
                endtime: SimTime::from_secs(end_s),
                source_site: src,
                destination_site: dst,
                activity: Activity::AnalysisDownload,
                jeditaskid: Some(taskid),
                is_download: true,
                is_upload: false,
                attempt: 1,
                succeeded: true,
                gt_pandaid: Some(pandaid),
                gt_source_site: src,
                gt_destination_site: dst,
                gt_file_size: size,
            });
            (self.store.transfers.len() - 1) as u32
        }

        pub fn window(&self) -> Interval {
            Interval::new(SimTime::from_secs(0), SimTime::from_secs(1_000_000))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::StoreBuilder;
    use super::*;

    #[test]
    fn exact_match_happy_path() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        let j = b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        let t = b.download(1, 10, site, site, 1_000, 10, 50);
        let m = NaiveMatcher.match_jobs(&b.store, b.window(), MatchMethod::Exact);
        assert_eq!(m.jobs.len(), 1);
        assert_eq!(m.jobs[0].job_idx, j);
        assert_eq!(m.jobs[0].transfers, vec![t]);
    }

    #[test]
    fn transfer_after_job_end_is_rejected() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, site, site, 1_000, 250, 300); // starts after end
        let m = NaiveMatcher.match_jobs(&b.store, b.window(), MatchMethod::Exact);
        assert!(m.jobs.is_empty());
    }

    #[test]
    fn wrong_destination_site_is_rejected_by_exact_but_not_by_rm2_when_unknown() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        let other = b.site("SITE-B");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, other, other, 1_000, 10, 50); // valid but wrong dest
        let mut b2 = StoreBuilder::new();
        let site2 = b2.site("SITE-A");
        b2.site("CERN");
        b2.job_with_file(1, 10, site2, 1_000, 0, 100, 200);
        b2.download(1, 10, site2, unknown, 1_000, 10, 50); // unknown dest

        // Valid-but-different destination: rejected by every method.
        for m in MatchMethod::ALL {
            assert!(NaiveMatcher
                .match_jobs(&b.store, b.window(), m)
                .jobs
                .is_empty());
        }
        // Unknown destination: rejected by Exact/RM1, accepted by RM2.
        assert!(NaiveMatcher
            .match_jobs(&b2.store, b2.window(), MatchMethod::Exact)
            .jobs
            .is_empty());
        assert!(NaiveMatcher
            .match_jobs(&b2.store, b2.window(), MatchMethod::Rm1)
            .jobs
            .is_empty());
        assert_eq!(
            NaiveMatcher
                .match_jobs(&b2.store, b2.window(), MatchMethod::Rm2)
                .jobs
                .len(),
            1
        );
    }

    #[test]
    fn byte_sum_mismatch_rejected_by_exact_recovered_by_rm1() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        // The job's input totals 1_000 bytes but the recorded transfer has
        // the right per-file size for a *different* sibling that was lost;
        // emulate by bumping the job total.
        b.store.jobs[0].ninputfilebytes = 5_000;
        b.download(1, 10, site, site, 1_000, 10, 50);
        assert!(NaiveMatcher
            .match_jobs(&b.store, b.window(), MatchMethod::Exact)
            .jobs
            .is_empty());
        assert_eq!(
            NaiveMatcher
                .match_jobs(&b.store, b.window(), MatchMethod::Rm1)
                .jobs
                .len(),
            1
        );
    }

    #[test]
    fn missing_taskid_on_transfer_never_matches() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        let t = b.download(1, 10, site, site, 1_000, 10, 50);
        b.store.transfers[t as usize].jeditaskid = None;
        for m in MatchMethod::ALL {
            assert!(NaiveMatcher
                .match_jobs(&b.store, b.window(), m)
                .jobs
                .is_empty());
        }
    }

    #[test]
    fn wrong_file_size_breaks_the_join_for_all_methods() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, site, site, 999, 10, 50); // size jittered
        for m in MatchMethod::ALL {
            assert!(
                NaiveMatcher
                    .match_jobs(&b.store, b.window(), m)
                    .jobs
                    .is_empty(),
                "jittered size must break the attribute join under {m:?}"
            );
        }
    }

    #[test]
    fn multi_file_job_requires_complete_set_for_exact() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        let j = b.job_with_file(1, 10, site, 600, 0, 100, 200);
        // Add a second input file to the same job.
        b.store.files.push(dmsa_metastore::FileRecord {
            pandaid: 1,
            jeditaskid: 10,
            lfn: b.store.symbols.intern("lfn-1b"),
            dataset: b.store.symbols.intern("ds-10"),
            proddblock: b.store.symbols.intern("blk-10"),
            scope: b.store.symbols.intern("user.u0001"),
            file_size: 400,
            direction: dmsa_metastore::FileDirection::Input,
        });
        b.store.jobs[j as usize].ninputfilebytes = 1_000;
        // First file's transfer (600 B) only.
        let lfn_a = b.store.symbols.get("lfn-1").unwrap();
        b.download(1, 10, site, site, 600, 10, 50);
        b.store.transfers.last_mut().unwrap().lfn = lfn_a;
        b.store.transfers.last_mut().unwrap().file_size = 600;

        // Incomplete set: sum 600 != 1000 → exact fails, RM1 succeeds.
        assert!(NaiveMatcher
            .match_jobs(&b.store, b.window(), MatchMethod::Exact)
            .jobs
            .is_empty());
        let rm1 = NaiveMatcher.match_jobs(&b.store, b.window(), MatchMethod::Rm1);
        assert_eq!(rm1.n_matched_transfers(), 1);

        // Adding the second transfer completes the sum → exact succeeds.
        b.download(1, 10, site, site, 400, 12, 60);
        let t = b.store.transfers.last_mut().unwrap();
        t.lfn = b.store.symbols.get("lfn-1b").unwrap();
        let exact = NaiveMatcher.match_jobs(&b.store, b.window(), MatchMethod::Exact);
        assert_eq!(exact.n_matched_transfers(), 2);
    }

    #[test]
    fn production_jobs_are_excluded_from_the_universe() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.store.jobs[0].is_user_analysis = false;
        b.download(1, 10, site, site, 1_000, 10, 50);
        for m in MatchMethod::ALL {
            assert!(NaiveMatcher
                .match_jobs(&b.store, b.window(), m)
                .jobs
                .is_empty());
        }
    }

    #[test]
    fn window_excludes_jobs_ending_outside() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 2_000_000);
        b.download(1, 10, site, site, 1_000, 10, 50);
        let m = NaiveMatcher.match_jobs(&b.store, b.window(), MatchMethod::Exact);
        assert!(m.jobs.is_empty(), "job still running at window end");
    }
}
