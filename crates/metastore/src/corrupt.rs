//! The metadata-quality model.
//!
//! The paper's matching rates are *dominated* by metadata quality: of
//! 6.78 M transfers only 1.59 M even carry a `jeditaskid`, sites are
//! recorded as `UNKNOWN` or with invalid names (§4.3, Fig 12/Table 3),
//! sizes are "not recorded precisely down to the byte level" (§4.3, RM1's
//! motivation), and records go missing outright ("incomplete records",
//! §1). Each pathology is modelled as an independent, seeded Bernoulli
//! draw per record, so a corruption *rate* sweep is just a parameter sweep
//! — which is what the ablation benches do.
//!
//! Ground-truth fields (`gt_*`) are never touched.

use crate::records::TransferRecord;
use crate::store::MetaStore;
use dmsa_simcore::RngFactory;
use dmsa_simcore::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Probabilities of each metadata pathology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorruptionModel {
    /// A job-driven transfer loses its `jeditaskid`.
    pub p_drop_taskid: f64,
    /// A transfer's source *or* destination site is recorded `UNKNOWN`.
    pub p_unknown_site: f64,
    /// A transfer's site is recorded as a garbage name.
    pub p_invalid_site: f64,
    /// A transfer's recorded size is off by up to `max_jitter_bytes`.
    pub p_size_jitter: f64,
    /// Maximum absolute size error when jittered.
    pub max_jitter_bytes: u64,
    /// A transfer event is lost entirely (breaks sibling sum checks —
    /// RM1's other motivation).
    pub p_drop_transfer: f64,
    /// A PanDA file-table row is lost (breaks candidate discovery).
    pub p_drop_file_record: f64,
    /// A job's `ninputfilebytes` total is inconsistent with its per-file
    /// sizes (different accounting path in PanDA). Exact matching rejects
    /// such jobs at the sum check; RM1 recovers them (§4.3 case 2).
    pub p_input_bytes_jitter: f64,
    /// Same for `noutputfilebytes`. Kept low: the paper matches 95 % of
    /// Analysis Upload transfers, so output accounting is mostly sound.
    pub p_output_bytes_jitter: f64,
    /// Burst pathology: a whole task's transfers get jittered sizes (the
    /// metadata pipeline for that batch recorded sizes through a lossy
    /// path). Kills the attribute join for *every* job of the task, which
    /// is what keeps the paper's RM1 gain small (RM1/Exact ≈ 1.2×): most
    /// losses are all-or-nothing, not partial.
    pub p_task_size_jitter: f64,
    /// Burst pathology: a whole task's transfers lose their endpoint names
    /// (recorded `UNKNOWN`). Exact/RM1 lose these jobs wholesale; RM2
    /// recovers them as *all-remote* matches — the paper's +7.4 k
    /// all-remote jobs at RM2 (Table 2b).
    pub p_task_unknown_site: f64,
    /// Burst pathology: a whole task's transfers lose `jeditaskid`.
    pub p_task_drop_taskid: f64,
    /// A transfer's recorded `attempt` ordinal is reset to 1 (retry
    /// bookkeeping lost in the metadata pipeline), hiding a retry from
    /// the redundancy attribution. Off by default so pre-existing
    /// scenarios replay unchanged.
    #[serde(default)]
    pub p_clear_attempt: f64,
}

impl Default for CorruptionModel {
    fn default() -> Self {
        CorruptionModel {
            p_drop_taskid: 0.01,
            p_unknown_site: 0.05,
            p_invalid_site: 0.01,
            p_size_jitter: 0.01,
            max_jitter_bytes: 4_096,
            p_drop_transfer: 0.03,
            p_drop_file_record: 0.01,
            p_input_bytes_jitter: 0.03,
            p_output_bytes_jitter: 0.01,
            p_task_size_jitter: 0.62,
            p_task_unknown_site: 0.42,
            p_task_drop_taskid: 0.12,
            p_clear_attempt: 0.0,
        }
    }
}

/// Shift a byte total by a small non-zero amount (accounting skew).
fn perturb(bytes: u64, rng: &mut SimRng) -> u64 {
    let jitter = rng.random_range(1..=1_048_576i64);
    let sign = if rng.random::<bool>() { 1 } else { -1 };
    (bytes as i64 + sign * jitter).max(1) as u64
}

/// Garbage site strings occasionally found in production metadata.
const INVALID_SITE_NAMES: &[&str] = &["", "None", "srm://0.0.0.0", "???", "NULL_SITE"];

impl CorruptionModel {
    /// A model that corrupts nothing (clean-metadata baseline; the
    /// evaluator must then score precision = recall = 1 for exact
    /// matching of recorded stage-in jobs).
    pub fn none() -> Self {
        CorruptionModel {
            p_drop_taskid: 0.0,
            p_unknown_site: 0.0,
            p_invalid_site: 0.0,
            p_size_jitter: 0.0,
            max_jitter_bytes: 0,
            p_drop_transfer: 0.0,
            p_drop_file_record: 0.0,
            p_input_bytes_jitter: 0.0,
            p_output_bytes_jitter: 0.0,
            p_task_size_jitter: 0.0,
            p_task_unknown_site: 0.0,
            p_task_drop_taskid: 0.0,
            p_clear_attempt: 0.0,
        }
    }

    /// Scale every probability by `k` (clamped to `[0, 1]`) — the knob the
    /// corruption-sweep ablation turns.
    pub fn scaled(&self, k: f64) -> Self {
        let c = |p: f64| (p * k).clamp(0.0, 1.0);
        CorruptionModel {
            p_drop_taskid: c(self.p_drop_taskid),
            p_unknown_site: c(self.p_unknown_site),
            p_invalid_site: c(self.p_invalid_site),
            p_size_jitter: c(self.p_size_jitter),
            max_jitter_bytes: self.max_jitter_bytes,
            p_drop_transfer: c(self.p_drop_transfer),
            p_drop_file_record: c(self.p_drop_file_record),
            p_input_bytes_jitter: c(self.p_input_bytes_jitter),
            p_output_bytes_jitter: c(self.p_output_bytes_jitter),
            p_task_size_jitter: c(self.p_task_size_jitter),
            p_task_unknown_site: c(self.p_task_unknown_site),
            p_task_drop_taskid: c(self.p_task_drop_taskid),
            p_clear_attempt: c(self.p_clear_attempt),
        }
    }

    /// Apply the model to `store` in place, deterministically from the
    /// `"metastore/corrupt"` stream of `rngs`.
    pub fn apply(&self, store: &mut MetaStore, rngs: &RngFactory) {
        let mut rng = rngs.stream("metastore/corrupt");

        // Pre-intern garbage names so the borrow of `symbols` is short.
        let garbage: Vec<_> = INVALID_SITE_NAMES
            .iter()
            .map(|s| store.symbols.intern(s))
            .collect();
        let unknown = crate::intern::SymbolTable::UNKNOWN;

        // File-table losses.
        if self.p_drop_file_record > 0.0 {
            let p = self.p_drop_file_record;
            store.files.retain(|_| rng.random::<f64>() >= p);
        }

        // Transfer record losses.
        if self.p_drop_transfer > 0.0 {
            let p = self.p_drop_transfer;
            store.transfers.retain(|_| rng.random::<f64>() >= p);
        }

        // Task-level burst pathologies: a deterministic draw per
        // (seed, jeditaskid), independent of record order.
        for t in &mut store.transfers {
            let Some(tid) = t.jeditaskid else { continue };
            let mut trng = rngs.substream("metastore/corrupt-task", tid);
            // Bursts hit the stage-in pipeline; upload records flow through
            // a cleaner path (the paper matches 95 % of Analysis Uploads).
            let size_burst = trng.random::<f64>() < self.p_task_size_jitter;
            let site_burst = trng.random::<f64>() < self.p_task_unknown_site;
            let taskid_burst = trng.random::<f64>() < self.p_task_drop_taskid;
            if t.is_download && size_burst {
                // Deterministic per-task offset so all records of the task
                // shift consistently (one broken accounting path).
                let off = trng.random_range(1..=65_536i64);
                t.file_size = (t.file_size as i64 + off).max(1) as u64;
            }
            if t.is_download && site_burst {
                t.destination_site = unknown;
            }
            if taskid_burst {
                t.jeditaskid = None;
            }
        }

        // Independent field-level corruption.
        for t in &mut store.transfers {
            self.corrupt_transfer(t, &garbage, unknown, &mut rng);
        }

        // Job byte-total inconsistencies.
        for j in &mut store.jobs {
            if rng.random::<f64>() < self.p_input_bytes_jitter {
                j.ninputfilebytes = perturb(j.ninputfilebytes, &mut rng);
            }
            if rng.random::<f64>() < self.p_output_bytes_jitter {
                j.noutputfilebytes = perturb(j.noutputfilebytes, &mut rng);
            }
        }
    }

    fn corrupt_transfer(
        &self,
        t: &mut TransferRecord,
        garbage: &[crate::intern::Sym],
        unknown: crate::intern::Sym,
        rng: &mut SimRng,
    ) {
        if t.jeditaskid.is_some() && rng.random::<f64>() < self.p_drop_taskid {
            t.jeditaskid = None;
        }
        if rng.random::<f64>() < self.p_unknown_site {
            // Job-driven transfer records lose their *destination* (the
            // Fig 12 shape — the stage-in recorder knows its source SE but
            // not the resolved destination). Background records can lose
            // either endpoint, which populates the unknown *row* of the
            // Fig 3 matrix as well as its column.
            if t.jeditaskid.is_some() || rng.random::<f64>() < 0.5 {
                t.destination_site = unknown;
            } else {
                t.source_site = unknown;
            }
        }
        if rng.random::<f64>() < self.p_invalid_site {
            let g = garbage[rng.random_range(0..garbage.len())];
            if rng.random::<f64>() < 0.5 {
                t.destination_site = g;
            } else {
                t.source_site = g;
            }
        }
        if self.max_jitter_bytes > 0 && rng.random::<f64>() < self.p_size_jitter {
            let jitter = rng.random_range(1..=self.max_jitter_bytes) as i64;
            let sign = if rng.random::<bool>() { 1 } else { -1 };
            t.file_size = (t.file_size as i64 + sign * jitter).max(1) as u64;
        }
        // Guarded draw: at the 0.0 default this consumes nothing, so the
        // stream stays aligned with pre-retry-era runs.
        if self.p_clear_attempt > 0.0 && rng.random::<f64>() < self.p_clear_attempt {
            t.attempt = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::{Sym, SymbolTable};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::SimTime;

    fn store_with_transfers(n: u64) -> MetaStore {
        let mut store = MetaStore::new();
        let site = store.register_site("SITE-A");
        for id in 0..n {
            store.transfers.push(TransferRecord {
                transfer_id: id,
                lfn: Sym(0),
                dataset: Sym(0),
                proddblock: Sym(0),
                scope: Sym(0),
                file_size: 1_000_000_000,
                starttime: SimTime::from_secs(id as i64),
                endtime: SimTime::from_secs(id as i64 + 10),
                source_site: site,
                destination_site: site,
                activity: Activity::AnalysisDownload,
                jeditaskid: Some(1),
                is_download: true,
                is_upload: false,
                attempt: if id % 3 == 0 { 2 } else { 1 },
                succeeded: true,
                gt_pandaid: Some(id),
                gt_source_site: site,
                gt_destination_site: site,
                gt_file_size: 1_000_000_000,
            });
        }
        store
    }

    #[test]
    fn none_model_changes_nothing() {
        let mut store = store_with_transfers(500);
        let before = store.transfers.len();
        CorruptionModel::none().apply(&mut store, &RngFactory::new(1));
        assert_eq!(store.transfers.len(), before);
        assert!(store
            .transfers
            .iter()
            .all(|t| t.jeditaskid.is_some() && t.file_size == 1_000_000_000));
    }

    #[test]
    fn drop_rates_are_roughly_respected() {
        let mut store = store_with_transfers(20_000);
        let model = CorruptionModel {
            p_drop_transfer: 0.25,
            ..CorruptionModel::none()
        };
        model.apply(&mut store, &RngFactory::new(2));
        let kept = store.transfers.len() as f64 / 20_000.0;
        assert!((kept - 0.75).abs() < 0.02, "kept fraction {kept}");
    }

    #[test]
    fn unknown_sites_appear_at_configured_rate() {
        let mut store = store_with_transfers(20_000);
        let model = CorruptionModel {
            p_unknown_site: 0.2,
            ..CorruptionModel::none()
        };
        model.apply(&mut store, &RngFactory::new(3));
        let unknown = store
            .transfers
            .iter()
            .filter(|t| {
                t.source_site == SymbolTable::UNKNOWN || t.destination_site == SymbolTable::UNKNOWN
            })
            .count() as f64
            / 20_000.0;
        assert!((unknown - 0.2).abs() < 0.02, "unknown fraction {unknown}");
    }

    #[test]
    fn ground_truth_survives_corruption() {
        let mut store = store_with_transfers(5_000);
        CorruptionModel {
            p_unknown_site: 1.0,
            p_size_jitter: 1.0,
            max_jitter_bytes: 100,
            ..CorruptionModel::none()
        }
        .apply(&mut store, &RngFactory::new(4));
        for t in &store.transfers {
            assert_eq!(t.gt_file_size, 1_000_000_000);
            assert_ne!(t.gt_destination_site, SymbolTable::UNKNOWN);
            assert!(t.gt_pandaid.is_some());
        }
        // And recorded sizes did move.
        assert!(store
            .transfers
            .iter()
            .any(|t| t.file_size != t.gt_file_size));
    }

    #[test]
    fn size_jitter_is_bounded() {
        let mut store = store_with_transfers(5_000);
        CorruptionModel {
            p_size_jitter: 1.0,
            max_jitter_bytes: 64,
            ..CorruptionModel::none()
        }
        .apply(&mut store, &RngFactory::new(5));
        for t in &store.transfers {
            let err = (t.file_size as i64 - t.gt_file_size as i64).unsigned_abs();
            assert!((1..=64).contains(&err), "jitter {err} out of bounds");
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let run = |seed| {
            let mut store = store_with_transfers(2_000);
            CorruptionModel::default().apply(&mut store, &RngFactory::new(seed));
            store
                .transfers
                .iter()
                .map(|t| (t.transfer_id, t.file_size, t.destination_site))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn clear_attempt_resets_retry_ordinals_only_when_enabled() {
        let mut store = store_with_transfers(3_000);
        CorruptionModel::none().apply(&mut store, &RngFactory::new(7));
        assert!(store.transfers.iter().any(|t| t.attempt > 1));
        CorruptionModel {
            p_clear_attempt: 1.0,
            ..CorruptionModel::none()
        }
        .apply(&mut store, &RngFactory::new(7));
        assert!(store.transfers.iter().all(|t| t.attempt == 1));
    }

    #[test]
    fn scaled_zero_equals_none() {
        let scaled = CorruptionModel::default().scaled(0.0);
        let mut store = store_with_transfers(1_000);
        scaled.apply(&mut store, &RngFactory::new(6));
        assert_eq!(store.transfers.len(), 1_000);
    }

    #[test]
    fn scaled_clamps_probabilities() {
        let s = CorruptionModel::default().scaled(1_000.0);
        assert!(s.p_drop_transfer <= 1.0);
        assert!(s.p_unknown_site <= 1.0);
    }
}
