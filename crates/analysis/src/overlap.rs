//! Transfer-time-in-queue analysis (§5.1).
//!
//! The paper defines a matched job's *file transfer time* as "the
//! cumulative duration during the job's queuing time phase in which at
//! least one associated file was actively transferring", and reports a
//! mean of 8.43 % and a geometric mean of 1.942 % of the queuing time.
//! This module computes that per job from the matched transfer intervals
//! (interval union, so overlapping transfers are not double-counted).

use dmsa_core::matchset::recorded_local;
use dmsa_core::{MatchSet, MatchedJob};
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::{union_len_within, Interval};
use dmsa_simcore::stats;
use serde::{Deserialize, Serialize};

/// Per-job transfer/queue overlap result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobTransferOverlap {
    /// Index into `store.jobs`.
    pub job_idx: u32,
    /// `pandaid` for display.
    pub pandaid: u64,
    /// Queuing duration, seconds.
    pub queue_secs: f64,
    /// Union of matched transfer intervals clipped to the queue, seconds.
    pub transfer_secs: f64,
    /// `transfer_secs / queue_secs` in percent (0 if queue is empty).
    pub percent: f64,
    /// Total bytes of the job's matched transfers.
    pub transferred_bytes: u64,
    /// All matched transfers recorded-local?
    pub all_local: bool,
    /// All matched transfers recorded-remote?
    pub all_remote: bool,
    /// Any matched transfer extends past the job's start (into wall time)?
    pub spans_wall: bool,
    /// Job success flag.
    pub job_succeeded: bool,
    /// Task success flag.
    pub task_succeeded: bool,
}

/// Compute the overlap for one matched job.
pub fn job_overlap(store: &MetaStore, mj: &MatchedJob) -> JobTransferOverlap {
    let job = &store.jobs[mj.job_idx as usize];
    let queue = Interval::new(job.creationtime, job.starttime);
    let queue_secs = queue.len().as_secs_f64();

    let mut intervals = Vec::with_capacity(mj.transfers.len());
    let mut bytes = 0u64;
    let mut all_local = true;
    let mut all_remote = true;
    let mut spans_wall = false;
    for &ti in &mj.transfers {
        let t = &store.transfers[ti as usize];
        intervals.push(Interval::new(t.starttime, t.endtime));
        bytes += t.file_size;
        if recorded_local(store, ti) {
            all_remote = false;
        } else {
            all_local = false;
        }
        if t.endtime > job.starttime && t.starttime < job.endtime {
            spans_wall = true;
        }
    }
    let transfer_secs = union_len_within(&intervals, queue).as_secs_f64();
    let percent = if queue_secs > 0.0 {
        100.0 * transfer_secs / queue_secs
    } else {
        0.0
    };
    JobTransferOverlap {
        job_idx: mj.job_idx,
        pandaid: job.pandaid,
        queue_secs,
        transfer_secs,
        percent,
        transferred_bytes: bytes,
        all_local,
        all_remote,
        spans_wall,
        job_succeeded: job.status == dmsa_panda_sim::JobStatus::Finished,
        task_succeeded: job.task_status == dmsa_panda_sim::TaskStatus::Done,
    }
}

/// Overlaps for every matched job of a set.
pub fn all_overlaps(store: &MetaStore, set: &MatchSet) -> Vec<JobTransferOverlap> {
    set.jobs.iter().map(|mj| job_overlap(store, mj)).collect()
}

/// The §5.1 headline numbers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverlapSummary {
    /// Jobs summarized.
    pub n_jobs: usize,
    /// Arithmetic mean of the per-job transfer-time percentage.
    pub mean_percent: f64,
    /// Geometric mean over jobs with a positive percentage.
    pub geo_mean_percent: f64,
    /// Largest percentage seen.
    pub max_percent: f64,
}

/// Summarize a set of overlaps.
pub fn summarize(overlaps: &[JobTransferOverlap]) -> OverlapSummary {
    let percents: Vec<f64> = overlaps.iter().map(|o| o.percent).collect();
    OverlapSummary {
        n_jobs: overlaps.len(),
        mean_percent: stats::mean(&percents).unwrap_or(0.0),
        geo_mean_percent: stats::geometric_mean(&percents).unwrap_or(0.0),
        max_percent: percents.iter().copied().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_core::MatchedJob;
    use dmsa_metastore::{SymbolTable, TransferRecord};
    use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::SimTime;

    /// One job queued [0, 100)s with transfers at given spans.
    fn fixture(spans: &[(i64, i64)]) -> (MetaStore, MatchedJob) {
        let mut store = MetaStore::new();
        let site = store.register_site("A");
        store.jobs.push(dmsa_metastore::JobRecord {
            pandaid: 1,
            jeditaskid: 2,
            computingsite: site,
            creationtime: SimTime::from_secs(0),
            starttime: SimTime::from_secs(100),
            endtime: SimTime::from_secs(200),
            ninputfilebytes: 0,
            noutputfilebytes: 0,
            io_mode: IoMode::StageIn,
            status: JobStatus::Finished,
            task_status: TaskStatus::Done,
            error_code: None,
            is_user_analysis: true,
        });
        let mut transfers = Vec::new();
        for (i, &(a, b)) in spans.iter().enumerate() {
            store.transfers.push(TransferRecord {
                transfer_id: i as u64,
                lfn: SymbolTable::UNKNOWN,
                dataset: SymbolTable::UNKNOWN,
                proddblock: SymbolTable::UNKNOWN,
                scope: SymbolTable::UNKNOWN,
                file_size: 1_000,
                starttime: SimTime::from_secs(a),
                endtime: SimTime::from_secs(b),
                source_site: site,
                destination_site: site,
                activity: Activity::AnalysisDownload,
                jeditaskid: Some(2),
                is_download: true,
                is_upload: false,
                attempt: 1,
                succeeded: true,
                gt_pandaid: Some(1),
                gt_source_site: site,
                gt_destination_site: site,
                gt_file_size: 1_000,
            });
            transfers.push(i as u32);
        }
        (
            store,
            MatchedJob {
                job_idx: 0,
                transfers,
            },
        )
    }

    #[test]
    fn disjoint_transfers_sum() {
        let (store, mj) = fixture(&[(0, 10), (20, 30)]);
        let o = job_overlap(&store, &mj);
        assert_eq!(o.queue_secs, 100.0);
        assert_eq!(o.transfer_secs, 20.0);
        assert!((o.percent - 20.0).abs() < 1e-9);
        assert!(o.all_local && !o.all_remote);
        assert!(!o.spans_wall);
        assert_eq!(o.transferred_bytes, 2_000);
    }

    #[test]
    fn overlapping_transfers_count_once() {
        let (store, mj) = fixture(&[(0, 50), (25, 75)]);
        let o = job_overlap(&store, &mj);
        assert_eq!(o.transfer_secs, 75.0);
    }

    #[test]
    fn transfer_past_job_start_is_clipped_and_flagged() {
        let (store, mj) = fixture(&[(90, 150)]);
        let o = job_overlap(&store, &mj);
        assert_eq!(o.transfer_secs, 10.0, "only the in-queue part counts");
        assert!(o.spans_wall, "the Fig 11 anomaly flag");
    }

    #[test]
    fn summary_mean_vs_geomean() {
        let (store, mj) = fixture(&[(0, 83)]);
        let o = job_overlap(&store, &mj);
        assert!((o.percent - 83.0).abs() < 1e-9, "the Fig 10 case: 83 %");
        let s = summarize(&[o.clone(), JobTransferOverlap { percent: 1.0, ..o }]);
        assert_eq!(s.n_jobs, 2);
        assert!((s.mean_percent - 42.0).abs() < 1e-9);
        assert!((s.geo_mean_percent - (83.0f64).sqrt()).abs() < 1e-6);
        assert_eq!(s.max_percent, 83.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = summarize(&[]);
        assert_eq!(s.n_jobs, 0);
        assert_eq!(s.mean_percent, 0.0);
    }
}
