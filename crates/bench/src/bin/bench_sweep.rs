//! Emit the tracked sweep-throughput baseline (`BENCH_sweep.json`).
//!
//! ```text
//! cargo run --release -p dmsa-bench --bin bench_sweep -- \
//!     [--scale F] [--seeds 1,7] [--fail-probs 0.05,0.12,0.2] \
//!     [--breakers off,adaptive,adaptive:600] \
//!     [--duration 96h] [--warm-start-at 88h] [--jobs N] [--out FILE|-]
//! ```
//!
//! Runs one ablation grid (default 2 seeds × 3 fault rates × 3 breaker
//! settings = 18 cells on the `8day-faulty` preset — the paper's
//! 111-site topology with the fault model armed) twice: sequentially from
//! cold starts (`--jobs 1`, no warm start), then with the full sweep
//! machinery — worker pool plus shared warm-start prefixes, each cell
//! continuing from a clone of the live prefix state. Cells that share a
//! `(preset, seed)` base pay the `[0, warm-start-at)` prefix once in
//! the warm leg, so the speedup holds even on a single core.
//!
//! The headline legs run metrics-only (`write_cell_exports: false`):
//! per-cell export serialization + file IO is an identical additive
//! term in both legs (the exports are pinned byte-identical by the
//! sweep's tests), so timing it would measure the disk, not the
//! machinery. The same pair of legs is then re-run end-to-end with
//! exports written; both wall clocks land in the report
//! (`speedup` vs `end_to_end.speedup`).
//!
//! The run *fails* if any cell is quarantined in any leg — a tracked
//! baseline must measure a fully healthy fleet.

use dmsa_bench::{json_opt_u64, rss, safe_ratio};
use dmsa_cli::run::parse_sim_duration;
use dmsa_cli::sweep::{parse_breakers, parse_fail_probs, parse_seeds, run_sweep, SweepOpts};
use dmsa_scenario::{PresetAxis, ScenarioConfig, SweepGrid};
use dmsa_simcore::SimDuration;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_sweep [--scale F] [--seeds N,N] [--fail-probs F,F] \
                 [--breakers L,L] [--duration DUR] [--warm-start-at DUR] [--jobs N] \
                 [--out FILE|-]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut scale = 0.01f64;
    let mut seeds = "1,7".to_string();
    let mut fail_probs = "0.05,0.12,0.2".to_string();
    let mut breakers = "off,adaptive,adaptive:600".to_string();
    let mut duration = SimDuration::from_hours(96);
    let mut warm_start_at = SimDuration::from_hours(88);
    let mut jobs = 0usize;
    let mut out = "BENCH_sweep.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--scale" => scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?,
            "--seeds" => seeds = value.clone(),
            "--fail-probs" => fail_probs = value.clone(),
            "--breakers" => breakers = value.clone(),
            "--duration" => duration = parse_sim_duration(value)?,
            "--warm-start-at" => warm_start_at = parse_sim_duration(value)?,
            "--jobs" => jobs = value.parse().map_err(|e| format!("bad --jobs: {e}"))?,
            "--out" => out = value.clone(),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }

    if warm_start_at >= duration {
        return Err(format!(
            "--warm-start-at ({warm_start_at}) must fall inside --duration ({duration})"
        ));
    }
    // The paper-scale topology at a small workload scale: per-event
    // loop work (brokerage + replica scans) is O(sites) and the site
    // count does not shrink with `scale`, so the event loop — the part
    // a warm start skips — dominates each cell.
    let base = ScenarioConfig {
        duration,
        ..ScenarioConfig::paper_8day_faulty(scale)
    };
    let grid = SweepGrid {
        presets: vec![PresetAxis {
            name: "8day-faulty".into(),
            base,
        }],
        seeds: parse_seeds(&seeds)?,
        fail_probs: parse_fail_probs(&fail_probs)?,
        breakers: parse_breakers(&breakers)?,
    };
    let n_cells = grid.n_cells();
    let scratch = std::env::temp_dir().join(format!("dmsa-bench-sweep-{}", std::process::id()));
    let leg = |tag: &str, opts: &SweepOpts| -> Result<f64, String> {
        let outcome = run_sweep(&grid, opts)?;
        if outcome.n_failed() > 0 {
            return Err(format!(
                "{tag} leg quarantined {} cell(s); a tracked baseline needs a healthy fleet",
                outcome.n_failed()
            ));
        }
        eprintln!(
            "  {tag}: {} cells in {:.2} s ({:.2} cells/s)",
            n_cells,
            outcome.wall_s,
            outcome.cells_per_s()
        );
        Ok(outcome.wall_s)
    };
    let cold_opts = |dir: &str, exports: bool| SweepOpts {
        jobs: 1,
        warm_start_at: None,
        out_dir: scratch.join(dir),
        write_cell_exports: exports,
        ..SweepOpts::default()
    };
    let warm_opts = |dir: &str, exports: bool| SweepOpts {
        jobs,
        warm_start_at: Some(warm_start_at),
        out_dir: scratch.join(dir),
        write_cell_exports: exports,
        ..SweepOpts::default()
    };

    eprintln!("sweep grid: {n_cells} cells (8day-faulty preset, scale {scale}), compute-only legs");
    let cold_wall = leg("sequential cold", &cold_opts("cold", false))?;
    let warm_wall = leg("warm + parallel", &warm_opts("warm", false))?;
    eprintln!("end-to-end legs (cell exports written)");
    let e2e_cold_wall = leg("sequential cold", &cold_opts("cold-e2e", true))?;
    let e2e_warm_wall = leg("warm + parallel", &warm_opts("warm-e2e", true))?;
    let _ = std::fs::remove_dir_all(&scratch);

    let speedup = safe_ratio(cold_wall, warm_wall);
    let e2e_speedup = safe_ratio(e2e_cold_wall, e2e_warm_wall);
    eprintln!("  speedup: {speedup:.2}x compute, {e2e_speedup:.2}x end-to-end");
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"grid\": {{\"preset\": \"8day-faulty\", \"scale\": {scale}, \"seeds\": {}, \
         \"fail_probs\": {}, \"breakers\": {}, \"n_cells\": {}}},\n",
        grid.seeds.len(),
        grid.fail_probs.len(),
        grid.breakers.len(),
        n_cells
    ));
    json.push_str(&format!(
        "  \"duration_ms\": {},\n  \"warm_start_at_ms\": {},\n  \"jobs\": {},\n",
        duration.as_millis(),
        warm_start_at.as_millis(),
        jobs
    ));
    json.push_str(&format!(
        "  \"sequential_cold_wall_s\": {cold_wall:.3},\n  \"warm_parallel_wall_s\": {warm_wall:.3},\n"
    ));
    json.push_str(&format!(
        "  \"cold_cells_per_s\": {:.3},\n  \"warm_cells_per_s\": {:.3},\n",
        safe_ratio(n_cells as f64, cold_wall),
        safe_ratio(n_cells as f64, warm_wall)
    ));
    json.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    json.push_str(&format!(
        "  \"end_to_end\": {{\"sequential_cold_wall_s\": {e2e_cold_wall:.3}, \
         \"warm_parallel_wall_s\": {e2e_warm_wall:.3}, \"speedup\": {e2e_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {}\n}}\n",
        json_opt_u64(rss::peak_rss_bytes())
    ));
    if out == "-" {
        println!("{json}");
    } else {
        std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}
