//! End-to-end integration tests: campaign → store → matchers → analyses.

use dmsa::prelude::*;
use dmsa_analysis::activity::ActivityBreakdown;
use dmsa_analysis::matrix::TransferMatrix;
use dmsa_analysis::overlap::{all_overlaps, summarize};
use dmsa_core::matcher::Matcher;

fn campaign() -> Campaign {
    dmsa_scenario::run(&ScenarioConfig::small())
}

#[test]
fn full_pipeline_runs_and_matches() {
    let c = campaign();
    let exact = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Exact);
    let rm1 = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Rm1);
    let rm2 = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Rm2);
    assert!(!exact.jobs.is_empty(), "no exact matches in small campaign");
    assert!(rm1.contains(&exact), "RM1 must subsume Exact");
    assert!(rm2.contains(&rm1), "RM2 must subsume RM1");
    assert!(rm1.n_matched_transfers() >= exact.n_matched_transfers());
    assert!(rm2.n_matched_transfers() >= rm1.n_matched_transfers());
}

#[test]
fn all_three_engines_agree_end_to_end() {
    let c = campaign();
    for method in MatchMethod::ALL {
        let naive = NaiveMatcher.match_jobs(&c.store, c.window, method);
        let indexed = IndexedMatcher.match_jobs(&c.store, c.window, method);
        let parallel = ParallelMatcher.match_jobs(&c.store, c.window, method);
        assert_eq!(naive, indexed, "naive vs indexed under {method:?}");
        assert_eq!(indexed, parallel, "indexed vs parallel under {method:?}");
    }
}

#[test]
fn campaign_and_matching_are_deterministic() {
    let a = campaign();
    let b = campaign();
    let ma = ParallelMatcher.match_jobs(&a.store, a.window, MatchMethod::Rm2);
    let mb = ParallelMatcher.match_jobs(&b.store, b.window, MatchMethod::Rm2);
    assert_eq!(ma, mb);
}

#[test]
fn evaluation_scores_are_well_formed() {
    let c = campaign();
    let mut last_recall = -1.0;
    for method in MatchMethod::ALL {
        let set = IndexedMatcher.match_jobs(&c.store, c.window, method);
        let e = evaluate(&c.store, &set, c.window);
        let p = e.transfer_precision();
        let r = e.transfer_recall();
        assert!((0.0..=1.0).contains(&p), "{method:?} precision {p}");
        assert!((0.0..=1.0).contains(&r), "{method:?} recall {r}");
        assert!(
            r >= last_recall,
            "relaxation must not lose recall: {method:?}"
        );
        last_recall = r;
        // Matching on jeditaskid + file keys is very precise even relaxed.
        assert!(p > 0.9, "{method:?} precision {p} suspiciously low");
    }
}

#[test]
fn production_transfers_never_match_user_jobs() {
    let c = campaign();
    let rm2 = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Rm2);
    let table = ActivityBreakdown::build(&c.store, &rm2);
    for row in &table.rows {
        if row.activity.is_production() {
            assert_eq!(
                row.matched, 0,
                "production activity {:?} matched user jobs",
                row.activity
            );
        }
    }
}

#[test]
fn matrix_and_overlap_analyses_are_consistent() {
    let c = campaign();
    let matrix = TransferMatrix::build(&c.store, c.window);
    let s = matrix.summary();
    assert!(s.total_bytes > 0);
    assert!(s.local_bytes <= s.total_bytes);
    assert!(s.geo_mean_pair_bytes <= s.mean_pair_bytes * matrix.n() as f64 * matrix.n() as f64);

    let exact = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Exact);
    let overlaps = all_overlaps(&c.store, &exact);
    assert_eq!(overlaps.len(), exact.n_matched_jobs());
    for o in &overlaps {
        assert!(o.percent >= 0.0);
        assert!(
            o.transfer_secs <= o.queue_secs + 1e-9,
            "union clipped to queue cannot exceed it"
        );
    }
    // AM–GM holds over the *positive* percents (the geometric mean
    // excludes zeros by the paper's convention, the arithmetic one does
    // not, so the two published summary numbers are not comparable).
    let positives: Vec<f64> = overlaps
        .iter()
        .map(|o| o.percent)
        .filter(|&p| p > 0.0)
        .collect();
    if !positives.is_empty() {
        let am = dmsa_simcore::stats::mean(&positives).unwrap();
        let gm = dmsa_simcore::stats::geometric_mean(&positives).unwrap();
        assert!(am >= gm * 0.999, "AM {am} < GM {gm}");
    }
    let sum = summarize(&overlaps);
    assert!(sum.max_percent <= 100.0 + 1e-9);
}

#[test]
fn window_query_excludes_out_of_window_jobs() {
    let c = campaign();
    for j in c.store.user_jobs_in(c.window) {
        assert!(j.endtime < c.window.end);
        assert!(j.creationtime >= c.window.start);
    }
}

#[test]
fn matched_transfers_satisfy_algorithm1_invariants() {
    let c = campaign();
    let exact = IndexedMatcher.match_jobs(&c.store, c.window, MatchMethod::Exact);
    for mj in &exact.jobs {
        let job = &c.store.jobs[mj.job_idx as usize];
        let mut dl_sum = 0u64;
        let mut ul_sum = 0u64;
        let mut any_dl = false;
        let mut any_ul = false;
        for &ti in &mj.transfers {
            let t = &c.store.transfers[ti as usize];
            // Condition 1: started before job end.
            assert!(t.starttime < job.endtime);
            // Join: same task.
            assert_eq!(t.jeditaskid, Some(job.jeditaskid));
            // Condition 3: direction-aware site equality.
            if t.is_download {
                assert_eq!(t.destination_site, job.computingsite);
                dl_sum += t.file_size;
                any_dl = true;
            } else {
                assert_eq!(t.source_site, job.computingsite);
                ul_sum += t.file_size;
                any_ul = true;
            }
        }
        // Condition 2: byte-exact sums per accepted direction group.
        if any_dl {
            assert_eq!(dl_sum, job.ninputfilebytes);
        }
        if any_ul {
            assert_eq!(ul_sum, job.noutputfilebytes);
        }
    }
}

#[test]
fn windowed_matching_equals_single_pass_on_campaign_data() {
    use dmsa_core::windowed::{max_job_lifetime, max_transfer_lead, WindowedMatcher};
    let c = campaign();
    let overlap = max_job_lifetime(&c.store)
        + max_transfer_lead(&c.store)
        + dmsa_simcore::SimDuration::from_hours(1);
    let m = WindowedMatcher::new(
        IndexedMatcher,
        overlap + dmsa_simcore::SimDuration::from_hours(2),
        overlap,
    );
    for method in MatchMethod::ALL {
        let streamed = m.match_streaming(&c.store, c.window, method);
        let single = IndexedMatcher.match_jobs(&c.store, c.window, method);
        assert_eq!(streamed, single, "windowed divergence under {method:?}");
    }
}
