//! # dmsa-cli
//!
//! Library backing the `dmsa` command-line tool: a serializable campaign
//! export format plus the subcommand implementations, kept in the library
//! so they are unit-testable without process spawning.
//!
//! ```text
//! dmsa simulate --preset 8day --scale 0.02 --seed 42 --out campaign.json
//! dmsa match    --campaign campaign.json --method rm2 --out matches.json
//! dmsa analyze  --campaign campaign.json --matches matches.json --report summary
//! ```

pub mod export;
pub mod run;

pub use export::CampaignExport;
