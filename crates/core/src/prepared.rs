//! The prepared match index: a zero-allocation CSR join structure built
//! once per store and shared across methods and windows.
//!
//! The hash-join engines rebuilt `HashMap<u64, Vec<u32>>` indexes on every
//! `match_jobs` call — three times per [`crate::eval`] comparison run and
//! once per window under [`crate::windowed::WindowedMatcher`]. At the
//! paper's production scale (§5: 966k jobs, 6.8M transfers) the rebuild
//! dominates. [`PreparedStore`] replaces it with flat sorted arrays:
//!
//! * **CSR adjacency** — `pandaid → file rows` and `jeditaskid →
//!   transfers` each stored as a sorted key array plus offset/value arrays;
//!   a lookup is one binary search and yields a contiguous slice, with no
//!   per-entry `Vec` and no hashing of residual keys.
//! * **Packed fingerprints** — every file row and transfer carries a 64-bit
//!   fingerprint of its 5-attribute join key, so candidate generation
//!   compares integers instead of building a `HashSet<FileKey>` per job.
//!   A fingerprint hit is verified against the full key, so collisions
//!   cannot create spurious candidates and exactness is preserved.
//! * **Time-sorted pools** — each task's transfer pool is pre-sorted by
//!   `starttime`, turning Algorithm 1's condition-1 cutoff (`starttime <
//!   job.endtime`) into a `partition_point` range scan. The same trick
//!   serves window pre-selection: user jobs are kept sorted by creation
//!   time, so a window's universe is a range scan, not a full-store filter.
//! * **Thread-local scratch** — [`PreparedStore::match_one`] reuses
//!   per-thread buffers for keys, candidates, and direction groups; the
//!   only steady-state allocation is the matched job's output vector.
//!
//! The structure is immutable after [`PreparedStore::build`] (itself
//! parallelized with rayon), so one instance serves all three methods and
//! every streaming window concurrently. Exactness versus
//! [`crate::matcher::NaiveMatcher`] is pinned by the cross-engine property
//! tests.

use crate::fx;
use crate::matcher::{file_key, finalize_candidates_into, transfer_key, FileKey, Matcher};
use crate::matchset::{MatchSet, MatchedJob};
use crate::method::MatchMethod;
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::SimTime;
use rayon::prelude::*;
use std::cell::RefCell;

/// Fingerprint of a 5-attribute join key, used as a cheap equality
/// prefilter. Pure function of the key: equal keys always produce equal
/// fingerprints, so a fingerprint *mismatch* proves key inequality.
#[inline]
pub fn fingerprint(key: &FileKey) -> u64 {
    let (lfn, dataset, proddblock, scope, size) = *key;
    let mut h = fx::mix(0xA076_1D64_78BD_642F, lfn.0 as u64);
    h = fx::mix(h, dataset.0 as u64);
    h = fx::mix(h, proddblock.0 as u64);
    h = fx::mix(h, scope.0 as u64);
    fx::mix(h, size)
}

/// One CSR side: sorted distinct keys, offsets, and grouped values.
#[derive(Clone, Debug, Default)]
struct Csr {
    keys: Vec<u64>,
    /// `keys.len() + 1` offsets into `values`.
    offsets: Vec<u32>,
    values: Vec<u32>,
}

impl Csr {
    /// Build from `(key, value)` pairs already sorted by key (ties in any
    /// order the caller chose — the within-group order is preserved).
    fn from_sorted_pairs(pairs: &[(u64, u32)]) -> Self {
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut values = Vec::with_capacity(pairs.len());
        for &(key, value) in pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
                offsets.push(values.len() as u32);
            }
            values.push(value);
        }
        offsets.push(values.len() as u32);
        Csr {
            keys,
            offsets,
            values,
        }
    }

    /// The value group for `key` (empty slice if absent).
    #[inline]
    fn get(&self, key: u64) -> &[u32] {
        match self.keys.binary_search(&key) {
            Ok(pos) => &self.values[self.offsets[pos] as usize..self.offsets[pos + 1] as usize],
            Err(_) => &[],
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Reusable per-thread buffers for the hot matching loop.
#[derive(Default)]
struct Scratch {
    /// The job's file keys with their fingerprints.
    keys: Vec<(u64, FileKey)>,
    /// Candidate transfer indices.
    candidates: Vec<u32>,
    /// Direction groups for `finalize_candidates_into`.
    downloads: Vec<u32>,
    uploads: Vec<u32>,
    /// Surviving transfers (cloned into the output on a match).
    out: Vec<u32>,
}

/// Immutable prepared join index over one store. Build once with
/// [`PreparedStore::build`], then share freely — every query method takes
/// `&self` and the scratch space is thread-local.
pub struct PreparedStore<'a> {
    /// The underlying store.
    pub store: &'a MetaStore,
    /// `pandaid → file-table rows` (rows ascending within a group).
    files: Csr,
    /// `jeditaskid → transfers`, each group sorted by `(starttime, idx)`.
    tasks: Csr,
    /// Join-key fingerprint per file-table row.
    file_fp: Vec<u64>,
    /// Join-key fingerprint per transfer.
    transfer_fp: Vec<u64>,
    /// User-analysis job indices sorted by `(creationtime, idx)`.
    jobs_by_creation: Vec<u32>,
    /// `creationtime` of each entry in `jobs_by_creation` (kept separate
    /// so the window scan touches one contiguous array).
    creation_times: Vec<SimTime>,
}

impl<'a> PreparedStore<'a> {
    /// Build the prepared index. The two CSR sides, the fingerprints, and
    /// the job timeline are constructed in parallel.
    pub fn build(store: &'a MetaStore) -> Self {
        let (((files, tasks), (file_fp, transfer_fp)), (jobs_by_creation, creation_times)) =
            rayon::join(
                || {
                    rayon::join(
                        || {
                            rayon::join(
                                || {
                                    let mut pairs: Vec<(u64, u32)> = store
                                        .files
                                        .iter()
                                        .enumerate()
                                        .map(|(i, f)| (f.pandaid, i as u32))
                                        .collect();
                                    pairs.par_sort_unstable();
                                    Csr::from_sorted_pairs(&pairs)
                                },
                                || {
                                    let mut pairs: Vec<(u64, u32)> = store
                                        .transfers
                                        .iter()
                                        .enumerate()
                                        .filter_map(|(i, t)| {
                                            t.jeditaskid.map(|tid| (tid, i as u32))
                                        })
                                        .collect();
                                    // Sort groups internally by start time so
                                    // condition 1 becomes a range scan.
                                    pairs.par_sort_unstable_by_key(|&(tid, ti)| {
                                        (tid, store.transfers[ti as usize].starttime, ti)
                                    });
                                    Csr::from_sorted_pairs(&pairs)
                                },
                            )
                        },
                        || {
                            rayon::join(
                                || {
                                    store
                                        .files
                                        .par_iter()
                                        .map(|f| fingerprint(&file_key(f)))
                                        .collect::<Vec<u64>>()
                                },
                                || {
                                    store
                                        .transfers
                                        .par_iter()
                                        .map(|t| fingerprint(&transfer_key(t)))
                                        .collect::<Vec<u64>>()
                                },
                            )
                        },
                    )
                },
                || {
                    let mut jobs: Vec<u32> = store
                        .jobs
                        .iter()
                        .enumerate()
                        .filter(|(_, j)| j.is_user_analysis)
                        .map(|(i, _)| i as u32)
                        .collect();
                    jobs.par_sort_unstable_by_key(|&i| (store.jobs[i as usize].creationtime, i));
                    let times = jobs
                        .iter()
                        .map(|&i| store.jobs[i as usize].creationtime)
                        .collect();
                    (jobs, times)
                },
            );
        PreparedStore {
            store,
            files,
            tasks,
            file_fp,
            transfer_fp,
            jobs_by_creation,
            creation_times,
        }
    }

    /// File-table rows of `pandaid` (ascending row indices).
    #[inline]
    pub fn file_rows(&self, pandaid: u64) -> &[u32] {
        self.files.get(pandaid)
    }

    /// The transfer pool of `taskid`, sorted by `(starttime, idx)`.
    #[inline]
    pub fn task_pool(&self, taskid: u64) -> &[u32] {
        self.tasks.get(taskid)
    }

    /// Candidate generation into caller-provided buffers (cleared on
    /// entry). `out` receives candidates in the pool's start-time order;
    /// the transfers already pass Algorithm 1's condition-1 time cutoff.
    fn candidates_into(&self, job_idx: u32, keys: &mut Vec<(u64, FileKey)>, out: &mut Vec<u32>) {
        keys.clear();
        out.clear();
        let job = &self.store.jobs[job_idx as usize];
        for &fi in self.file_rows(job.pandaid) {
            let f = &self.store.files[fi as usize];
            if f.jeditaskid == job.jeditaskid {
                keys.push((self.file_fp[fi as usize], file_key(f)));
            }
        }
        if keys.is_empty() {
            return;
        }
        let pool = self.task_pool(job.jeditaskid);
        // Condition-1 prefilter: the pool is start-time sorted, so the
        // transfers that started before the job ended form a prefix.
        let cut =
            pool.partition_point(|&ti| self.store.transfers[ti as usize].starttime < job.endtime);
        for &ti in &pool[..cut] {
            let fp = self.transfer_fp[ti as usize];
            // Fingerprint prefilter, then full-key verification — a
            // colliding fingerprint cannot admit a wrong candidate.
            if keys.iter().any(|&(kfp, key)| {
                kfp == fp && key == transfer_key(&self.store.transfers[ti as usize])
            }) {
                out.push(ti);
            }
        }
    }

    /// Candidate transfers for one job: joined on `jeditaskid` and the
    /// 5-attribute file key, prefiltered by condition 1 (start before job
    /// end). Ascending order.
    pub fn candidates(&self, job_idx: u32) -> Vec<u32> {
        let mut keys = Vec::new();
        let mut out = Vec::new();
        self.candidates_into(job_idx, &mut keys, &mut out);
        out.sort_unstable();
        out
    }

    /// Match one job under `method`. Allocation-free except for the
    /// returned transfer list.
    pub fn match_one(&self, job_idx: u32, method: MatchMethod) -> Option<MatchedJob> {
        SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            self.candidates_into(job_idx, &mut s.keys, &mut s.candidates);
            if s.candidates.is_empty() {
                return None;
            }
            finalize_candidates_into(
                &self.store.jobs[job_idx as usize],
                &s.candidates,
                self.store,
                method,
                &mut s.downloads,
                &mut s.uploads,
                &mut s.out,
            );
            (!s.out.is_empty()).then(|| MatchedJob {
                job_idx,
                transfers: s.out.clone(),
            })
        })
    }

    /// The job universe of `window` as a range scan over the creation-time
    /// ordered user jobs. Result is ascending by job index — identical to
    /// [`crate::matcher::job_universe`].
    pub fn window_universe(&self, window: Interval) -> Vec<u32> {
        let lo = self.creation_times.partition_point(|&t| t < window.start);
        let mut out: Vec<u32> = self.jobs_by_creation[lo..]
            .iter()
            .copied()
            .filter(|&i| self.store.jobs[i as usize].endtime < window.end)
            .collect();
        out.sort_unstable();
        out
    }

    /// Match every user job of `window` sequentially.
    pub fn match_window(&self, window: Interval, method: MatchMethod) -> MatchSet {
        let jobs = self
            .window_universe(window)
            .into_iter()
            .filter_map(|j| self.match_one(j, method))
            .collect();
        MatchSet { method, jobs }
    }

    /// Match every user job of `window` in parallel (order-preserving, so
    /// the result equals [`PreparedStore::match_window`]).
    pub fn par_match_window(&self, window: Interval, method: MatchMethod) -> MatchSet {
        let universe = self.window_universe(window);
        let jobs = universe
            .par_iter()
            .filter_map(|&j| self.match_one(j, method))
            .collect();
        MatchSet { method, jobs }
    }
}

/// The prepared-index engine. `match_jobs` builds the index per call (like
/// the other engines); [`Matcher::match_many`] builds it **once** for all
/// windows, which is what the streaming matcher exploits. Callers that
/// also want to share across *methods* hold a [`PreparedStore`] directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct PreparedMatcher;

impl Matcher for PreparedMatcher {
    fn match_jobs(&self, store: &MetaStore, window: Interval, method: MatchMethod) -> MatchSet {
        PreparedStore::build(store).par_match_window(window, method)
    }

    fn match_many(
        &self,
        store: &MetaStore,
        windows: &[Interval],
        method: MatchMethod,
    ) -> Vec<MatchSet> {
        let prepared = PreparedStore::build(store);
        windows
            .iter()
            .map(|&w| prepared.par_match_window(w, method))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::{job_universe, NaiveMatcher};

    fn mixed_store() -> (dmsa_metastore::MetaStore, Interval) {
        let mut b = StoreBuilder::new();
        let a = b.site("SITE-A");
        let c = b.site("SITE-C");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        b.job_with_file(1, 10, a, 1_000, 0, 100, 200);
        b.download(1, 10, a, a, 1_000, 10, 50);
        b.job_with_file(2, 20, a, 2_000, 0, 150, 300);
        b.download(2, 20, a, a, 2_000, 20, 80);
        b.store.jobs[1].ninputfilebytes = 9_999;
        b.job_with_file(3, 30, c, 3_000, 0, 200, 400);
        b.download(3, 30, c, unknown, 3_000, 30, 90);
        b.job_with_file(4, 40, a, 4_000, 0, 250, 500);
        b.download(4, 40, a, a, 4_000, 600, 700);
        let w = b.window();
        (b.store, w)
    }

    #[test]
    fn prepared_agrees_with_naive_on_all_methods() {
        let (store, w) = mixed_store();
        for m in MatchMethod::ALL {
            let naive = NaiveMatcher.match_jobs(&store, w, m);
            let prepared = PreparedMatcher.match_jobs(&store, w, m);
            assert_eq!(naive, prepared, "divergence under {m:?}");
        }
    }

    #[test]
    fn one_build_serves_all_methods() {
        let (store, w) = mixed_store();
        let prepared = PreparedStore::build(&store);
        assert_eq!(
            prepared
                .match_window(w, MatchMethod::Exact)
                .n_matched_jobs(),
            1
        );
        assert_eq!(
            prepared.match_window(w, MatchMethod::Rm1).n_matched_jobs(),
            2
        );
        assert_eq!(
            prepared.match_window(w, MatchMethod::Rm2).n_matched_jobs(),
            3
        );
    }

    #[test]
    fn sequential_and_parallel_windows_agree() {
        let (store, w) = mixed_store();
        let prepared = PreparedStore::build(&store);
        for m in MatchMethod::ALL {
            assert_eq!(prepared.match_window(w, m), prepared.par_match_window(w, m));
        }
    }

    #[test]
    fn window_universe_matches_reference_filter() {
        let (store, _) = mixed_store();
        let prepared = PreparedStore::build(&store);
        use dmsa_simcore::SimTime;
        for (a, b) in [(0i64, 1_000_000i64), (0, 250), (150, 600), (999, 1_000)] {
            let w = Interval::new(SimTime::from_secs(a), SimTime::from_secs(b));
            assert_eq!(
                prepared.window_universe(w),
                job_universe(&store, w),
                "universe divergence for window [{a}, {b})"
            );
        }
    }

    #[test]
    fn time_prefilter_drops_late_transfers_from_candidates() {
        let (store, _) = mixed_store();
        let prepared = PreparedStore::build(&store);
        // Job 3's only transfer starts (600 s) after the job ends (500 s):
        // the start-time range scan excludes it at candidate generation.
        assert!(prepared.candidates(3).is_empty());
        // Job 0's candidates all carry its task id.
        for ti in prepared.candidates(0) {
            assert_eq!(store.transfers[ti as usize].jeditaskid, Some(10));
        }
    }

    #[test]
    fn fingerprint_is_a_pure_key_function() {
        let (store, _) = mixed_store();
        for f in &store.files {
            assert_eq!(fingerprint(&file_key(f)), fingerprint(&file_key(f)));
        }
        // Fingerprints of the matching file/transfer pairs agree.
        let prepared = PreparedStore::build(&store);
        for ti in prepared.candidates(0) {
            let t = &store.transfers[ti as usize];
            assert_eq!(
                fingerprint(&transfer_key(t)),
                prepared.transfer_fp[ti as usize]
            );
        }
    }

    #[test]
    fn task_pools_are_start_time_sorted() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        // Insert transfers out of time order.
        b.download(1, 10, site, site, 1_000, 90, 95);
        b.download(1, 10, site, site, 1_000, 10, 50);
        b.download(1, 10, site, site, 1_000, 40, 60);
        let prepared = PreparedStore::build(&b.store);
        let pool = prepared.task_pool(10);
        assert_eq!(pool.len(), 3);
        for w in pool.windows(2) {
            assert!(
                b.store.transfers[w[0] as usize].starttime
                    <= b.store.transfers[w[1] as usize].starttime
            );
        }
    }

    #[test]
    fn match_many_builds_once_and_agrees_with_per_window_calls() {
        let (store, w) = mixed_store();
        use dmsa_simcore::SimTime;
        let half = Interval::new(SimTime::from_secs(0), SimTime::from_secs(350));
        let windows = [w, half];
        let many = PreparedMatcher.match_many(&store, &windows, MatchMethod::Rm2);
        assert_eq!(many.len(), 2);
        for (set, &window) in many.iter().zip(&windows) {
            assert_eq!(
                *set,
                NaiveMatcher.match_jobs(&store, window, MatchMethod::Rm2)
            );
        }
    }

    #[test]
    fn empty_store_is_fine() {
        let store = dmsa_metastore::MetaStore::new();
        let prepared = PreparedStore::build(&store);
        use dmsa_simcore::SimTime;
        let w = Interval::new(SimTime::EPOCH, SimTime::from_days(1));
        assert!(prepared.match_window(w, MatchMethod::Rm2).jobs.is_empty());
        assert!(prepared.window_universe(w).is_empty());
        assert!(prepared.file_rows(1).is_empty());
        assert!(prepared.task_pool(1).is_empty());
    }
}
