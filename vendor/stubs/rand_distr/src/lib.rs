//! Offline stub for `rand_distr` 0.6: only the distributions the dmsa
//! workspace samples (LogNormal, Pareto), implemented for real so
//! statistical tests remain meaningful.

use rand::RngCore;
use std::fmt;

/// Sampling trait (subset).
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Construction error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard normal via Box-Muller (one value per draw; two uniforms).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = 1.0 - uniform01(rng); // (0, 1]
    let u2 = uniform01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal: exp(mu + sigma·Z). Generic marker matches the real crate's
/// `LogNormal<F: Float>`; only `f64` is implemented offline.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal<F> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto: scale / U^(1/shape). Generic marker as in the real crate.
#[derive(Clone, Copy, Debug)]
pub struct Pareto<F> {
    scale: F,
    inv_shape: F,
}

impl Pareto<f64> {
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale > 0.0 && shape > 0.0 && scale.is_finite() && shape.is_finite() {
            Ok(Pareto {
                scale,
                inv_shape: 1.0 / shape,
            })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Pareto<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - uniform01(rng); // (0, 1]
        self.scale * u.powf(-self.inv_shape)
    }
}
