//! Emit the tracked simulation-throughput baseline (`BENCH_sim.json`).
//!
//! ```text
//! cargo run --release -p dmsa-bench --bin bench_sim -- \
//!     [--scale-8day F] [--scale-92day F] [--seed N] [--no-heap] [--out FILE|-]
//! ```
//!
//! Runs the paper's 8-day and 92-day campaigns at fixed scales on the
//! calendar event queue and records wall time, delivered-event throughput
//! (events/s), store population, and peak RSS. Unless `--no-heap` is
//! given, each preset is re-run on the reference `BinaryHeap` queue; the
//! report then carries the speedup, and the run *fails* if the two
//! backends export different stores (determinism is part of the
//! contract, not a best-effort property).

use dmsa_bench::{rss, sim_report};
use dmsa_scenario::ScenarioConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_sim [--scale-8day F] [--scale-92day F] [--seed N] \
                 [--no-heap] [--out FILE|-]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut scale_8day = 0.2f64;
    let mut scale_92day = 0.05f64;
    let mut seed = 42u64;
    let mut compare_heap = true;
    let mut out = "BENCH_sim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-heap" => {
                compare_heap = false;
                i += 1;
            }
            flag @ ("--scale-8day" | "--scale-92day" | "--seed" | "--out") => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--scale-8day" => {
                        scale_8day = value
                            .parse()
                            .map_err(|e| format!("bad --scale-8day: {e}"))?
                    }
                    "--scale-92day" => {
                        scale_92day = value
                            .parse()
                            .map_err(|e| format!("bad --scale-92day: {e}"))?
                    }
                    "--seed" => seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
                    _ => out = value.clone(),
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let presets: [(&'static str, f64, ScenarioConfig); 2] = [
        (
            "paper_8day",
            scale_8day,
            ScenarioConfig {
                seed,
                ..ScenarioConfig::paper_8day(scale_8day)
            },
        ),
        (
            "paper_92day",
            scale_92day,
            ScenarioConfig {
                seed,
                ..ScenarioConfig::paper_92day(scale_92day)
            },
        ),
    ];

    let mut results = Vec::new();
    for (name, scale, config) in &presets {
        eprintln!("running {name} at scale {scale} (seed {seed})...");
        let r = sim_report::measure_preset(name, config, *scale, compare_heap);
        eprintln!(
            "  {} events in {:.2} s  ->  {:.0} events/s  ({} jobs, {} transfers)",
            r.events, r.wall_s, r.events_per_s, r.jobs, r.transfers
        );
        if let Some(h) = &r.heap {
            eprintln!(
                "  heap queue: {:.0} events/s  ->  speedup {:.2}x, exports identical: {}",
                h.events_per_s, h.speedup, h.exports_identical
            );
            if !h.exports_identical {
                return Err(format!(
                    "{name}: calendar and binary-heap queues exported different stores"
                ));
            }
        }
        results.push(r);
    }

    let report = sim_report::SimReport {
        presets: results,
        peak_rss_bytes: rss::peak_rss_bytes(),
    };
    let json = report.to_json();
    if out == "-" {
        println!("{json}");
    } else {
        std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}
