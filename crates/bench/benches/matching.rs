//! Matcher-engine benchmarks: the §5.5 scalability story.
//!
//! Measures the three interchangeable engines (naive reference, hash-join,
//! rayon-parallel) on identical stores, plus the hash-join engine across
//! store sizes to show near-linear scaling. Run with
//! `cargo bench -p dmsa-bench --bench matching`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsa_core::matcher::Matcher;
use dmsa_core::{IndexedMatcher, MatchMethod, NaiveMatcher, ParallelMatcher};
use dmsa_scenario::{Campaign, ScenarioConfig};
use std::hint::black_box;

fn campaign(scale: f64) -> Campaign {
    dmsa_scenario::run(&ScenarioConfig::paper_8day(scale))
}

/// Naive vs indexed vs parallel at a size the naive engine can still
/// handle.
fn engines(c: &mut Criterion) {
    let small = campaign(0.004);
    let mut g = c.benchmark_group("engines");
    g.sample_size(10);
    g.bench_function("naive/exact", |b| {
        b.iter(|| {
            black_box(NaiveMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.bench_function("indexed/exact", |b| {
        b.iter(|| {
            black_box(IndexedMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.bench_function("parallel/exact", |b| {
        b.iter(|| {
            black_box(ParallelMatcher.match_jobs(&small.store, small.window, MatchMethod::Exact))
        })
    });
    g.finish();
}

/// Indexed-engine cost per method (RM2 relaxations widen candidate sets).
fn methods(c: &mut Criterion) {
    let camp = campaign(0.02);
    let mut g = c.benchmark_group("methods");
    g.sample_size(10);
    for method in MatchMethod::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &m| b.iter(|| black_box(IndexedMatcher.match_jobs(&camp.store, camp.window, m))),
        );
    }
    g.finish();
}

/// Parallel-engine scaling over store size.
fn scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for scale in [0.005, 0.01, 0.02, 0.04] {
        let camp = campaign(scale);
        let transfers = camp.store.transfers.len();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{transfers}tx")),
            &camp,
            |b, camp| {
                b.iter(|| {
                    black_box(ParallelMatcher.match_jobs(
                        &camp.store,
                        camp.window,
                        MatchMethod::Rm2,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, engines, methods, scaling);
criterion_main!(benches);
