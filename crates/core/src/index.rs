//! Sequential indexed matching.
//!
//! Historically this module built per-call `HashMap<u64, Vec<u32>>` join
//! indexes; those are superseded by the CSR-based
//! [`crate::prepared::PreparedStore`], which this engine now runs
//! single-threaded. Building the index turns the naive O(|J|·|T|) scan
//! into O(|J| + |F| + |T| log |T| + Σ_j |pool_j|), which is what makes
//! matching millions of transfers tractable (§5.5's scalability concern).
//! Use [`crate::prepared::PreparedMatcher`] (or a [`PreparedStore`]
//! directly) when the same store is matched more than once.

use crate::matcher::Matcher;
use crate::matchset::MatchSet;
use crate::method::MatchMethod;
use crate::prepared::PreparedStore;
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::Interval;

/// Sequential prepared-index matcher (builds the index per call).
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexedMatcher;

impl Matcher for IndexedMatcher {
    fn match_jobs(&self, store: &MetaStore, window: Interval, method: MatchMethod) -> MatchSet {
        PreparedStore::build(store).match_window(window, method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::NaiveMatcher;

    /// Build a store exercising all rejection paths at once.
    fn mixed_store() -> (dmsa_metastore::MetaStore, Interval) {
        let mut b = StoreBuilder::new();
        let a = b.site("SITE-A");
        let c = b.site("SITE-C");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        // Job 1: clean exact match, local.
        b.job_with_file(1, 10, a, 1_000, 0, 100, 200);
        b.download(1, 10, a, a, 1_000, 10, 50);
        // Job 2: byte total inconsistent → RM1 only.
        b.job_with_file(2, 20, a, 2_000, 0, 150, 300);
        b.download(2, 20, a, a, 2_000, 20, 80);
        let j2 = 1usize;
        b.store.jobs[j2].ninputfilebytes = 9_999;
        // Job 3: unknown destination → RM2 only.
        b.job_with_file(3, 30, c, 3_000, 0, 200, 400);
        b.download(3, 30, c, unknown, 3_000, 30, 90);
        // Job 4: transfer too late → never.
        b.job_with_file(4, 40, a, 4_000, 0, 250, 500);
        b.download(4, 40, a, a, 4_000, 600, 700);
        let w = b.window();
        (b.store, w)
    }

    #[test]
    fn indexed_agrees_with_naive_on_all_methods() {
        let (store, w) = mixed_store();
        for m in MatchMethod::ALL {
            let naive = NaiveMatcher.match_jobs(&store, w, m);
            let indexed = IndexedMatcher.match_jobs(&store, w, m);
            assert_eq!(naive, indexed, "divergence under {m:?}");
        }
    }

    #[test]
    fn method_counts_are_monotone() {
        let (store, w) = mixed_store();
        let e = IndexedMatcher.match_jobs(&store, w, MatchMethod::Exact);
        let r1 = IndexedMatcher.match_jobs(&store, w, MatchMethod::Rm1);
        let r2 = IndexedMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        assert_eq!(e.n_matched_jobs(), 1);
        assert_eq!(r1.n_matched_jobs(), 2);
        assert_eq!(r2.n_matched_jobs(), 3);
        assert!(r1.contains(&e));
        assert!(r2.contains(&r1));
    }

    #[test]
    fn candidates_respect_taskid_partition() {
        let (store, _) = mixed_store();
        let idx = PreparedStore::build(&store);
        // Job 0's candidates must all carry its task id.
        for ti in idx.candidates(0) {
            assert_eq!(store.transfers[ti as usize].jeditaskid, Some(10));
        }
        // Job 3's lone transfer starts after the job ends, so the
        // time-prefiltered candidate set is empty.
        assert!(idx.candidates(3).len() <= 1);
    }

    #[test]
    fn empty_store_yields_empty_set() {
        let store = dmsa_metastore::MetaStore::new();
        let w = Interval::new(
            dmsa_simcore::SimTime::EPOCH,
            dmsa_simcore::SimTime::from_days(10),
        );
        let m = IndexedMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        assert!(m.jobs.is_empty());
    }
}
