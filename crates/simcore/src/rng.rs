//! Deterministic, named RNG streams.
//!
//! Every stochastic component of the simulator (site capacities, file sizes,
//! arrival processes, failure draws, metadata corruption, …) draws from its
//! own named stream derived from a single master seed. Adding a new
//! component therefore never perturbs the draws of existing ones — the
//! classic "common random numbers" discipline for simulation experiments.
//!
//! Streams are [`SimRng`] instances: an in-tree xoshiro256++ generator that
//! is draw-for-draw identical to `rand::rngs::SmallRng` (locked by test)
//! but whose 256-bit state can be captured and restored. That capture is
//! what lets a checkpoint resume a campaign mid-stream and still replay the
//! exact draw sequence of an uninterrupted run.

use rand::RngCore;

/// In-tree xoshiro256++ generator with checkpointable state.
///
/// Seeding expands the `u64` seed through SplitMix64 (the reference
/// xoshiro initialization), so `SimRng::seed_from_u64(s)` produces the
/// same stream as `rand::rngs::SmallRng::seed_from_u64(s)`. Implements
/// [`rand::RngCore`], so all of `rand`'s sampling extensions and
/// `rand_distr`'s distributions work on it unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed via SplitMix64 expansion (the reference xoshiro seeding).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        SimRng { s }
    }

    /// The full 256-bit generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact stream position captured by
    /// [`Self::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }
}

impl RngCore for SimRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derives independently seeded [`SimRng`] streams from a master seed.
///
/// ```
/// use dmsa_simcore::RngFactory;
/// use rand::RngExt;
///
/// let f = RngFactory::new(42);
/// let mut a1 = f.stream("arrivals");
/// let mut a2 = f.stream("arrivals");
/// let mut b = f.stream("failures");
/// let x1: f64 = a1.random();
/// // Same name => same stream.
/// assert_eq!(x1, a2.random::<f64>());
/// // Different name => (almost surely) different stream.
/// assert_ne!(x1, b.random::<f64>());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives streams from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// A deterministic RNG for the stream named `name`.
    pub fn stream(&self, name: &str) -> SimRng {
        SimRng::seed_from_u64(self.master_seed ^ fnv1a(name.as_bytes()))
    }

    /// A deterministic RNG for a numbered sub-stream, e.g. one per site or
    /// per link, so that per-entity processes are independent of entity
    /// iteration order.
    pub fn substream(&self, name: &str, index: u64) -> SimRng {
        let mut h = fnv1a(name.as_bytes());
        h = h
            .wrapping_mul(0x100000001b3)
            .wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
        SimRng::seed_from_u64(self.master_seed ^ h)
    }
}

/// FNV-1a, 64-bit. Stable across platforms and Rust versions (unlike
/// `DefaultHasher`), which is what makes scenarios reproducible.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Samples inter-arrival gaps of a homogeneous Poisson process.
///
/// Used for job submissions and background (non-job) transfer activity.
pub struct PoissonArrivals {
    rng: SimRng,
    /// Mean events per second.
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// `rate_per_sec` must be finite and strictly positive.
    pub fn new(rng: SimRng, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        PoissonArrivals { rng, rate_per_sec }
    }

    /// Next exponential inter-arrival gap, in seconds.
    pub fn next_gap_secs(&mut self) -> f64 {
        // Inverse CDF; `random` returns [0, 1), so `1 - u` is in (0, 1].
        let u: f64 = rand::RngExt::random(&mut self.rng);
        -(1.0 - u).ln() / self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn sim_rng_is_bit_identical_to_small_rng() {
        // SimRng exists so checkpoints can capture stream positions, but
        // it must not change a single draw of any calibrated campaign:
        // pin it against rand's SmallRng across seeds and long runs.
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let mut ours = SimRng::seed_from_u64(seed);
            let mut theirs = rand::rngs::SmallRng::seed_from_u64(seed);
            for _ in 0..256 {
                assert_eq!(ours.next_u64(), theirs.next_u64(), "seed {seed}");
            }
        }
    }

    #[test]
    fn sim_rng_state_round_trips_mid_stream() {
        let mut a = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        let rest_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let rest_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(rest_a, rest_b);
    }

    #[test]
    fn streams_are_reproducible() {
        let f1 = RngFactory::new(7);
        let f2 = RngFactory::new(7);
        let xs1: Vec<u64> = (0..16).map(|_| f1.stream("x").random()).collect();
        let xs2: Vec<u64> = (0..16).map(|_| f2.stream("x").random()).collect();
        // Each call to stream() restarts the stream, so all values equal the first.
        assert_eq!(xs1, xs2);
        let mut s = f1.stream("x");
        let seq: Vec<u64> = (0..4).map(|_| s.random()).collect();
        assert_eq!(seq[0], xs1[0]);
        assert!(seq.windows(2).any(|w| w[0] != w[1]), "stream must advance");
    }

    #[test]
    fn different_names_give_different_streams() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("alpha").random();
        let b: u64 = f.stream("beta").random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: u64 = RngFactory::new(1).stream("x").random();
        let b: u64 = RngFactory::new(2).stream("x").random();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_differ_by_index() {
        let f = RngFactory::new(7);
        let a: u64 = f.substream("site", 0).random();
        let b: u64 = f.substream("site", 1).random();
        assert_ne!(a, b);
        // And are reproducible.
        let a2: u64 = f.substream("site", 0).random();
        assert_eq!(a, a2);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let f = RngFactory::new(99);
        let mut p = PoissonArrivals::new(f.stream("poisson"), 2.0);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| p.next_gap_secs()).sum();
        let mean = total / n as f64;
        // Mean gap should be 1/rate = 0.5 within a few percent.
        assert!((mean - 0.5).abs() < 0.02, "mean gap {mean}");
    }

    #[test]
    fn poisson_gaps_are_positive_and_finite() {
        let f = RngFactory::new(3);
        let mut p = PoissonArrivals::new(f.stream("poisson"), 0.001);
        for _ in 0..1000 {
            let g = p.next_gap_secs();
            assert!(g.is_finite() && g >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn poisson_rejects_zero_rate() {
        let f = RngFactory::new(3);
        let _ = PoissonArrivals::new(f.stream("poisson"), 0.0);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values guard against accidental algorithm changes, which
        // would silently re-randomize every calibrated scenario.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
