//! Windowed (streaming) matching.
//!
//! §4.2: "since all metadata are time-series data continuously generated
//! by the real systems, we pre-selected the job set, file set, and
//! transfer set within a common time window … The selected period should
//! be no shorter than the end-to-end lifetime of the jobs of interest."
//!
//! A production deployment cannot hold months of metadata in one matching
//! pass. [`WindowedMatcher`] processes a long observation period as a
//! sequence of overlapping windows: each window is matched independently
//! (with any inner engine), and per-job results are merged. The overlap
//! must be at least the longest job lifetime of interest, exactly as the
//! paper prescribes — jobs completing in the overlap are seen by two
//! windows, and the merge deduplicates them.
//!
//! The invariant (tested): with `overlap ≥ max job lifetime + max transfer
//! lead`, the windowed result equals the single-pass result.

use crate::fx::FxHashMap;
use crate::matcher::Matcher;
use crate::matchset::{MatchSet, MatchedJob};
use crate::method::MatchMethod;
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Streaming wrapper around any inner matching engine.
pub struct WindowedMatcher<M> {
    inner: M,
    /// Width of each processing window.
    pub window_width: SimDuration,
    /// Overlap between consecutive windows; must cover the longest job
    /// lifetime of interest plus the longest transfer lead time.
    pub overlap: SimDuration,
}

impl<M: Matcher> WindowedMatcher<M> {
    /// Wrap `inner` with the given window geometry.
    pub fn new(inner: M, window_width: SimDuration, overlap: SimDuration) -> Self {
        assert!(
            window_width.as_millis() > overlap.as_millis(),
            "window width must exceed the overlap"
        );
        WindowedMatcher {
            inner,
            window_width,
            overlap,
        }
    }

    /// The processing windows covering `period`.
    pub fn windows(&self, period: Interval) -> Vec<Interval> {
        let stride = self.window_width - self.overlap;
        let mut out = Vec::new();
        let mut start = period.start;
        loop {
            let end = (start + self.window_width).min(period.end);
            out.push(Interval::new(period.start.max(start), end));
            if end >= period.end {
                break;
            }
            start += stride;
        }
        out
    }

    /// Match `period` window-by-window and merge per-job results.
    ///
    /// A job completing in an overlap region is matched by both windows;
    /// the merge keeps the union of its matched transfers (they are equal
    /// when the overlap covers the job's lifetime, which is the caller's
    /// contract).
    ///
    /// All windows are dispatched through [`Matcher::match_many`], so an
    /// inner engine with a shared prepared index (e.g.
    /// [`crate::prepared::PreparedMatcher`]) builds it once for the whole
    /// stream instead of once per window.
    pub fn match_streaming(
        &self,
        store: &MetaStore,
        period: Interval,
        method: MatchMethod,
    ) -> MatchSet {
        let mut by_job: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for set in self.inner.match_many(store, &self.windows(period), method) {
            for mj in set.jobs {
                let entry = by_job.entry(mj.job_idx).or_default();
                entry.extend(mj.transfers);
            }
        }
        let mut jobs: Vec<MatchedJob> = by_job
            .into_iter()
            .map(|(job_idx, mut transfers)| {
                transfers.sort_unstable();
                transfers.dedup();
                MatchedJob { job_idx, transfers }
            })
            .collect();
        jobs.sort_by_key(|j| j.job_idx);
        MatchSet { method, jobs }
    }
}

/// The longest job lifetime in `store` (the §4.2 lower bound on usable
/// window overlap), as a duration from creation to completion.
pub fn max_job_lifetime(store: &MetaStore) -> SimDuration {
    store
        .jobs
        .iter()
        .map(|j| (j.endtime - j.creationtime).clamp_non_negative())
        .max()
        .unwrap_or(SimDuration::ZERO)
}

/// The longest lead between a transfer's start and its causing job's end
/// (ground-truth diagnostic; used to size overlaps in tests).
pub fn max_transfer_lead(store: &MetaStore) -> SimDuration {
    let end_of: HashMap<u64, SimTime> = store.jobs.iter().map(|j| (j.pandaid, j.endtime)).collect();
    store
        .transfers
        .iter()
        .filter_map(|t| {
            let p = t.gt_pandaid?;
            let job_end = end_of.get(&p)?;
            Some((*job_end - t.starttime).clamp_non_negative())
        })
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::NaiveMatcher;
    use crate::IndexedMatcher;

    /// Jobs spread over ten days, lifetimes under 2 h.
    fn long_store() -> (dmsa_metastore::MetaStore, Interval) {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        for i in 0..200u64 {
            let created = (i as i64) * 4_000; // spread over ~9 days
            b.job_with_file(
                i,
                500 + i,
                site,
                1_000 + i,
                created,
                created + 600,
                created + 5_000,
            );
            b.download(
                i,
                500 + i,
                site,
                site,
                1_000 + i,
                created + 30,
                created + 90,
            );
        }
        let period = Interval::new(SimTime::EPOCH, SimTime::from_days(10));
        (b.store, period)
    }

    #[test]
    fn windows_tile_the_period_with_overlap() {
        let m = WindowedMatcher::new(
            IndexedMatcher,
            SimDuration::from_days(1),
            SimDuration::from_hours(6),
        );
        let period = Interval::new(SimTime::EPOCH, SimTime::from_days(10));
        let windows = m.windows(period);
        assert!(windows.len() >= 10);
        assert_eq!(windows[0].start, period.start);
        assert_eq!(windows.last().unwrap().end, period.end);
        for w in windows.windows(2) {
            // Consecutive windows overlap by exactly the configured amount
            // (except possibly the clamped last one).
            assert!(w[1].start < w[0].end, "windows must overlap");
        }
    }

    #[test]
    fn streaming_equals_single_pass_with_sufficient_overlap() {
        let (store, period) = long_store();
        let overlap_needed = max_job_lifetime(&store) + max_transfer_lead(&store);
        let m = WindowedMatcher::new(
            IndexedMatcher,
            SimDuration::from_days(1),
            overlap_needed + SimDuration::from_hours(1),
        );
        for method in MatchMethod::ALL {
            let streamed = m.match_streaming(&store, period, method);
            let single = IndexedMatcher.match_jobs(&store, period, method);
            assert_eq!(streamed, single, "divergence under {method:?}");
        }
    }

    #[test]
    fn streaming_over_prepared_inner_matches_single_pass() {
        let (store, period) = long_store();
        let overlap_needed = max_job_lifetime(&store) + max_transfer_lead(&store);
        let m = WindowedMatcher::new(
            crate::prepared::PreparedMatcher,
            SimDuration::from_days(1),
            overlap_needed + SimDuration::from_hours(1),
        );
        for method in MatchMethod::ALL {
            let streamed = m.match_streaming(&store, period, method);
            let single = NaiveMatcher.match_jobs(&store, period, method);
            assert_eq!(streamed, single, "divergence under {method:?}");
        }
    }

    #[test]
    fn streaming_agrees_with_naive_inner_engine() {
        let (store, period) = long_store();
        let m = WindowedMatcher::new(
            NaiveMatcher,
            SimDuration::from_days(2),
            SimDuration::from_hours(12),
        );
        let streamed = m.match_streaming(&store, period, MatchMethod::Exact);
        let single = NaiveMatcher.match_jobs(&store, period, MatchMethod::Exact);
        assert_eq!(streamed, single);
    }

    #[test]
    fn insufficient_overlap_loses_boundary_jobs() {
        // The §4.2 warning made concrete: a window shorter than job
        // lifetimes drops jobs spanning the boundary.
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        // One job whose lifetime (2 days) exceeds the overlap below.
        b.job_with_file(1, 10, site, 1_000, 40_000, 100_000, 190_000);
        b.download(1, 10, site, site, 1_000, 41_000, 42_000);
        let period = Interval::new(SimTime::EPOCH, SimTime::from_days(4));
        let m = WindowedMatcher::new(
            IndexedMatcher,
            SimDuration::from_days(1),
            SimDuration::from_secs(10), // far below the job lifetime
        );
        let streamed = m.match_streaming(&b.store, period, MatchMethod::Exact);
        let single = IndexedMatcher.match_jobs(&b.store, period, MatchMethod::Exact);
        // Single-pass finds the job; at least verify streaming never finds
        // MORE than single-pass (it can only lose boundary jobs).
        assert!(single.contains(&streamed));
    }

    #[test]
    fn diagnostics_report_maxima() {
        let (store, _) = long_store();
        assert_eq!(max_job_lifetime(&store), SimDuration::from_secs(5_000));
        assert!(max_transfer_lead(&store) > SimDuration::ZERO);
        assert_eq!(
            max_job_lifetime(&dmsa_metastore::MetaStore::new()),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn degenerate_geometry_is_rejected() {
        let _ = WindowedMatcher::new(
            IndexedMatcher,
            SimDuration::from_hours(1),
            SimDuration::from_hours(2),
        );
    }
}
