//! Stochastic workload and failure models.
//!
//! Every distribution here is chosen to reproduce a *shape* the paper
//! reports, not absolute production numbers:
//!
//! * file sizes are log-normal with a heavy upper tail, clamped to
//!   `[10 MB, 30 GB]` — the case studies involve 2–20 GB files;
//! * walltimes are log-normal around ~2 h — analysis payloads;
//! * task fan-out is log-normal and small for user analysis, large for
//!   production — which makes production *uploads* dominate the transfer
//!   stream (Table 1: 825 k production uploads vs 3 k analysis uploads);
//! * the failure probability **increases with the fraction of queuing time
//!   spent staging**, which is what couples transfer pathologies to error
//!   rates (Fig 9: jobs above a 75 % transfer-time threshold are mostly
//!   failed).

use crate::job::JobOutcome;
use crate::types::{error_codes, IoMode, JobStatus, TaskKind};
use dmsa_simcore::SimRng;
use rand::RngExt;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Knobs for the workload generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// User-analysis task submissions per hour.
    pub tasks_per_hour: f64,
    /// Fraction of tasks that are production rather than user analysis.
    pub production_fraction: f64,
    /// Fraction of analysis jobs using direct I/O streaming.
    pub direct_io_fraction: f64,
    /// Fraction of analysis jobs whose stage-in produces *recorded*
    /// per-file transfer events. The rest read through local protocols that
    /// bypass the transfer layer — one of the reasons the paper can match
    /// only ~1 % of jobs.
    pub recorded_stagein_fraction: f64,
    /// Fraction of tasks that are intrinsically doomed (broken payloads).
    pub doomed_task_fraction: f64,
    /// Median input file size in bytes.
    pub median_file_bytes: f64,
    /// Log-normal sigma of file sizes.
    pub file_size_sigma: f64,
    /// Median job walltime in seconds.
    pub median_walltime_secs: f64,
    /// Log-normal sigma of walltimes.
    pub walltime_sigma: f64,
    /// Median jobs per user-analysis task.
    pub median_jobs_per_task: f64,
    /// Median jobs per production task.
    pub median_jobs_per_prod_task: f64,
    /// Files per input dataset: uniform in `1..=max_files_per_dataset`.
    pub max_files_per_dataset: u32,
    /// Output bytes as a fraction of input bytes (mean).
    pub output_ratio: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            tasks_per_hour: 40.0,
            production_fraction: 0.30,
            direct_io_fraction: 0.60,
            recorded_stagein_fraction: 0.12,
            doomed_task_fraction: 0.08,
            median_file_bytes: 2.0e9,
            file_size_sigma: 1.1,
            median_walltime_secs: 5_400.0,
            walltime_sigma: 0.9,
            median_jobs_per_task: 8.0,
            median_jobs_per_prod_task: 60.0,
            max_files_per_dataset: 24,
            output_ratio: 0.15,
        }
    }
}

/// Samplers for all workload quantities.
#[derive(Clone, Debug)]
pub struct WorkloadModel {
    params: WorkloadParams,
    file_size: LogNormal<f64>,
    walltime: LogNormal<f64>,
    jobs_user: LogNormal<f64>,
    jobs_prod: LogNormal<f64>,
}

impl WorkloadModel {
    /// Build samplers from parameters.
    pub fn new(params: WorkloadParams) -> Self {
        let ln = |median: f64, sigma: f64| {
            LogNormal::new(median.ln(), sigma).expect("valid log-normal parameters")
        };
        WorkloadModel {
            file_size: ln(params.median_file_bytes, params.file_size_sigma),
            walltime: ln(params.median_walltime_secs, params.walltime_sigma),
            jobs_user: ln(params.median_jobs_per_task, 0.9),
            jobs_prod: ln(params.median_jobs_per_prod_task, 0.8),
            params,
        }
    }

    /// Parameters in effect.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Sample a task kind.
    pub fn sample_kind(&self, rng: &mut SimRng) -> TaskKind {
        if rng.random::<f64>() < self.params.production_fraction {
            TaskKind::Production
        } else {
            TaskKind::UserAnalysis
        }
    }

    /// Sample the fan-out (number of jobs) for a task of `kind`.
    pub fn sample_n_jobs(&self, kind: TaskKind, rng: &mut SimRng) -> u32 {
        let dist = match kind {
            TaskKind::UserAnalysis => &self.jobs_user,
            TaskKind::Production => &self.jobs_prod,
        };
        (dist.sample(rng).round() as u32).clamp(1, 3_000)
    }

    /// Sample an I/O mode for an analysis job.
    pub fn sample_io_mode(&self, rng: &mut SimRng) -> IoMode {
        if rng.random::<f64>() < self.params.direct_io_fraction {
            IoMode::DirectIo
        } else {
            IoMode::StageIn
        }
    }

    /// Whether this job's stage-in produces recorded transfer events.
    pub fn sample_recorded_stagein(&self, rng: &mut SimRng) -> bool {
        rng.random::<f64>() < self.params.recorded_stagein_fraction
    }

    /// Whether a new task is doomed.
    pub fn sample_doomed(&self, rng: &mut SimRng) -> bool {
        rng.random::<f64>() < self.params.doomed_task_fraction
    }

    /// Sample the file sizes of a fresh input dataset.
    pub fn sample_file_sizes(&self, rng: &mut SimRng) -> Vec<u64> {
        let n = rng.random_range(1..=self.params.max_files_per_dataset);
        (0..n)
            .map(|_| (self.file_size.sample(rng) as u64).clamp(10_000_000, 30_000_000_000))
            .collect()
    }

    /// Sample a walltime in seconds.
    pub fn sample_walltime_secs(&self, rng: &mut SimRng) -> f64 {
        self.walltime.sample(rng).clamp(60.0, 72.0 * 3_600.0)
    }

    /// Sample the output size for a job with `input_bytes` of input.
    pub fn sample_output_bytes(&self, input_bytes: u64, rng: &mut SimRng) -> u64 {
        let ratio = self.params.output_ratio * (0.5 + rng.random::<f64>());
        ((input_bytes as f64 * ratio) as u64).max(1_000_000)
    }
}

/// The failure process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FailureModel {
    /// Failure probability of a healthy job with no staging pathology.
    pub base_fail_prob: f64,
    /// Failure probability of jobs in doomed tasks.
    pub doomed_fail_prob: f64,
    /// Additional failure probability per unit of staging fraction
    /// (transfer time / queuing time, capped at 1).
    pub staging_coupling: f64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            base_fail_prob: 0.10,
            doomed_fail_prob: 0.60,
            staging_coupling: 0.45,
        }
    }
}

impl FailureModel {
    /// Failure probability for a job given its context.
    pub fn fail_prob(&self, doomed_task: bool, staging_fraction: f64) -> f64 {
        let base = if doomed_task {
            self.doomed_fail_prob
        } else {
            self.base_fail_prob
        };
        (base + self.staging_coupling * staging_fraction.clamp(0.0, 1.0)).min(0.97)
    }

    /// Draw the outcome of a job. `staging_fraction` is the share of its
    /// queuing time spent with at least one input transfer active.
    pub fn draw(&self, doomed_task: bool, staging_fraction: f64, rng: &mut SimRng) -> JobOutcome {
        let p = self.fail_prob(doomed_task, staging_fraction);
        if rng.random::<f64>() >= p {
            return JobOutcome {
                status: JobStatus::Finished,
                error_code: None,
            };
        }
        // Failed: pick an error code. Staging-heavy failures skew towards
        // stage-in/overlay codes (the Fig 11 case study).
        let staging_heavy = staging_fraction > 0.3;
        let code = if staging_heavy && rng.random::<f64>() < 0.6 {
            if rng.random::<f64>() < 0.5 {
                error_codes::STAGEIN_TIMEOUT
            } else {
                error_codes::OVERLAY_FAILURE
            }
        } else {
            match rng.random_range(0..4u32) {
                0 => error_codes::PAYLOAD_SEGV,
                1 => error_codes::STAGEOUT_FAILURE,
                2 => error_codes::NO_DISK_SPACE,
                _ => error_codes::OVERLAY_FAILURE,
            }
        };
        JobOutcome {
            status: JobStatus::Failed,
            error_code: Some(code),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_simcore::RngFactory;

    fn model() -> WorkloadModel {
        WorkloadModel::new(WorkloadParams::default())
    }

    #[test]
    fn file_sizes_respect_clamp_and_median() {
        let m = model();
        let mut rng = RngFactory::new(1).stream("t");
        let mut all = Vec::new();
        for _ in 0..2_000 {
            for s in m.sample_file_sizes(&mut rng) {
                assert!((10_000_000..=30_000_000_000).contains(&s));
                all.push(s as f64);
            }
        }
        let med = dmsa_simcore::stats::median(&all).unwrap();
        assert!(
            (0.5e9..8.0e9).contains(&med),
            "median file size {med} implausible"
        );
    }

    #[test]
    fn walltimes_are_hours_scale() {
        let m = model();
        let mut rng = RngFactory::new(2).stream("t");
        let xs: Vec<f64> = (0..5_000)
            .map(|_| m.sample_walltime_secs(&mut rng))
            .collect();
        let med = dmsa_simcore::stats::median(&xs).unwrap();
        assert!((1_800.0..18_000.0).contains(&med), "median walltime {med}s");
        assert!(xs.iter().all(|&w| (60.0..=72.0 * 3600.0).contains(&w)));
    }

    #[test]
    fn production_tasks_fan_out_wider() {
        let m = model();
        let mut rng = RngFactory::new(3).stream("t");
        let user: f64 = (0..2_000)
            .map(|_| m.sample_n_jobs(TaskKind::UserAnalysis, &mut rng) as f64)
            .sum::<f64>()
            / 2_000.0;
        let prod: f64 = (0..2_000)
            .map(|_| m.sample_n_jobs(TaskKind::Production, &mut rng) as f64)
            .sum::<f64>()
            / 2_000.0;
        assert!(prod > user * 3.0, "prod fan-out {prod} vs user {user}");
    }

    #[test]
    fn kind_mix_matches_fraction() {
        let m = model();
        let mut rng = RngFactory::new(4).stream("t");
        let prod = (0..20_000)
            .filter(|_| m.sample_kind(&mut rng) == TaskKind::Production)
            .count() as f64
            / 20_000.0;
        assert!((prod - 0.30).abs() < 0.02, "production fraction {prod}");
    }

    #[test]
    fn output_smaller_than_input_on_average() {
        let m = model();
        let mut rng = RngFactory::new(5).stream("t");
        let mean_out: f64 = (0..5_000)
            .map(|_| m.sample_output_bytes(10_000_000_000, &mut rng) as f64)
            .sum::<f64>()
            / 5_000.0;
        assert!(mean_out < 5_000_000_000.0);
        assert!(mean_out > 100_000_000.0);
    }

    #[test]
    fn failure_prob_monotone_in_staging_fraction() {
        let f = FailureModel::default();
        let p0 = f.fail_prob(false, 0.0);
        let p5 = f.fail_prob(false, 0.5);
        let p10 = f.fail_prob(false, 1.0);
        assert!(p0 < p5 && p5 < p10);
        assert!(f.fail_prob(true, 0.0) > p10 * 0.8, "doomed dominates");
        assert!(f.fail_prob(true, 5.0) <= 0.97, "capped");
    }

    #[test]
    fn staging_heavy_jobs_fail_more_often() {
        let f = FailureModel::default();
        let mut rng = RngFactory::new(6).stream("t");
        let n = 20_000;
        let fails = |frac: f64, rng: &mut dmsa_simcore::SimRng| {
            (0..n)
                .filter(|_| f.draw(false, frac, rng).status == JobStatus::Failed)
                .count() as f64
                / n as f64
        };
        let low = fails(0.0, &mut rng);
        let high = fails(0.9, &mut rng);
        assert!(
            high > low + 0.2,
            "staging coupling too weak: {low} vs {high}"
        );
    }

    #[test]
    fn failed_jobs_carry_error_codes() {
        let f = FailureModel::default();
        let mut rng = RngFactory::new(7).stream("t");
        let mut saw_failure = false;
        for _ in 0..200 {
            let o = f.draw(true, 0.8, &mut rng);
            match o.status {
                JobStatus::Failed => {
                    saw_failure = true;
                    assert!(o.error_code.is_some());
                }
                JobStatus::Finished => assert!(o.error_code.is_none()),
            }
        }
        assert!(saw_failure);
    }

    #[test]
    fn staging_failures_skew_to_stagein_codes() {
        let f = FailureModel::default();
        let mut rng = RngFactory::new(8).stream("t");
        let mut stagein_codes = 0;
        let mut total_failed = 0;
        for _ in 0..5_000 {
            let o = f.draw(false, 0.9, &mut rng);
            if o.status == JobStatus::Failed {
                total_failed += 1;
                if matches!(
                    o.error_code,
                    Some(error_codes::STAGEIN_TIMEOUT) | Some(error_codes::OVERLAY_FAILURE)
                ) {
                    stagein_codes += 1;
                }
            }
        }
        assert!(
            stagein_codes as f64 / total_failed as f64 > 0.5,
            "staging-related codes should dominate staging-heavy failures"
        );
    }
}
