//! Replica deletion under storage pressure.
//!
//! Rucio protects replicas "from deletion until all rules expire" (paper
//! §2.2); once unprotected, site reapers free space greediest-first when
//! an RSE approaches capacity. This module implements that reaper:
//! given the catalog, the rule engine, and per-RSE usage, it selects the
//! unprotected replicas to delete — least-recently-created first (the
//! classic Rucio `minimum-free-space` greedy policy) — until the RSE is
//! back under its high-watermark.
//!
//! Deletion is what ultimately *causes* some of the paper's redundant
//! transfers: a file deleted after its rule expired must be transferred
//! again when a later job needs it.

use crate::catalog::{FileId, ReplicaCatalog};
use crate::rules::RuleEngine;
use dmsa_gridnet::{GridTopology, RseId};
use dmsa_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Reaper policy knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReaperPolicy {
    /// Usage fraction above which the reaper activates.
    pub high_watermark: f64,
    /// Usage fraction the reaper frees down to.
    pub low_watermark: f64,
}

impl Default for ReaperPolicy {
    fn default() -> Self {
        ReaperPolicy {
            high_watermark: 0.90,
            low_watermark: 0.80,
        }
    }
}

/// One executed deletion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deletion {
    /// File whose replica was removed.
    pub file: FileId,
    /// RSE it was removed from.
    pub rse: RseId,
    /// Bytes freed.
    pub bytes: u64,
}

/// Current usage of one RSE, in bytes (computed from the catalog).
pub fn rse_usage(catalog: &ReplicaCatalog, rse: RseId) -> u64 {
    catalog
        .files()
        .iter()
        .filter(|f| catalog.has_replica(f.id, rse))
        .map(|f| f.size)
        .sum()
}

/// Run the reaper on one RSE at instant `now`. Deletes unprotected
/// replicas (oldest registration first) until usage drops below the low
/// watermark, and returns what was deleted. The catalog is mutated.
pub fn reap_rse(
    catalog: &mut ReplicaCatalog,
    rules: &RuleEngine,
    topology: &GridTopology,
    policy: &ReaperPolicy,
    rse: RseId,
    now: SimTime,
) -> Vec<Deletion> {
    let capacity = topology.rse(rse).capacity_bytes.max(1);
    let mut usage = rse_usage(catalog, rse);
    if (usage as f64) < policy.high_watermark * capacity as f64 {
        return Vec::new();
    }
    let target = (policy.low_watermark * capacity as f64) as u64;

    // Candidates: unprotected replicas on this RSE, oldest first.
    let mut candidates: Vec<(SimTime, FileId, u64)> = catalog
        .files()
        .iter()
        .filter(|f| catalog.has_replica(f.id, rse))
        .filter(|f| !rules.is_protected(f.id, rse, catalog, now))
        .map(|f| (f.registered, f.id, f.size))
        .collect();
    candidates.sort();

    let mut deleted = Vec::new();
    for (_, file, bytes) in candidates {
        if usage <= target {
            break;
        }
        if catalog.remove_replica(file, rse) {
            usage = usage.saturating_sub(bytes);
            deleted.push(Deletion { file, rse, bytes });
        }
    }
    deleted
}

/// Run the reaper over every RSE of the topology.
///
/// Computes all usages in a single pass over the replica table, then runs
/// the per-RSE candidate scan only for RSEs above their high watermark —
/// O(|files| + Σ_overfull |files|) instead of O(|files| × |RSEs|), which
/// matters when the scenario loop calls this every few simulated hours.
pub fn reap_all(
    catalog: &mut ReplicaCatalog,
    rules: &RuleEngine,
    topology: &GridTopology,
    policy: &ReaperPolicy,
    now: SimTime,
) -> Vec<Deletion> {
    let mut usage: Vec<u64> = vec![0; topology.rses().len()];
    for f in catalog.files() {
        for &rse in catalog.replicas_of(f.id) {
            usage[rse.index()] += f.size;
        }
    }
    let overfull: Vec<RseId> = topology
        .rses()
        .iter()
        .filter(|r| {
            usage[r.id.index()] as f64 >= policy.high_watermark * r.capacity_bytes.max(1) as f64
        })
        .map(|r| r.id)
        .collect();
    let mut all = Vec::new();
    for rse in overfull {
        all.extend(reap_rse(catalog, rules, topology, policy, rse, now));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::did::Scope;
    use dmsa_gridnet::{GridTopology, TopologyConfig};
    use dmsa_simcore::{RngFactory, SimDuration};

    fn topo() -> GridTopology {
        GridTopology::generate(&RngFactory::new(3), &TopologyConfig::small())
    }

    /// A catalog filling `frac` of the given RSE with distinct datasets
    /// registered at increasing times.
    fn filled_catalog(topology: &GridTopology, rse: RseId, frac: f64) -> ReplicaCatalog {
        let mut cat = ReplicaCatalog::new();
        let capacity = topology.rse(rse).capacity_bytes;
        let chunk = capacity / 20;
        let n = ((frac * 20.0).round() as u64).max(1);
        for i in 0..n {
            let ds = cat.register_dataset(
                Scope::Data,
                i,
                "fill",
                &[chunk],
                SimTime::from_secs(i as i64),
            );
            let f = cat.dataset_files(ds)[0];
            cat.add_replica(f, rse);
        }
        cat
    }

    #[test]
    fn reaper_idles_below_watermark() {
        let topo = topo();
        let rse = topo.disk_rse(dmsa_gridnet::SiteId(1));
        let mut cat = filled_catalog(&topo, rse, 0.5);
        let rules = RuleEngine::new();
        let deleted = reap_rse(
            &mut cat,
            &rules,
            &topo,
            &ReaperPolicy::default(),
            rse,
            SimTime::from_days(1),
        );
        assert!(deleted.is_empty());
    }

    #[test]
    fn reaper_frees_down_to_low_watermark_oldest_first() {
        let topo = topo();
        let rse = topo.disk_rse(dmsa_gridnet::SiteId(1));
        let mut cat = filled_catalog(&topo, rse, 0.95);
        let rules = RuleEngine::new();
        let policy = ReaperPolicy::default();
        let deleted = reap_rse(&mut cat, &rules, &topo, &policy, rse, SimTime::from_days(1));
        assert!(!deleted.is_empty());
        let usage = rse_usage(&cat, rse) as f64;
        let capacity = topo.rse(rse).capacity_bytes as f64;
        assert!(usage <= policy.low_watermark * capacity * 1.001);
        // Oldest-registered files went first.
        let oldest_file = deleted[0].file;
        assert_eq!(cat.file(oldest_file).registered, SimTime::from_secs(0));
        cat.check_invariants().unwrap();
    }

    #[test]
    fn active_rules_protect_replicas() {
        let topo = topo();
        let rse = topo.disk_rse(dmsa_gridnet::SiteId(1));
        let mut cat = filled_catalog(&topo, rse, 0.95);
        // Pin every dataset with an unexpired rule.
        let mut rules = RuleEngine::new();
        let ds_ids: Vec<_> = cat.datasets().iter().map(|d| d.id).collect();
        for ds in ds_ids {
            rules.add_rule(ds, vec![rse], 1, SimTime::EPOCH, None);
        }
        let deleted = reap_rse(
            &mut cat,
            &rules,
            &topo,
            &ReaperPolicy::default(),
            rse,
            SimTime::from_days(1),
        );
        assert!(deleted.is_empty(), "protected replicas were reaped");
    }

    #[test]
    fn expired_rules_release_protection() {
        let topo = topo();
        let rse = topo.disk_rse(dmsa_gridnet::SiteId(1));
        let mut cat = filled_catalog(&topo, rse, 0.95);
        let mut rules = RuleEngine::new();
        let ds_ids: Vec<_> = cat.datasets().iter().map(|d| d.id).collect();
        for ds in ds_ids {
            rules.add_rule(
                ds,
                vec![rse],
                1,
                SimTime::EPOCH,
                Some(SimDuration::from_hours(1)),
            );
        }
        // Before expiry: protected. After: reapable.
        let before = reap_rse(
            &mut cat,
            &rules,
            &topo,
            &ReaperPolicy::default(),
            rse,
            SimTime::from_secs(600),
        );
        assert!(before.is_empty());
        let after = reap_rse(
            &mut cat,
            &rules,
            &topo,
            &ReaperPolicy::default(),
            rse,
            SimTime::from_days(1),
        );
        assert!(!after.is_empty());
    }

    #[test]
    fn reap_all_covers_every_rse() {
        let topo = topo();
        let rse_a = topo.disk_rse(dmsa_gridnet::SiteId(1));
        let rse_b = topo.disk_rse(dmsa_gridnet::SiteId(2));
        let mut cat = ReplicaCatalog::new();
        for (i, &rse) in [rse_a, rse_b].iter().enumerate() {
            let capacity = topo.rse(rse).capacity_bytes;
            let ds = cat.register_dataset(
                Scope::Data,
                i as u64,
                "big",
                &[capacity], // 100 % full
                SimTime::EPOCH,
            );
            let f = cat.dataset_files(ds)[0];
            cat.add_replica(f, rse);
        }
        let rules = RuleEngine::new();
        let deleted = reap_all(
            &mut cat,
            &rules,
            &topo,
            &ReaperPolicy::default(),
            SimTime::from_days(1),
        );
        let rses: std::collections::HashSet<RseId> = deleted.iter().map(|d| d.rse).collect();
        assert!(rses.contains(&rse_a) && rses.contains(&rse_b));
    }
}
