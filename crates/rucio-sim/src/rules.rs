//! Replication rules.
//!
//! A rule pins `copies` replicas of a dataset onto a set of candidate RSEs
//! for a lifetime (paper §2.2: "specify where data must exist, how many
//! replicas must be maintained, and the duration of retention"). Evaluating
//! a rule against the catalog yields the transfers needed to satisfy it;
//! expired rules release their replicas to the deletion pressure model.

use crate::catalog::{DatasetId, FileId, ReplicaCatalog};
use dmsa_gridnet::RseId;
use dmsa_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Rule identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RuleId(pub u64);

/// A replication rule over one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicationRule {
    /// Identifier.
    pub id: RuleId,
    /// Target dataset.
    pub dataset: DatasetId,
    /// Candidate RSEs (the simplified "RSE expression").
    pub candidate_rses: Vec<RseId>,
    /// Required replica count per file.
    pub copies: usize,
    /// Creation instant.
    pub created: SimTime,
    /// Retention duration; `None` = pinned forever.
    pub lifetime: Option<SimDuration>,
}

impl ReplicationRule {
    /// Whether the rule still protects its replicas at `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        match self.lifetime {
            None => true,
            Some(l) => t < self.created + l,
        }
    }
}

/// A transfer needed to satisfy a rule: copy `file` to `dest`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeededTransfer {
    /// File missing a replica.
    pub file: FileId,
    /// Destination RSE.
    pub dest: RseId,
}

/// Holds rules and evaluates them against the catalog.
#[derive(Clone, Debug, Default)]
pub struct RuleEngine {
    rules: Vec<ReplicationRule>,
}

impl RuleEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule; returns its id.
    pub fn add_rule(
        &mut self,
        dataset: DatasetId,
        candidate_rses: Vec<RseId>,
        copies: usize,
        created: SimTime,
        lifetime: Option<SimDuration>,
    ) -> RuleId {
        assert!(
            copies <= candidate_rses.len(),
            "rule requests {} copies but only {} candidate RSEs",
            copies,
            candidate_rses.len()
        );
        let id = RuleId(self.rules.len() as u64);
        self.rules.push(ReplicationRule {
            id,
            dataset,
            candidate_rses,
            copies,
            created,
            lifetime,
        });
        id
    }

    /// All rules.
    pub fn rules(&self) -> &[ReplicationRule] {
        &self.rules
    }

    /// Rebuild an engine from checkpointed rules. Ids must be dense and in
    /// order — the same invariant [`Self::add_rule`] maintains — so a
    /// corrupted checkpoint is rejected instead of corrupting id lookups.
    pub fn from_rules(rules: Vec<ReplicationRule>) -> Result<Self, String> {
        for (i, r) in rules.iter().enumerate() {
            if r.id.0 != i as u64 {
                return Err(format!("rule {i} has out-of-order id {:?}", r.id));
            }
            if r.copies > r.candidate_rses.len() {
                return Err(format!(
                    "rule {i} requests {} copies with {} candidates",
                    r.copies,
                    r.candidate_rses.len()
                ));
            }
        }
        Ok(RuleEngine { rules })
    }

    /// Rule by id.
    pub fn rule(&self, id: RuleId) -> &ReplicationRule {
        &self.rules[id.0 as usize]
    }

    /// Transfers required to satisfy `rule` given current replica state.
    /// Candidate RSEs are filled in listed order (deterministic).
    pub fn missing_replicas(&self, rule: RuleId, catalog: &ReplicaCatalog) -> Vec<NeededTransfer> {
        let rule = self.rule(rule);
        let mut needed = Vec::new();
        for &file in catalog.dataset_files(rule.dataset) {
            let have: usize = rule
                .candidate_rses
                .iter()
                .filter(|&&r| catalog.has_replica(file, r))
                .count();
            if have >= rule.copies {
                continue;
            }
            let mut missing = rule.copies - have;
            for &rse in &rule.candidate_rses {
                if missing == 0 {
                    break;
                }
                if !catalog.has_replica(file, rse) {
                    needed.push(NeededTransfer { file, dest: rse });
                    missing -= 1;
                }
            }
        }
        needed
    }

    /// Whether any active rule at `t` protects a replica of `file` at `rse`.
    pub fn is_protected(
        &self,
        file: FileId,
        rse: RseId,
        catalog: &ReplicaCatalog,
        t: SimTime,
    ) -> bool {
        let ds = catalog.file(file).dataset;
        self.rules
            .iter()
            .any(|r| r.dataset == ds && r.is_active(t) && r.candidate_rses.contains(&rse))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::did::Scope;

    fn setup() -> (ReplicaCatalog, DatasetId) {
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register_dataset(Scope::User(1), 1, "s", &[10, 20], SimTime::EPOCH);
        (cat, ds)
    }

    #[test]
    fn missing_replicas_for_fresh_dataset() {
        let (cat, ds) = setup();
        let mut eng = RuleEngine::new();
        let rule = eng.add_rule(ds, vec![RseId(0), RseId(1)], 2, SimTime::EPOCH, None);
        let needed = eng.missing_replicas(rule, &cat);
        // 2 files × 2 copies each.
        assert_eq!(needed.len(), 4);
    }

    #[test]
    fn satisfied_rule_needs_nothing() {
        let (mut cat, ds) = setup();
        let files = cat.dataset_files(ds).to_vec();
        for &f in &files {
            cat.add_replica(f, RseId(0));
        }
        let mut eng = RuleEngine::new();
        let rule = eng.add_rule(ds, vec![RseId(0)], 1, SimTime::EPOCH, None);
        assert!(eng.missing_replicas(rule, &cat).is_empty());
    }

    #[test]
    fn partial_satisfaction_tops_up() {
        let (mut cat, ds) = setup();
        let files = cat.dataset_files(ds).to_vec();
        cat.add_replica(files[0], RseId(0)); // file 0 already at RSE 0
        let mut eng = RuleEngine::new();
        let rule = eng.add_rule(ds, vec![RseId(0), RseId(1)], 2, SimTime::EPOCH, None);
        let needed = eng.missing_replicas(rule, &cat);
        // file 0 needs 1 more copy (at RSE 1), file 1 needs both.
        assert_eq!(needed.len(), 3);
        assert!(needed.contains(&NeededTransfer {
            file: files[0],
            dest: RseId(1)
        }));
    }

    #[test]
    fn lifetime_controls_activity() {
        let (_, ds) = setup();
        let mut eng = RuleEngine::new();
        let rule = eng.add_rule(
            ds,
            vec![RseId(0)],
            1,
            SimTime::from_secs(100),
            Some(SimDuration::from_secs(50)),
        );
        let r = eng.rule(rule);
        assert!(r.is_active(SimTime::from_secs(120)));
        assert!(!r.is_active(SimTime::from_secs(150)), "expiry is exclusive");
        assert!(r.is_active(SimTime::from_secs(149)));
    }

    #[test]
    fn protection_checks_dataset_rse_and_time() {
        let (cat, ds) = setup();
        let f = cat.dataset_files(ds)[0];
        let mut eng = RuleEngine::new();
        eng.add_rule(
            ds,
            vec![RseId(3)],
            1,
            SimTime::EPOCH,
            Some(SimDuration::from_secs(10)),
        );
        assert!(eng.is_protected(f, RseId(3), &cat, SimTime::from_secs(5)));
        assert!(!eng.is_protected(f, RseId(4), &cat, SimTime::from_secs(5)));
        assert!(!eng.is_protected(f, RseId(3), &cat, SimTime::from_secs(20)));
    }

    #[test]
    #[should_panic(expected = "candidate RSEs")]
    fn over_constrained_rule_rejected() {
        let (_, ds) = setup();
        let mut eng = RuleEngine::new();
        eng.add_rule(ds, vec![RseId(0)], 2, SimTime::EPOCH, None);
    }
}
