//! Reusable textual report rendering.
//!
//! Every `dmsa analyze` report used to be rendered by private helpers in
//! the CLI crate, welded to its export type and (originally) to stdout.
//! A long-lived `dmsa serve` process needs the same reports rendered
//! **in memory**, per request, over whatever store generation the request
//! loaded — so the writers live here, parameterized on the few inputs
//! they actually consume ([`ReportInputs`]) and on any [`io::Write`]
//! sink. The CLI wraps them around stdout; the server wraps them around
//! a `String` buffer that becomes a protocol reply.

use crate::activity::ActivityBreakdown;
use crate::exclusion::{exclusion_delta, exclusion_report, ExclusionReport};
use crate::matrix::TransferMatrix;
use crate::overlap::{all_overlaps, summarize};
use crate::redundancy::redundancy_breakdown;
use crate::temporal::{peak_to_trough, site_volume_gini, volume_series};
use dmsa_core::MatchSet;
use dmsa_gridnet::HealthSummary;
use dmsa_metastore::MetaStore;
use dmsa_rucio_sim::TransferPathStats;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::SimDuration;
use std::io;

/// Everything a report reads from a campaign, borrowed piecewise so any
/// owner of a store — a CLI export, a server store generation — can
/// render without copying.
#[derive(Clone, Copy)]
pub struct ReportInputs<'a> {
    /// The (corrupted) metadata store.
    pub store: &'a MetaStore,
    /// Observation window.
    pub window: Interval,
    /// Transfer-path counters.
    pub path_stats: TransferPathStats,
    /// Breaker telemetry when the health loop ran armed.
    pub health: Option<&'a HealthSummary>,
}

/// The report names [`render_report`] accepts, in display order.
pub const REPORT_NAMES: &[&str] = &["summary", "matrix", "temporal", "redundancy", "exclusion"];

/// Why a render failed — callers treat the two cases differently (a
/// usage error is the client's fault; a sink error may be a benign
/// `BrokenPipe` the CLI swallows).
#[derive(Debug)]
pub enum RenderError {
    /// The report name is not one of [`REPORT_NAMES`]. Raised before
    /// anything is written.
    UnknownReport(String),
    /// The sink failed mid-report.
    Io(io::Error),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::UnknownReport(name) => {
                write!(f, "unknown report {name:?} ({})", REPORT_NAMES.join("|"))
            }
            RenderError::Io(e) => write!(f, "writing report: {e}"),
        }
    }
}

/// Render the named report into `out`. `matches` feeds the summary
/// report's overlap/activity tables; `baseline` feeds the exclusion
/// report's delta section. An unknown name is an error *before* anything
/// is written.
pub fn render_report(
    inputs: &ReportInputs<'_>,
    report: &str,
    matches: Option<&MatchSet>,
    baseline: Option<&ExclusionReport>,
    out: &mut dyn io::Write,
) -> Result<(), RenderError> {
    if !REPORT_NAMES.contains(&report) {
        return Err(RenderError::UnknownReport(report.to_string()));
    }
    let result = match report {
        "summary" => write_summary(out, inputs, matches),
        "matrix" => write_matrix(out, inputs),
        "temporal" => write_temporal(out, inputs),
        "redundancy" => write_redundancy(out, inputs),
        "exclusion" => write_exclusion(out, inputs, baseline),
        _ => unreachable!("validated above"),
    };
    result.map_err(RenderError::Io)
}

/// [`render_report`] into an owned `String` — the in-memory form a
/// service reply wants. Infallible on the sink side (a `String` buffer
/// cannot fail to grow short of OOM).
pub fn render_report_string(
    inputs: &ReportInputs<'_>,
    report: &str,
    matches: Option<&MatchSet>,
    baseline: Option<&ExclusionReport>,
) -> Result<String, String> {
    let mut buf = Vec::new();
    render_report(inputs, report, matches, baseline, &mut buf).map_err(|e| e.to_string())?;
    String::from_utf8(buf).map_err(|e| format!("report is not utf-8: {e}"))
}

/// The `summary` report: store counts, then (with matches) overlap and
/// per-activity match-rate tables.
pub fn write_summary(
    out: &mut dyn io::Write,
    inputs: &ReportInputs<'_>,
    matches: Option<&MatchSet>,
) -> io::Result<()> {
    let store = inputs.store;
    let (jobs, files, transfers, with_tid) = store.counts();
    let user = store.user_jobs_in(inputs.window).count();
    writeln!(out, "jobs {jobs} (user {user}) | file rows {files}")?;
    writeln!(out, "transfers {transfers} (with taskid {with_tid})")?;
    if let Some(set) = matches {
        let overlaps = all_overlaps(store, set);
        let s = summarize(&overlaps);
        writeln!(
            out,
            "matched jobs {} | transfer-time in queue: mean {:.2}% geo {:.2}% max {:.1}%",
            set.n_matched_jobs(),
            s.mean_percent,
            s.geo_mean_percent,
            s.max_percent
        )?;
        let table = ActivityBreakdown::build(store, set);
        for row in &table.rows {
            writeln!(
                out,
                "  {:<30} {:>7}/{:<8} {:.2}%",
                row.activity.label(),
                row.matched,
                row.total,
                row.percent()
            )?;
        }
    }
    Ok(())
}

/// The `matrix` report: site-pair volume concentration and outliers.
pub fn write_matrix(out: &mut dyn io::Write, inputs: &ReportInputs<'_>) -> io::Result<()> {
    let m = TransferMatrix::build(inputs.store, inputs.window);
    let s = m.summary();
    writeln!(out, "sites {} | transfers {}", m.n(), m.n_transfers)?;
    writeln!(
        out,
        "total {} B | local {:.1}% | mean/geo {:.1}x",
        s.total_bytes,
        100.0 * s.local_bytes as f64 / s.total_bytes.max(1) as f64,
        s.mean_pair_bytes / s.geo_mean_pair_bytes.max(1.0)
    )?;
    for c in m.top_outliers(5) {
        writeln!(
            out,
            "  {:>16} B  {} -> {}",
            c.bytes, c.src_label, c.dst_label
        )?;
    }
    Ok(())
}

/// The `temporal` report: volume burstiness and destination skew.
pub fn write_temporal(out: &mut dyn io::Write, inputs: &ReportInputs<'_>) -> io::Result<()> {
    let store = inputs.store;
    let series = volume_series(store, inputs.window, SimDuration::from_hours(6));
    let p2t = peak_to_trough(&series)
        .map(|r| format!("{r:.1}x"))
        .unwrap_or_else(|| "n/a".into());
    writeln!(out, "{} buckets of 6h | peak/trough {}", series.len(), p2t)?;
    writeln!(
        out,
        "destination-site volume Gini {:.3}",
        site_volume_gini(store, inputs.window)
    )?;
    Ok(())
}

/// The `redundancy` report: duplicate deliveries split by cause.
pub fn write_redundancy(out: &mut dyn io::Write, inputs: &ReportInputs<'_>) -> io::Result<()> {
    let b = redundancy_breakdown(inputs.store, SimDuration::from_hours(24));
    writeln!(
        out,
        "retry-induced: {} groups, {} redundant transfers, {} B",
        b.retry_induced.n_groups, b.retry_induced.n_redundant, b.retry_induced.redundant_bytes
    )?;
    writeln!(
        out,
        "reaper-induced: {} groups, {} redundant transfers, {} B",
        b.reaper_induced.n_groups, b.reaper_induced.n_redundant, b.reaper_induced.redundant_bytes
    )?;
    let share = b
        .retry_share()
        .map(|s| format!("{:.1}%", 100.0 * s))
        .unwrap_or_else(|| "n/a".into());
    let delay = b
        .mean_retry_delay_secs()
        .map(|d| format!("{d:.0} s"))
        .unwrap_or_else(|| "n/a".into());
    writeln!(
        out,
        "retry share {share} | mean retry-added staging delay {delay}"
    )?;
    Ok(())
}

/// The `exclusion` report: breaker telemetry plus (with a baseline) the
/// adaptive-vs-baseline delta.
pub fn write_exclusion(
    out: &mut dyn io::Write,
    inputs: &ReportInputs<'_>,
    baseline: Option<&ExclusionReport>,
) -> io::Result<()> {
    let r = exclusion_report(
        inputs.store,
        inputs.window,
        inputs.path_stats,
        inputs.health,
    );
    writeln!(
        out,
        "adaptive exclusion {} | breaker trips {}",
        if r.adaptive { "armed" } else { "off" },
        r.trips
    )?;
    writeln!(
        out,
        "excluded site-hours {:.2} | excluded link-hours {:.2}",
        r.excluded_site_hours, r.excluded_link_hours
    )?;
    writeln!(
        out,
        "refusals: site {} link {} | probes granted {}",
        r.site_refusals, r.link_refusals, r.probes_granted
    )?;
    writeln!(
        out,
        "path: {} requests, {} delivered ({} after retry), {} failed attempts, {} exhausted, {} no-replica",
        r.path.requests,
        r.path.delivered,
        r.path.delivered_after_retry,
        r.path.failed_attempts,
        r.path.exhausted,
        r.path.no_replica
    )?;
    writeln!(
        out,
        "retry-attributed staging delay {:.0} s over {} delivering groups",
        r.retry_delay_total_secs, r.retry_delay_samples
    )?;
    if let Some(b) = baseline {
        let d = exclusion_delta(&r, b);
        writeln!(
            out,
            "vs baseline: exhausted {:+}, failed attempts {:+}, undelivered {:+}, retry delay {:+.0} s",
            d.exhausted, d.failed_attempts, d.undelivered, d.retry_delay_secs
        )?;
        writeln!(
            out,
            "strictly better on both acceptance axes: {}",
            d.strictly_better()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_inputs(store: &MetaStore) -> ReportInputs<'_> {
        ReportInputs {
            store,
            window: Interval::new(
                dmsa_simcore::SimTime::EPOCH,
                dmsa_simcore::SimTime::EPOCH + SimDuration::from_hours(1),
            ),
            path_stats: TransferPathStats::default(),
            health: None,
        }
    }

    #[test]
    fn unknown_report_is_rejected_before_writing() {
        let store = MetaStore::default();
        let mut buf = Vec::new();
        let err =
            render_report(&empty_inputs(&store), "pie-chart", None, None, &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown report"), "{err}");
        assert!(buf.is_empty(), "nothing may be written on a usage error");
    }

    #[test]
    fn every_report_renders_on_an_empty_store() {
        let store = MetaStore::default();
        for name in REPORT_NAMES {
            let text = render_report_string(&empty_inputs(&store), name, None, None)
                .unwrap_or_else(|e| panic!("report {name}: {e}"));
            assert!(!text.is_empty(), "report {name} rendered nothing");
        }
    }
}
