//! Adaptive-exclusion accounting: what did the circuit breakers buy?
//!
//! The closed health loop (PR 3) excludes sick sites/links from brokerage
//! and source selection. This module turns one campaign's breaker
//! telemetry ([`HealthSummary`]), transfer-path counters
//! ([`TransferPathStats`]) and metadata store into a single
//! [`ExclusionReport`] — excluded site/link hours, refusal and probe
//! counts, failure/exhaustion totals, and the retry-attributed staging
//! delay (reusing the [`crate::redundancy`] machinery) — and diffs two
//! such reports ([`exclusion_delta`]) to quantify adaptive vs non-adaptive
//! at the same seed: the PR's acceptance numbers come straight from this
//! diff.

use crate::redundancy::redundancy_breakdown;
use dmsa_gridnet::HealthSummary;
use dmsa_metastore::MetaStore;
use dmsa_rucio_sim::TransferPathStats;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Clustering window the retry-delay attribution uses (same as the
/// `redundancy` report, so the two reports' numbers line up).
pub const RETRY_CLUSTER_WINDOW: SimDuration = SimDuration::from_hours(24);

/// One campaign's exclusion/health accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExclusionReport {
    /// Was the health loop armed at all?
    pub adaptive: bool,
    /// Breaker trips (Closed/HalfOpen → Open).
    pub trips: u64,
    /// Total site exclusion in hours, clamped to the window.
    pub excluded_site_hours: f64,
    /// Total directed-link exclusion in hours, clamped to the window.
    pub excluded_link_hours: f64,
    /// Broker placements refused by an Open/over-quota site breaker.
    pub site_refusals: u64,
    /// Source-selection skips from site or link breakers.
    pub link_refusals: u64,
    /// Probe admissions granted during Half-Open probation.
    pub probes_granted: u64,
    /// Engine transfer-path counters (always-on, adaptive or not).
    pub path: TransferPathStats,
    /// Failed attempt records in the (corrupted) store — the metadata's
    /// own view of the same thing `path.failed_attempts` counts.
    pub failed_attempt_records: u64,
    /// Total retry-attributed staging delay (seconds summed over
    /// delivering retry-induced duplicate groups).
    pub retry_delay_total_secs: f64,
    /// Number of delay samples behind the total.
    pub retry_delay_samples: usize,
}

/// Build the report for one campaign. `health` is `None` for a
/// non-adaptive run — the path counters and store-side numbers are still
/// filled in, so the report stays diffable against an adaptive run.
pub fn exclusion_report(
    store: &MetaStore,
    window: Interval,
    path: TransferPathStats,
    health: Option<&HealthSummary>,
) -> ExclusionReport {
    let breakdown = redundancy_breakdown(store, RETRY_CLUSTER_WINDOW);
    let failed_attempt_records = store.transfers.iter().filter(|t| !t.succeeded).count() as u64;
    let (trips, site_hours, link_hours, counters) = match health {
        Some(h) => (
            h.counters.trips,
            h.excluded_site_hours(window.end),
            h.excluded_link_hours(window.end),
            h.counters,
        ),
        None => (0, 0.0, 0.0, Default::default()),
    };
    ExclusionReport {
        adaptive: health.is_some(),
        trips,
        excluded_site_hours: site_hours,
        excluded_link_hours: link_hours,
        site_refusals: counters.site_refusals,
        link_refusals: counters.link_refusals,
        probes_granted: counters.probes_granted,
        path,
        failed_attempt_records,
        retry_delay_total_secs: breakdown.retry_delay_secs.iter().sum(),
        retry_delay_samples: breakdown.retry_delay_secs.len(),
    }
}

/// Adaptive-minus-baseline difference of the outcome metrics (negative =
/// the adaptive run did better).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExclusionDelta {
    /// Exhausted-transfer difference.
    pub exhausted: i64,
    /// Failed-attempt difference (engine view).
    pub failed_attempts: i64,
    /// Retry-attributed staging-delay difference in seconds.
    pub retry_delay_secs: f64,
    /// Lost-input job surface difference: requests that exhausted plus
    /// requests with no replica.
    pub undelivered: i64,
}

impl ExclusionDelta {
    /// Did the adaptive run strictly improve on both acceptance axes
    /// (fewer exhausted transfers *and* less retry-attributed delay)?
    pub fn strictly_better(&self) -> bool {
        self.exhausted < 0 && self.retry_delay_secs < 0.0
    }
}

/// Diff an adaptive report against a same-seed baseline.
pub fn exclusion_delta(adaptive: &ExclusionReport, baseline: &ExclusionReport) -> ExclusionDelta {
    let undelivered = |r: &ExclusionReport| (r.path.exhausted + r.path.no_replica) as i64;
    ExclusionDelta {
        exhausted: adaptive.path.exhausted as i64 - baseline.path.exhausted as i64,
        failed_attempts: adaptive.path.failed_attempts as i64
            - baseline.path.failed_attempts as i64,
        retry_delay_secs: adaptive.retry_delay_total_secs - baseline.retry_delay_total_secs,
        undelivered: undelivered(adaptive) - undelivered(baseline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_gridnet::{HealthCounters, HealthSubject, OpenEpisode, SiteId};
    use dmsa_metastore::{Sym, SymbolTable, TransferRecord};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::SimTime;

    fn transfer(lfn: u64, start_s: i64, attempt: u32, succeeded: bool) -> TransferRecord {
        TransferRecord {
            transfer_id: 0,
            lfn: Sym(lfn as u32),
            dataset: SymbolTable::UNKNOWN,
            proddblock: SymbolTable::UNKNOWN,
            scope: SymbolTable::UNKNOWN,
            file_size: 1_000,
            starttime: SimTime::from_secs(start_s),
            endtime: SimTime::from_secs(start_s + 10),
            source_site: Sym(90),
            destination_site: Sym(91),
            activity: Activity::AnalysisDownload,
            jeditaskid: None,
            is_download: true,
            is_upload: false,
            attempt,
            succeeded,
            gt_pandaid: None,
            gt_source_site: Sym(90),
            gt_destination_site: Sym(91),
            gt_file_size: 1_000,
        }
    }

    fn window() -> Interval {
        Interval::new(SimTime::EPOCH, SimTime::from_hours(12))
    }

    #[test]
    fn report_folds_store_health_and_path_counters() {
        let mut store = MetaStore::new();
        store.transfers.push(transfer(1, 0, 1, false));
        store.transfers.push(transfer(1, 300, 2, true));
        let summary = HealthSummary {
            episodes: vec![OpenEpisode {
                subject: HealthSubject::Site(SiteId(3)),
                from: SimTime::from_hours(1),
                until: SimTime::from_hours(2),
            }],
            counters: HealthCounters {
                site_refusals: 7,
                link_refusals: 5,
                probes_granted: 2,
                trips: 1,
            },
        };
        let path = TransferPathStats {
            requests: 10,
            delivered: 9,
            delivered_after_retry: 1,
            failed_attempts: 1,
            exhausted: 1,
            no_replica: 0,
        };
        let r = exclusion_report(&store, window(), path, Some(&summary));
        assert!(r.adaptive);
        assert_eq!(r.trips, 1);
        assert!((r.excluded_site_hours - 1.0).abs() < 1e-9);
        assert_eq!(r.excluded_link_hours, 0.0);
        assert_eq!(r.site_refusals, 7);
        assert_eq!(r.link_refusals, 5);
        assert_eq!(r.probes_granted, 2);
        assert_eq!(r.failed_attempt_records, 1);
        // One retry-induced group delivering 300 s after the first start.
        assert_eq!(r.retry_delay_samples, 1);
        assert!((r.retry_delay_total_secs - 300.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_report_has_no_health_numbers_but_keeps_path() {
        let store = MetaStore::new();
        let path = TransferPathStats {
            requests: 4,
            exhausted: 2,
            ..Default::default()
        };
        let r = exclusion_report(&store, window(), path, None);
        assert!(!r.adaptive);
        assert_eq!(r.trips, 0);
        assert_eq!(r.excluded_site_hours, 0.0);
        assert_eq!(r.path.exhausted, 2);
    }

    #[test]
    fn delta_is_adaptive_minus_baseline() {
        let store = MetaStore::new();
        let adaptive = exclusion_report(
            &store,
            window(),
            TransferPathStats {
                exhausted: 3,
                failed_attempts: 10,
                no_replica: 1,
                ..Default::default()
            },
            None,
        );
        let baseline = exclusion_report(
            &store,
            window(),
            TransferPathStats {
                exhausted: 8,
                failed_attempts: 25,
                no_replica: 1,
                ..Default::default()
            },
            None,
        );
        let d = exclusion_delta(&adaptive, &baseline);
        assert_eq!(d.exhausted, -5);
        assert_eq!(d.failed_attempts, -15);
        assert_eq!(d.undelivered, -5);
        assert_eq!(d.retry_delay_secs, 0.0);
        assert!(d.strictly_better() == (d.retry_delay_secs < 0.0));
        assert!(!d.strictly_better(), "zero delay delta is not strict");
    }
}
