//! FxHash — the rustc/Firefox multiply-rotate hash — implemented locally
//! so hot hash maps across the workspace avoid SipHash without pulling in
//! a new dependency.
//!
//! The hot keys are small integers (`u64` task ids, `u32` job indices),
//! fixed-width tuples, and simulator-generated strings (LFNs, site names);
//! for those, Fx is several times faster than the DoS-resistant default.
//! Nothing here hashes attacker-supplied data: every keyed value is
//! simulator-generated.
//!
//! The module lives in `dmsa-simcore` (the root of the crate graph) so the
//! interning table, the matcher, and the driver all share one
//! implementation; `dmsa_core::fx` re-exports it for its original users.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the original FxHash (a 64-bit golden-ratio
/// derived odd number).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One mixing step: rotate, xor in the word, multiply.
#[inline]
pub const fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// The hasher state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hash = mix(self.hash, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = mix(self.hash, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = mix(self.hash, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = mix(self.hash, v as u64);
    }
}

/// Hash a byte string in one call (word chunks + zero-padded tail).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of((1u32, 2u64)), hash_of((1u32, 2u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of(0u64), hash_of(1u64 << 63));
    }

    #[test]
    fn byte_slices_hash_in_word_chunks() {
        // 8-byte-aligned and ragged tails must both mix every byte.
        assert_ne!(hash_of([0u8; 8]), hash_of([0u8; 9]));
        let mut a = [0u8; 11];
        let mut b = [0u8; 11];
        a[10] = 1;
        b[10] = 2;
        assert_ne!(hash_of(a), hash_of(b));
    }

    #[test]
    fn hash_bytes_matches_hasher_write() {
        let mut h = FxHasher::default();
        h.write(b"CERN-PROD");
        assert_eq!(hash_bytes(b"CERN-PROD"), h.finish());
        assert_ne!(hash_bytes(b"CERN-PROD"), hash_bytes(b"BNL-OSG2"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
