//! The on-disk campaign format.
//!
//! A campaign export carries everything matching and analysis need — the
//! (corrupted) metadata store and the observation window — plus the
//! provenance needed to regenerate it bit-for-bit (the scenario config).
//! The simulator-side state (topology, catalog, bandwidth oracle) is *not*
//! exported: analyses must work from metadata alone, exactly like the
//! paper's.

use dmsa_gridnet::HealthSummary;
use dmsa_metastore::MetaStore;
use dmsa_rucio_sim::TransferPathStats;
use dmsa_scenario::{Campaign, ScenarioConfig};
use dmsa_simcore::interval::Interval;
use serde::{Deserialize, Serialize};

/// Serializable campaign: metadata + window + provenance.
#[derive(Serialize, Deserialize)]
pub struct CampaignExport {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The scenario that produced this campaign (reproducibility).
    pub config: ScenarioConfig,
    /// Observation window.
    pub window: Interval,
    /// The corrupted metadata store.
    pub store: MetaStore,
    /// Engine transfer-path counters (defaulted when reading pre-health
    /// exports, which keeps the format at version 1).
    #[serde(default)]
    pub path_stats: TransferPathStats,
    /// Breaker telemetry, present only when the campaign ran with the
    /// health loop armed.
    #[serde(default)]
    pub health: Option<HealthSummary>,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

impl CampaignExport {
    /// Build an export from a completed campaign.
    pub fn from_campaign(campaign: &Campaign) -> Self {
        CampaignExport {
            version: FORMAT_VERSION,
            config: campaign.config.clone(),
            window: campaign.window,
            store: campaign.store.clone(),
            path_stats: campaign.path_stats,
            health: campaign.health.clone(),
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON, checking the format version.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let export: CampaignExport =
            serde_json::from_str(json).map_err(|e| format!("parse error: {e}"))?;
        if export.version != FORMAT_VERSION {
            return Err(format!(
                "unsupported campaign format version {} (expected {FORMAT_VERSION})",
                export.version
            ));
        }
        Ok(export)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_through_json() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let export = CampaignExport::from_campaign(&campaign);
        let json = export.to_json().unwrap();
        let back = CampaignExport::from_json(&json).unwrap();
        assert_eq!(back.version, FORMAT_VERSION);
        assert_eq!(back.window, campaign.window);
        assert_eq!(back.store.counts(), campaign.store.counts());
        assert_eq!(back.config.seed, campaign.config.seed);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let mut export = CampaignExport::from_campaign(&campaign);
        export.version = 999;
        let json = export.to_json().unwrap();
        match CampaignExport::from_json(&json) {
            Err(err) => assert!(err.contains("version 999")),
            Ok(_) => panic!("version mismatch accepted"),
        }
    }

    #[test]
    fn matching_on_reimported_store_is_identical() {
        use dmsa_core::matcher::Matcher;
        use dmsa_core::{IndexedMatcher, MatchMethod};
        let campaign = dmsa_scenario::run(&tiny_config());
        let json = CampaignExport::from_campaign(&campaign).to_json().unwrap();
        let back = CampaignExport::from_json(&json).unwrap();
        let a = IndexedMatcher.match_jobs(&campaign.store, campaign.window, MatchMethod::Rm2);
        let b = IndexedMatcher.match_jobs(&back.store, back.window, MatchMethod::Rm2);
        assert_eq!(a, b);
    }

    fn tiny_config() -> dmsa_scenario::ScenarioConfig {
        let mut c = dmsa_scenario::ScenarioConfig::small();
        c.duration = dmsa_simcore::SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.background_transfers_per_hour = 50.0;
        c.initial_datasets = 20;
        c
    }
}
