//! `dmsa sweep`: a parallel, self-healing ablation-fleet runner.
//!
//! Expands a config grid ([`dmsa_scenario::SweepGrid`]: presets × seeds
//! × fault rates × breaker settings), runs every cell deterministically
//! across a capped worker pool, and aggregates the per-cell campaigns
//! into one machine-readable `sweep_summary.json` plus a human report.
//!
//! Supervision layer (see DESIGN.md §5k): every sweep keeps an
//! append-only [`crate::journal`] of per-cell lifecycle transitions, so
//! `--resume` after a crash replays the journal, re-validates surviving
//! exports (checksum against the journaled stamp, then the
//! [`crate::verify`] content auditor), adopts verified-complete cells
//! and re-dispatches only the rest — ending byte-identical to an
//! uninterrupted sweep. Transient `storage:` failures are retried at
//! the cell level (`--cell-retries`, exponential backoff), and
//! `--cell-timeout` threads a cooperative [`CancelToken`] deadline into
//! each cell's hot loop so a hung cell is quarantined as `timeout:`
//! instead of wedging the fleet.
//!
//! Determinism split: `sweep_summary.json` contains only deterministic
//! facts (it must compare byte-equal across crash/resume and across
//! inert chaos drills), while everything timing- and process-shaped —
//! wall clocks, worker count, how many cells were adopted on resume —
//! lives in the `sweep_ops.json` sidecar.
//!
//! Three properties the tests pin:
//!
//! * **Byte-identity** — every cell's export equals a standalone
//!   `dmsa simulate` with the same config/seed. Warm-started cells fork
//!   from a shared prefix, which equals `dmsa simulate --fork-at` of
//!   the same `(base, cell)` pair. Resumed and cell-retried sweeps
//!   reproduce the artifacts of clean first-attempt sweeps exactly.
//! * **Warm-start sharing** — cells agreeing on `(preset, seed)` pay
//!   the `[0, warm_start_at)` prefix once, via
//!   [`dmsa_scenario::shared_prefix`]; each cell then continues from a
//!   memcpy-scale clone of the live prefix state
//!   ([`dmsa_scenario::SharedPrefix::fork`]) rather than re-decoding a
//!   byte snapshot per cell.
//! * **Failure isolation** — one panicking cell is quarantined (its row
//!   records the panic, the summary counts it, the exit code reflects
//!   partial success); the rest of the fleet completes.

use crate::atomic::write_atomic_via;
use crate::export::CampaignExport;
use crate::journal::{self, SweepJournal};
use crate::verify::{self, FileVerdict};
use crate::vfs::{self, ChaosProfile, IoBackend, IoRetryPolicy, RealBackend};
use dmsa_analysis::sweep::{
    aggregate, cell_metrics, classify_failure, CellFailureClass, CellMetrics, KnobGroup,
};
use dmsa_scenario::{BreakerSetting, Campaign, CancelToken, GridCell, SharedPrefix, SweepGrid};
use dmsa_simcore::codec::crc32;
use dmsa_simcore::stats::Summary;
use dmsa_simcore::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema tag written into `sweep_summary.json`. v2 split the summary:
/// deterministic facts stay here, timing moved to [`OPS_SCHEMA`].
pub const SWEEP_SCHEMA: &str = "dmsa-sweep-summary-v2";

/// Schema tag of the `sweep_ops.json` sidecar: process history (wall
/// clocks, worker count, resume adoption) that legitimately differs
/// between byte-identical sweeps.
pub const OPS_SCHEMA: &str = "dmsa-sweep-ops-v1";

/// Sweep execution knobs.
#[derive(Clone, Debug)]
pub struct SweepOpts {
    /// Worker-pool cap (`--jobs`); 0 means one worker per available core.
    pub jobs: usize,
    /// Warm-start divergence time (`--warm-start-at`): cells sharing a
    /// `(preset, seed)` base pay the `[0, at)` prefix once. `None` runs
    /// every cell cold from t=0.
    pub warm_start_at: Option<SimDuration>,
    /// Directory receiving `cell-<label>.json` exports and
    /// `sweep_summary.json`.
    pub out_dir: PathBuf,
    /// Write the per-cell campaign exports (the default). `false` keeps
    /// only the aggregated summary — metrics are computed straight from
    /// each in-memory campaign — which `bench_sweep` uses to time fleet
    /// compute without the export serialization/IO term (identical in
    /// every mode, and pinned byte-identical by the sweep tests).
    pub write_cell_exports: bool,
    /// Polled before each cell is dispatched *and* inside each running
    /// cell's tick loop (via its [`CancelToken`] probe); `true` stops
    /// the fleet: in-flight cells abort as `interrupted:`, unstarted
    /// cells are quarantined, and the partial summary is still written.
    /// The CLI wires [`crate::signals::termination_requested`] (Ctrl-C /
    /// SIGTERM) here; `None` never interrupts.
    pub interrupt: Option<fn() -> bool>,
    /// Storage-fault injection profile (`--chaos-profile`); `None` is
    /// the real filesystem.
    pub chaos: Option<ChaosProfile>,
    /// Backoff policy for individual cell-export and summary writes.
    pub retry: IoRetryPolicy,
    /// Replay `sweep-journal.dmsaj` in the out dir and adopt cells whose
    /// journaled completion still checks out on disk (`--resume`).
    pub resume: bool,
    /// Whole-cell retries for `storage:`-quarantined cells
    /// (`--cell-retries`): the cell re-runs from scratch — deterministic,
    /// so a healed retry is byte-identical to a clean first attempt.
    pub cell_retries: u32,
    /// Cooperative per-cell deadline (`--cell-timeout`): each attempt
    /// gets this much wall clock before its [`CancelToken`] trips and
    /// the cell is quarantined as `timeout:`. `None` never times out.
    pub cell_timeout: Option<Duration>,
    /// Delay before the first cell-level retry; doubles per retry.
    pub cell_backoff: Duration,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            jobs: 1,
            warm_start_at: None,
            out_dir: PathBuf::new(),
            write_cell_exports: true,
            interrupt: None,
            chaos: None,
            retry: IoRetryPolicy::default(),
            resume: false,
            cell_retries: 0,
            cell_timeout: None,
            cell_backoff: Duration::from_millis(250),
        }
    }
}

/// What happened to one cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    pub label: String,
    pub seed: u64,
    pub knobs: Vec<(String, String)>,
    pub warm_started: bool,
    /// Wall-clock seconds this cell took (run + export + write); 0 for
    /// cells adopted from a journal.
    pub wall_s: f64,
    /// Metrics on success; the classified failure reason on failure.
    pub result: Result<CellMetrics, String>,
    /// Export file name (relative to the out dir), when written.
    pub export_file: Option<String>,
    /// Adopted from the journal by `--resume` instead of re-run.
    pub resumed: bool,
    /// Cell-level retries this outcome consumed (0 = first attempt).
    pub retries: u32,
}

/// The whole fleet's outcome.
#[derive(Debug)]
pub struct SweepOutcome {
    pub cells: Vec<CellOutcome>,
    /// Per-knob aggregation rows over the successful cells.
    pub rows: Vec<KnobGroup>,
    pub wall_s: f64,
    pub jobs: usize,
    pub warm_start_at: Option<SimDuration>,
    /// The fleet stopped early on an interrupt (Ctrl-C): some cells may
    /// be quarantined as never-started, and the summary is partial.
    pub interrupted: bool,
}

impl SweepOutcome {
    pub fn n_failed(&self) -> usize {
        self.cells.iter().filter(|c| c.result.is_err()).count()
    }

    /// Cells adopted from the journal by `--resume`.
    pub fn n_resumed(&self) -> usize {
        self.cells.iter().filter(|c| c.resumed).count()
    }

    /// Cells that needed at least one cell-level (`storage:`) retry.
    pub fn n_retried(&self) -> usize {
        self.cells.iter().filter(|c| c.retries > 0).count()
    }

    /// Cells quarantined by their cooperative `--cell-timeout` deadline.
    pub fn n_timed_out(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                matches!(&c.result,
                    Err(e) if classify_failure(e) == CellFailureClass::Timeout)
            })
            .count()
    }

    /// Some cell failed for a storage reason rather than a simulation
    /// one — its error carries the `storage:` prefix [`run_sweep_with`]
    /// attaches when an export write exhausts its retry budget. Those
    /// cells are quarantined (metrics lost, row kept) instead of
    /// aborting the fleet.
    pub fn degraded_storage(&self) -> bool {
        self.cells
            .iter()
            .any(|c| matches!(&c.result, Err(e) if e.starts_with("storage:")))
    }

    /// Throughput over the whole fleet; denominator clamped so a
    /// sub-resolution wall clock can never put `inf` in the JSON.
    pub fn cells_per_s(&self) -> f64 {
        safe_ratio(self.cells.len() as f64, self.wall_s)
    }
}

/// `num / den` with the denominator clamped away from zero — the one
/// ratio guard every tracked-JSON number goes through, so hand-rolled
/// writers never see `inf`/`NaN`.
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    num / den.max(1e-9)
}

/// Split a `--seeds`-style comma list, ignoring blanks.
fn split_list(s: &str) -> impl Iterator<Item = &str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty())
}

/// Parse a `--seeds 1,7,42` axis.
pub fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    split_list(s)
        .map(|t| t.parse().map_err(|e| format!("bad seed {t:?}: {e}")))
        .collect()
}

/// Parse a `--fail-probs 0.05,0.2` axis.
pub fn parse_fail_probs(s: &str) -> Result<Vec<f64>, String> {
    split_list(s)
        .map(|t| match t.parse::<f64>() {
            Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
            _ => Err(format!("bad fail probability {t:?} (want 0..=1)")),
        })
        .collect()
}

/// Parse a `--breakers off,adaptive,adaptive:600` axis — `adaptive:SECS`
/// overrides the open-state cooldown.
pub fn parse_breakers(s: &str) -> Result<Vec<BreakerSetting>, String> {
    split_list(s)
        .map(|t| match t {
            "off" => Ok(BreakerSetting::Off),
            "adaptive" => Ok(BreakerSetting::Adaptive {
                cooldown_secs: None,
            }),
            other => match other.strip_prefix("adaptive:") {
                Some(secs) => match secs.parse::<i64>() {
                    Ok(s) if s > 0 => Ok(BreakerSetting::Adaptive {
                        cooldown_secs: Some(s),
                    }),
                    _ => Err(format!(
                        "bad breaker cooldown {secs:?} (want positive secs)"
                    )),
                },
                None => Err(format!(
                    "bad breaker {other:?} (off | adaptive | adaptive:SECS)"
                )),
            },
        })
        .collect()
}

/// Runs one cell to a campaign; `prefix` is the shared warm-start state
/// when the sweep runs warm, `cancel` the cell's cooperative token (the
/// production runner threads it into the simulation's tick loop; a
/// runner ignoring it merely opts out of deadlines). Injectable so
/// tests can make a specific cell panic and watch the fleet survive.
pub type CellRunner =
    dyn Fn(&GridCell, Option<&SharedPrefix>, &CancelToken) -> Result<Campaign, String> + Sync;

/// The production runner: cold cells run from t=0, warm cells fork the
/// shared prefix under the cell's (knob-applied) config — both
/// cancelable between event batches.
pub fn run_cell(
    cell: &GridCell,
    prefix: Option<&SharedPrefix>,
    cancel: &CancelToken,
) -> Result<Campaign, String> {
    match prefix {
        None => dmsa_scenario::run_cancelable(&cell.config, cancel),
        Some(p) => p.fork_cancelable(&cell.config, cancel),
    }
}

/// The canonical export name of a cell.
pub fn export_file_name(label: &str) -> String {
    format!("cell-{label}.json")
}

/// Run the fleet with the production cell runner.
pub fn run_sweep(grid: &SweepGrid, opts: &SweepOpts) -> Result<SweepOutcome, String> {
    run_sweep_with(grid, opts, &run_cell)
}

/// Best-effort journal append: the journal is a flight recorder, so a
/// failing append costs resume coverage, never the sweep.
fn jnote(r: Result<(), String>) {
    if let Err(e) = r {
        eprintln!("{e} (sweep continues; resume coverage reduced)");
    }
}

/// The checksum stamp of a written export, journaled so resume can
/// re-validate the artifact without trusting its bytes.
struct ExportStamp {
    name: String,
    crc: u32,
    len: u64,
}

/// One cell's end state plus its supervision history.
struct CellRun {
    result: Result<CellMetrics, String>,
    retries: u32,
    export: Option<ExportStamp>,
}

/// [`run_sweep`] with an injected cell runner (panic-isolation tests).
pub fn run_sweep_with(
    grid: &SweepGrid,
    opts: &SweepOpts,
    runner: &CellRunner,
) -> Result<SweepOutcome, String> {
    let cells = grid.expand()?;
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("creating {}: {e}", opts.out_dir.display()))?;
    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.jobs
    };
    let io = vfs::backend_for(opts.chaos.as_ref());
    let t0 = Instant::now();

    let header = journal::Header {
        grid_fingerprint: grid.fingerprint()?,
        n_cells: cells.len(),
        warm_start_at_ms: opts.warm_start_at.map(|at| at.as_millis()),
    };

    // Resume ladder: replay the journal, adopt cells whose completion
    // record still checks out against the artifact on disk, re-dispatch
    // everything else. Every rung degrades to "run it again" — resume
    // can reduce work, never correctness.
    let mut adopted: HashMap<usize, (CellOutcome, journal::Record)> = HashMap::new();
    if opts.resume {
        match journal::load(&opts.out_dir) {
            Ok(None) => eprintln!(
                "sweep resume: no journal in {}; starting cold",
                opts.out_dir.display()
            ),
            Err(e) => eprintln!("sweep resume: journal unreadable ({e}); starting cold"),
            Ok(Some(replay)) => {
                if replay.header != header {
                    eprintln!(
                        "sweep resume: journal belongs to a different sweep \
                         (grid fingerprint / cell count / warm-start mismatch); starting cold"
                    );
                } else {
                    if let Some(t) = &replay.torn_tail {
                        eprintln!(
                            "sweep resume: journal tail damaged ({t}); \
                             salvaging {} records",
                            replay.records.len()
                        );
                    }
                    // Last completion per label wins (a label completes
                    // at most once per journal generation anyway).
                    let mut completed: HashMap<&str, &journal::Record> = HashMap::new();
                    for rec in &replay.records {
                        if let journal::Record::Completed { label, .. } = rec {
                            completed.insert(label.as_str(), rec);
                        }
                    }
                    for (i, cell) in cells.iter().enumerate() {
                        if let Some(rec) = completed.get(cell.label.as_str()) {
                            match adopt_cell(cell, rec, opts) {
                                Ok(pair) => {
                                    adopted.insert(i, pair);
                                }
                                Err(why) => {
                                    eprintln!("sweep resume: re-dispatching {}: {why}", cell.label)
                                }
                            }
                        }
                    }
                    eprintln!(
                        "sweep resume: adopted {} of {} cells from the journal",
                        adopted.len(),
                        cells.len()
                    );
                }
            }
        }
    }

    // Fresh journal generation: header, then the adopted completions
    // re-emitted, so the file never accretes stale generations and a
    // second resume sees one coherent manifest.
    let jrnl = match SweepJournal::create(&opts.out_dir, &header) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("{e} (sweep continues without a journal; --resume will start cold)");
            None
        }
    };
    if let Some(j) = &jrnl {
        for i in 0..cells.len() {
            if let Some((_, rec)) = adopted.get(&i) {
                jnote(j.append(rec));
            }
        }
    }

    let todo: Vec<usize> = (0..cells.len())
        .filter(|i| !adopted.contains_key(i))
        .collect();

    // Shared prefixes, one per distinct base config (= per (preset,
    // seed) group) that still has work, computed across the same worker
    // pool. A panicking prefix poisons only its own group's cells.
    let mut prefixes: HashMap<u64, Result<SharedPrefix, String>> = HashMap::new();
    if let Some(at) = opts.warm_start_at {
        let divergence = SimTime::EPOCH + at;
        let mut groups: Vec<(u64, &GridCell)> = Vec::new();
        for &i in &todo {
            let cell = &cells[i];
            let key = cell.base.behavior_fingerprint();
            if !groups.iter().any(|(k, _)| *k == key) {
                groups.push((key, cell));
            }
        }
        let snaps = run_pool(groups.len(), jobs, opts.interrupt, |i| {
            catch_unwind(AssertUnwindSafe(|| {
                dmsa_scenario::shared_prefix(&groups[i].1.base, divergence)
            }))
            .map_err(|p| {
                format!(
                    "prefix for {} panicked: {}",
                    groups[i].1.label,
                    panic_msg(&*p)
                )
            })
        });
        for ((key, _), snap) in groups.into_iter().zip(snaps) {
            prefixes.insert(
                key,
                snap.unwrap_or_else(|| Err("interrupted before the shared prefix ran".into())),
            );
        }
    }

    let slots = run_pool(todo.len(), jobs, opts.interrupt, |k| {
        let cell = &cells[todo[k]];
        let cell_t0 = Instant::now();
        if let Some(j) = &jrnl {
            jnote(j.append(&journal::Record::Dispatched {
                label: cell.label.clone(),
            }));
        }
        let prefix =
            opts.warm_start_at
                .map(|_| match &prefixes[&cell.base.behavior_fingerprint()] {
                    Ok(p) => Ok(p),
                    Err(e) => Err(format!("shared prefix unavailable: {e}")),
                });
        let run = run_one(cell, prefix, runner, opts, &*io, jrnl.as_ref());
        if let Some(j) = &jrnl {
            let rec = match &run.result {
                Ok(m) => journal::Record::Completed {
                    label: cell.label.clone(),
                    export: run.export.as_ref().map(|s| s.name.clone()),
                    export_crc: run.export.as_ref().map_or(0, |s| s.crc),
                    export_len: run.export.as_ref().map_or(0, |s| s.len),
                    metrics: *m,
                    retries: run.retries,
                },
                Err(e) => journal::Record::Quarantined {
                    label: cell.label.clone(),
                    retries: run.retries,
                    reason: e.clone(),
                },
            };
            jnote(j.append(&rec));
        }
        CellOutcome {
            label: cell.label.clone(),
            seed: cell.seed,
            knobs: cell.knobs.clone(),
            warm_started: opts.warm_start_at.is_some(),
            wall_s: cell_t0.elapsed().as_secs_f64(),
            export_file: run.export.as_ref().map(|s| s.name.clone()),
            result: run.result,
            resumed: false,
            retries: run.retries,
        }
    });
    let mut ran: HashMap<usize, CellOutcome> = todo
        .iter()
        .zip(slots)
        .filter_map(|(&i, slot)| slot.map(|out| (i, out)))
        .collect();

    // Cells the pool never claimed (interrupt observed first) are
    // quarantined explicitly, not silently dropped: their rows appear in
    // the summary with an `interrupted` error, they count as failed, and
    // the exit code reports partial success.
    let outcomes: Vec<CellOutcome> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            if let Some((out, _)) = adopted.remove(&i) {
                return out;
            }
            if let Some(out) = ran.remove(&i) {
                return out;
            }
            let reason = "interrupted: cell never started".to_string();
            if let Some(j) = &jrnl {
                jnote(j.append(&journal::Record::Quarantined {
                    label: cell.label.clone(),
                    retries: 0,
                    reason: reason.clone(),
                }));
            }
            CellOutcome {
                label: cell.label.clone(),
                seed: cell.seed,
                knobs: cell.knobs.clone(),
                warm_started: opts.warm_start_at.is_some(),
                wall_s: 0.0,
                result: Err(reason),
                export_file: None,
                resumed: false,
                retries: 0,
            }
        })
        .collect();

    let ok: Vec<(Vec<(String, String)>, CellMetrics)> = outcomes
        .iter()
        .filter_map(|c| c.result.as_ref().ok().map(|m| (c.knobs.clone(), *m)))
        .collect();
    let outcome = SweepOutcome {
        rows: aggregate(&ok),
        cells: outcomes,
        wall_s: t0.elapsed().as_secs_f64(),
        jobs,
        warm_start_at: opts.warm_start_at,
        interrupted: opts.interrupt.is_some_and(|stop| stop()),
    };

    // The summary and ops sidecar are the drill's flight recorders, so
    // they deliberately bypass the chaos backend: a drill that could eat
    // its own report would be undebuggable. They still retry real
    // transient faults.
    let mut note = |line: String| eprintln!("{line}");
    for (file, content) in [
        ("sweep_summary.json", summary_json(&outcome)),
        ("sweep_ops.json", ops_json(&outcome)),
    ] {
        let path = opts.out_dir.join(file);
        vfs::with_retry(&opts.retry, &format!("{file} write"), &mut note, || {
            write_atomic_via(&RealBackend, &path, content.as_bytes()).map_err(|e| e.to_string())
        })
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(outcome)
}

/// Check one journaled completion against the artifact on disk: name,
/// length, CRC against the journaled stamp, then the [`crate::verify`]
/// content audit. Any mismatch re-dispatches the cell (the `Err` is the
/// operator-facing reason), it never fails the sweep.
fn adopt_cell(
    cell: &GridCell,
    rec: &journal::Record,
    opts: &SweepOpts,
) -> Result<(CellOutcome, journal::Record), String> {
    let journal::Record::Completed {
        export,
        export_crc,
        export_len,
        metrics,
        retries,
        ..
    } = rec
    else {
        return Err("not a completion record".into());
    };
    if opts.write_cell_exports {
        let name = export
            .as_deref()
            .ok_or("journal records no export but this sweep writes them")?;
        if name != export_file_name(&cell.label) {
            return Err(format!("journaled export name {name:?} is not the cell's"));
        }
        let path = opts.out_dir.join(name);
        let bytes = std::fs::read(&path).map_err(|e| format!("export {name} unreadable: {e}"))?;
        if bytes.len() as u64 != *export_len {
            return Err(format!(
                "export {name} is {} bytes, journal stamped {export_len}",
                bytes.len()
            ));
        }
        if crc32(&bytes) != *export_crc {
            return Err(format!("export {name} fails its journaled checksum"));
        }
        match verify::verify_file(&path) {
            FileVerdict::Ok {
                kind: "campaign", ..
            } => {}
            FileVerdict::Ok { kind, .. } => {
                return Err(format!("export audits as {kind}, not a campaign"))
            }
            FileVerdict::Corrupt { reason, .. } => {
                return Err(format!("export fails the content audit: {reason}"))
            }
            FileVerdict::Skipped { reason } => {
                return Err(format!("export not recognised by the auditor: {reason}"))
            }
        }
    } else if export.is_some() {
        return Err("journal records an export but this sweep is metrics-only".into());
    }
    Ok((
        CellOutcome {
            label: cell.label.clone(),
            seed: cell.seed,
            knobs: cell.knobs.clone(),
            warm_started: opts.warm_start_at.is_some(),
            wall_s: 0.0,
            result: Ok(*metrics),
            export_file: export.clone(),
            resumed: true,
            retries: *retries,
        },
        rec.clone(),
    ))
}

/// One cell under supervision: run attempts until success, a
/// non-transient failure, or the `--cell-retries` budget is spent.
/// Only `storage:`-classified failures are transient by definition —
/// the simulation itself is deterministic, so re-running a panic or a
/// timeout would reproduce it.
fn run_one(
    cell: &GridCell,
    prefix: Option<Result<&SharedPrefix, String>>,
    runner: &CellRunner,
    opts: &SweepOpts,
    io: &dyn IoBackend,
    jrnl: Option<&SweepJournal>,
) -> CellRun {
    let prefix = match prefix.transpose() {
        Ok(p) => p,
        Err(e) => {
            return CellRun {
                result: Err(e),
                retries: 0,
                export: None,
            }
        }
    };
    let mut retries = 0;
    loop {
        match attempt_cell(cell, prefix, runner, opts, io) {
            Ok((metrics, export)) => {
                return CellRun {
                    result: Ok(metrics),
                    retries,
                    export,
                }
            }
            Err(e) => {
                let transient = classify_failure(&e) == CellFailureClass::Storage;
                if !transient || retries >= opts.cell_retries {
                    return CellRun {
                        result: Err(e),
                        retries,
                        export: None,
                    };
                }
                retries += 1;
                if let Some(j) = jrnl {
                    jnote(j.append(&journal::Record::RetryScheduled {
                        label: cell.label.clone(),
                        attempt: retries,
                        reason: e,
                    }));
                }
                // Exponential backoff between whole-cell attempts; the
                // rerun is deterministic, so a healed retry's artifact is
                // byte-identical to a clean first attempt.
                let backoff = opts
                    .cell_backoff
                    .saturating_mul(1u32 << (retries - 1).min(20));
                std::thread::sleep(backoff);
            }
        }
    }
}

/// One attempt end-to-end: run (panics caught, cancelation classified),
/// metrics, and — unless the sweep is metrics-only — export + write. A
/// write that exhausts its retry budget fails the attempt with a
/// `storage:`-prefixed reason instead of taking down the fleet.
fn attempt_cell(
    cell: &GridCell,
    prefix: Option<&SharedPrefix>,
    runner: &CellRunner,
    opts: &SweepOpts,
    io: &dyn IoBackend,
) -> Result<(CellMetrics, Option<ExportStamp>), String> {
    let mut cancel = CancelToken::default();
    if let Some(stop) = opts.interrupt {
        cancel = cancel.with_probe(stop);
    }
    if let Some(t) = opts.cell_timeout {
        cancel = cancel.with_deadline(Instant::now() + t);
    }
    let campaign = catch_unwind(AssertUnwindSafe(|| runner(cell, prefix, &cancel)))
        .map_err(|p| format!("panicked: {}", panic_msg(&*p)))?
        .map_err(|e| classify_cancel(e, &cancel, opts))?;
    let metrics = cell_metrics(
        &campaign.store,
        campaign.window,
        campaign.path_stats,
        campaign.health.as_ref(),
    );
    let export = if opts.write_cell_exports {
        let export = CampaignExport::from_campaign(&campaign);
        let name = export_file_name(&cell.label);
        let path = opts.out_dir.join(&name);
        let bytes = export.to_json();
        let mut note = |line: String| eprintln!("{line}");
        vfs::with_retry(&opts.retry, "cell export write", &mut note, || {
            write_atomic_via(io, &path, bytes.as_bytes()).map_err(|e| e.to_string())
        })
        .map_err(|e| format!("storage: writing {}: {e}", path.display()))?;
        Some(ExportStamp {
            name,
            crc: crc32(bytes.as_bytes()),
            len: bytes.len() as u64,
        })
    } else {
        None
    };
    Ok((metrics, export))
}

/// A cooperative cancel aborts with a uniform `canceled:` error; the
/// supervisor — which knows why the token tripped — rewrites it into the
/// quarantine taxonomy: `timeout:` (this cell overran its deadline,
/// `--resume` re-dispatches it) or `interrupted:` (the whole fleet is
/// stopping).
fn classify_cancel(e: String, cancel: &CancelToken, opts: &SweepOpts) -> String {
    if !e.starts_with("canceled:") {
        return e;
    }
    if cancel.deadline_exceeded() {
        let secs = opts.cell_timeout.map_or(0.0, |t| t.as_secs_f64());
        format!("timeout: cell exceeded its {secs}s cooperative deadline ({e})")
    } else {
        format!("interrupted: cell aborted by termination request ({e})")
    }
}

/// Fixed-size worker pool over indices `0..n`: `jobs` threads pull the
/// next index from a shared counter. Results land in input order, so
/// downstream output is deterministic regardless of scheduling. `f`
/// must not panic (cell panics are caught inside it). `stop` is polled
/// before each claim; once it reports true, workers finish what they
/// hold and claim nothing more — unclaimed slots come back `None`.
fn run_pool<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    jobs: usize,
    stop: Option<fn() -> bool>,
    f: F,
) -> Vec<Option<T>> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.clamp(1, n.max(1)) {
            s.spawn(|| loop {
                if stop.is_some_and(|should_stop| should_stop()) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"))
        .collect()
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// A float for hand-rolled JSON: plain decimal, never `inf`/`NaN`
/// (non-finite values — which no guarded ratio should produce — render
/// as `null` rather than corrupting the document).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

fn summary_obj(s: &Summary) -> String {
    format!(
        "{{\"n\":{},\"mean\":{},\"sd\":{},\"p50\":{},\"p95\":{},\"ci95_lo\":{},\"ci95_hi\":{}}}",
        s.n,
        json_f64(s.mean),
        json_f64(s.sd),
        json_f64(s.p50),
        json_f64(s.p95),
        json_f64(s.ci95_lo),
        json_f64(s.ci95_hi),
    )
}

/// The machine-readable `sweep_summary.json`: stable key order, flat
/// enough to diff, floats guarded — and fully deterministic, so a
/// crashed-and-resumed sweep produces the byte-identical file an
/// uninterrupted sweep does. Timing and process shape live in
/// [`ops_json`]. Layout: `{schema, n_cells, n_failed, n_retried,
/// n_timed_out, degraded_storage, interrupted, warm_start_at_ms,
/// cells: [...], knob_rows: [...]}`.
pub fn summary_json(o: &SweepOutcome) -> String {
    let mut out = String::with_capacity(1024 + o.cells.len() * 256);
    out.push('{');
    let _ = write!(
        out,
        "\"schema\":{},\"n_cells\":{},\"n_failed\":{},\"n_retried\":{},\"n_timed_out\":{},\
         \"degraded_storage\":{},\"interrupted\":{}",
        json_str(SWEEP_SCHEMA),
        o.cells.len(),
        o.n_failed(),
        o.n_retried(),
        o.n_timed_out(),
        o.degraded_storage(),
        o.interrupted,
    );
    match o.warm_start_at {
        Some(at) => {
            let _ = write!(out, ",\"warm_start_at_ms\":{}", at.as_millis());
        }
        None => out.push_str(",\"warm_start_at_ms\":null"),
    }
    out.push_str(",\"cells\":[");
    for (i, c) in o.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{},\"seed\":{},\"warm_started\":{},\"retries\":{}",
            json_str(&c.label),
            c.seed,
            c.warm_started,
            c.retries
        );
        out.push_str(",\"knobs\":{");
        for (k, (axis, value)) in c.knobs.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(axis), json_str(value));
        }
        out.push('}');
        match &c.result {
            Ok(m) => {
                let _ = write!(
                    out,
                    ",\"ok\":true,\"error\":null,\"export\":{},\"exhausted\":{},\
                     \"failed_attempts\":{},\"delivered\":{},\"requests\":{},\
                     \"retry_delay_secs\":{},\"excluded_hours\":{},\"trips\":{},\
                     \"jobs\":{},\"transfers\":{}",
                    c.export_file
                        .as_deref()
                        .map_or_else(|| "null".into(), json_str),
                    m.exhausted,
                    m.failed_attempts,
                    m.delivered,
                    m.requests,
                    json_f64(m.retry_delay_secs),
                    json_f64(m.excluded_hours),
                    m.trips,
                    m.jobs,
                    m.transfers
                );
            }
            Err(e) => {
                let _ = write!(
                    out,
                    ",\"ok\":false,\"error\":{},\"export\":null",
                    json_str(e)
                );
            }
        }
        out.push('}');
    }
    out.push_str("],\"knob_rows\":[");
    for (i, r) in o.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"axis\":{},\"value\":{},\"n_cells\":{},\"exhausted\":{},\
             \"failed_attempts\":{},\"retry_delay_secs\":{},\"excluded_hours\":{}}}",
            json_str(&r.axis),
            json_str(&r.value),
            r.n_cells,
            summary_obj(&r.exhausted),
            summary_obj(&r.failed_attempts),
            summary_obj(&r.retry_delay_secs),
            summary_obj(&r.excluded_hours)
        );
    }
    out.push_str("]}");
    out
}

/// The `sweep_ops.json` sidecar: everything about *this process's* run
/// of the sweep — wall clocks, worker count, resume adoption — which
/// legitimately differs between byte-identical sweeps and therefore
/// must not live in the summary.
pub fn ops_json(o: &SweepOutcome) -> String {
    let mut out = String::with_capacity(256 + o.cells.len() * 64);
    out.push('{');
    let _ = write!(
        out,
        "\"schema\":{},\"jobs\":{},\"wall_s\":{},\"cells_per_s\":{},\
         \"n_resumed\":{},\"interrupted\":{}",
        json_str(OPS_SCHEMA),
        o.jobs,
        json_f64(o.wall_s),
        json_f64(o.cells_per_s()),
        o.n_resumed(),
        o.interrupted,
    );
    out.push_str(",\"cells\":[");
    for (i, c) in o.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{},\"wall_s\":{},\"resumed\":{},\"retries\":{}}}",
            json_str(&c.label),
            json_f64(c.wall_s),
            c.resumed,
            c.retries
        );
    }
    out.push_str("]}");
    out
}

/// The human report printed after a sweep.
pub fn human_report(o: &SweepOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} cells ({} failed) | {} workers | {:.2} s wall | {:.2} cells/s{}",
        o.cells.len(),
        o.n_failed(),
        o.jobs,
        o.wall_s,
        o.cells_per_s(),
        match o.warm_start_at {
            Some(at) => format!(" | warm-started at {} h", at.as_millis() / 3_600_000),
            None => " | cold".into(),
        }
    );
    if o.n_resumed() > 0 || o.n_retried() > 0 || o.n_timed_out() > 0 {
        let _ = writeln!(
            out,
            "  self-healing: {} adopted on resume | {} healed by retry | {} timed out",
            o.n_resumed(),
            o.n_retried(),
            o.n_timed_out()
        );
    }
    if o.interrupted {
        let _ = writeln!(
            out,
            "  INTERRUPTED: fleet stopped early; summary is partial"
        );
    }
    for c in o.cells.iter().filter(|c| c.result.is_err()) {
        let why = c.result.as_ref().err().map(String::as_str).unwrap_or("");
        let _ = writeln!(out, "  FAILED {}: {}", c.label, why);
    }
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>5} {:>26} {:>22} {:>14}",
        "axis", "value", "cells", "exhausted mean [95% CI]", "retry delay s (p95)", "excl hours"
    );
    for r in &o.rows {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>5} {:>10.1} [{:>6.1},{:>6.1}] {:>14.0} ({:>5.0}) {:>14.2}",
            r.axis,
            r.value,
            r.n_cells,
            r.exhausted.mean,
            r.exhausted.ci95_lo,
            r.exhausted.ci95_hi,
            r.retry_delay_secs.mean,
            r.retry_delay_secs.p95,
            r.excluded_hours.mean
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use dmsa_scenario::{BreakerSetting, PresetAxis, ScenarioConfig};

    fn tiny_preset() -> ScenarioConfig {
        let mut c = ScenarioConfig::small_faulty();
        c.duration = SimDuration::from_hours(6);
        c.workload.tasks_per_hour = 10.0;
        c.initial_datasets = 20;
        c.background_transfers_per_hour = 50.0;
        c
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            presets: vec![PresetAxis {
                name: "faulty".into(),
                base: tiny_preset(),
            }],
            seeds: vec![1, 2],
            fail_probs: vec![0.05, 0.2],
            breakers: vec![
                BreakerSetting::Off,
                BreakerSetting::Adaptive {
                    cooldown_secs: None,
                },
            ],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dmsa-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn axis_flag_parsing() {
        assert_eq!(parse_seeds("1, 7,42").unwrap(), vec![1, 7, 42]);
        assert!(parse_seeds("1,x").is_err());
        assert_eq!(parse_fail_probs("0.05,0.2").unwrap(), vec![0.05, 0.2]);
        assert!(parse_fail_probs("1.5").is_err());
        assert_eq!(
            parse_breakers("off,adaptive,adaptive:600").unwrap(),
            vec![
                BreakerSetting::Off,
                BreakerSetting::Adaptive {
                    cooldown_secs: None
                },
                BreakerSetting::Adaptive {
                    cooldown_secs: Some(600)
                },
            ]
        );
        assert!(parse_breakers("on").is_err());
        assert!(parse_breakers("adaptive:-5").is_err());
        // Blank lists mean "axis absent".
        assert!(parse_fail_probs("").unwrap().is_empty());
    }

    #[test]
    fn safe_ratio_never_produces_non_finite() {
        assert!(safe_ratio(5.0, 0.0).is_finite());
        assert!(safe_ratio(0.0, 0.0).is_finite());
        assert_eq!(safe_ratio(10.0, 2.0), 5.0);
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn cold_sweep_cells_are_byte_identical_to_standalone_runs() {
        let dir = tmp_dir("cold");
        let grid = tiny_grid();
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 2,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.cells.len(), 8);
        assert_eq!(outcome.n_failed(), 0);
        for cell in grid.expand().unwrap() {
            let standalone =
                CampaignExport::from_campaign(&dmsa_scenario::run(&cell.config)).to_json();
            let from_sweep =
                std::fs::read_to_string(dir.join(export_file_name(&cell.label))).unwrap();
            assert_eq!(from_sweep, standalone, "cell {} diverged", cell.label);
        }
        // The journal manifest records every completion.
        let replay = journal::load(&dir).unwrap().expect("sweep journals");
        let completions = replay
            .records
            .iter()
            .filter(|r| matches!(r, journal::Record::Completed { .. }))
            .count();
        assert_eq!(completions, 8);
        assert!(replay.torn_tail.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_sweep_cells_are_byte_identical_to_standalone_forked_runs() {
        let dir = tmp_dir("warm");
        let grid = tiny_grid();
        let at = SimDuration::from_hours(4);
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 2,
                warm_start_at: Some(at),
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.n_failed(), 0, "{:?}", outcome.cells);
        assert!(outcome.cells.iter().all(|c| c.warm_started));
        for cell in grid.expand().unwrap() {
            let standalone = CampaignExport::from_campaign(
                &dmsa_scenario::run_forked(&cell.base, &cell.config, SimTime::EPOCH + at).unwrap(),
            )
            .to_json();
            let from_sweep =
                std::fs::read_to_string(dir.join(export_file_name(&cell.label))).unwrap();
            assert_eq!(from_sweep, standalone, "warm cell {} diverged", cell.label);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_panicking_cell_is_quarantined_and_the_fleet_completes() {
        let dir = tmp_dir("panic");
        let grid = tiny_grid();
        let victim = "faulty-s2-fp0.2-brkoff";
        let runner = move |cell: &GridCell, prefix: Option<&SharedPrefix>, cancel: &CancelToken| {
            if cell.label == victim {
                panic!("injected failure for {}", cell.label);
            }
            run_cell(cell, prefix, cancel)
        };
        let outcome = run_sweep_with(
            &grid,
            &SweepOpts {
                jobs: 2,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
            &runner,
        )
        .unwrap();
        assert_eq!(outcome.cells.len(), 8);
        assert_eq!(outcome.n_failed(), 1);
        let failed = outcome.cells.iter().find(|c| c.result.is_err()).unwrap();
        assert_eq!(failed.label, victim);
        let why = failed.result.as_ref().err().unwrap();
        assert!(why.starts_with("panicked:"), "{why}");
        assert!(why.contains("injected failure"), "{why}");
        assert!(failed.export_file.is_none());
        assert!(!dir.join(export_file_name(victim)).exists());
        // The other 7 cells all delivered exports and metrics.
        assert_eq!(outcome.cells.iter().filter(|c| c.result.is_ok()).count(), 7);
        // The summary is still valid JSON and marks the failure.
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).expect("summary parses");
        assert_eq!(root.get("n_failed").and_then(|v| v.as_u64()), Some(1));
        // The journal quarantined the victim with the panic taxonomy.
        let replay = journal::load(&dir).unwrap().unwrap();
        assert!(replay.records.iter().any(|r| matches!(
            r,
            journal::Record::Quarantined { label, reason, .. }
                if label == victim && reason.starts_with("panicked:")
        )));
        // Aggregation rows cover only the survivors.
        let seed2_off: Vec<&KnobGroup> = outcome
            .rows
            .iter()
            .filter(|r| r.axis == "seed" && r.value == "2")
            .collect();
        assert_eq!(seed2_off[0].n_cells, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupt_quarantines_unstarted_cells_but_still_writes_the_summary() {
        use std::sync::atomic::AtomicBool;
        static STOP: AtomicBool = AtomicBool::new(false);
        STOP.store(false, Ordering::Relaxed);

        let dir = tmp_dir("interrupt");
        let grid = tiny_grid();
        // The first dispatched cell raises the "signal"; with one worker,
        // every later cell observes it before being claimed.
        let runner = |cell: &GridCell, prefix: Option<&SharedPrefix>, cancel: &CancelToken| {
            STOP.store(true, Ordering::Relaxed);
            // This runner ignores the probe on purpose (the production
            // runner would abort mid-cell): the test pins the dispatch-
            // level interrupt path specifically.
            let _ = cancel;
            run_cell(cell, prefix, &CancelToken::default())
        };
        let outcome = run_sweep_with(
            &grid,
            &SweepOpts {
                jobs: 1,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: false,
                interrupt: Some(|| STOP.load(Ordering::Relaxed)),
                ..SweepOpts::default()
            },
            &runner,
        )
        .unwrap();

        assert!(outcome.interrupted);
        assert_eq!(outcome.cells.len(), 8, "every cell gets a row");
        // The in-flight cell finished; the rest were quarantined as
        // never-started rather than silently dropped.
        assert_eq!(outcome.cells.iter().filter(|c| c.result.is_ok()).count(), 1);
        let interrupted = outcome
            .cells
            .iter()
            .filter(|c| {
                c.result
                    .as_ref()
                    .err()
                    .is_some_and(|e| e.contains("interrupted"))
            })
            .count();
        assert_eq!(interrupted, 7);
        assert_eq!(outcome.n_failed(), 7, "partial success must exit 3");

        // The partial summary still lands, marked interrupted.
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).expect("partial summary parses");
        assert_eq!(
            root.get("interrupted").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(root.get("n_failed").and_then(|v| v.as_u64()), Some(7));
        assert!(human_report(&outcome).contains("INTERRUPTED"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_json_is_parseable_with_the_documented_schema() {
        let dir = tmp_dir("schema");
        let grid = SweepGrid {
            seeds: vec![1],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 1,
                warm_start_at: None,
                out_dir: dir.clone(),
                write_cell_exports: true,
                interrupt: None,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        let text = summary_json(&outcome);
        let root = json::parse(&text).expect("summary parses");
        assert_eq!(
            root.get("schema").and_then(|v| v.as_str()),
            Some(SWEEP_SCHEMA)
        );
        for key in ["n_cells", "n_failed", "n_retried", "n_timed_out"] {
            assert!(root.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
        }
        // Timing and process shape must NOT leak into the deterministic
        // summary — they live in the ops sidecar.
        for key in ["jobs", "wall_s", "cells_per_s"] {
            assert!(root.get(key).is_none(), "{key} belongs in sweep_ops.json");
        }
        let cells = root.get("cells").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(cells.len(), 1);
        for key in ["label", "ok", "exhausted", "knobs", "export", "retries"] {
            assert!(cells[0].get(key).is_some(), "cell lacks {key}");
        }
        let rows = root.get("knob_rows").and_then(|v| v.as_arr()).unwrap();
        assert!(!rows.is_empty());
        assert!(rows[0].get("exhausted").unwrap().get("ci95_lo").is_some());

        // The ops sidecar carries the process history.
        let ops_text = std::fs::read_to_string(dir.join("sweep_ops.json")).unwrap();
        let ops = json::parse(&ops_text).expect("ops parses");
        assert_eq!(ops.get("schema").and_then(|v| v.as_str()), Some(OPS_SCHEMA));
        for key in ["jobs", "n_resumed"] {
            assert!(ops.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
        }
        assert!(ops.get("wall_s").is_some());

        let report = human_report(&outcome);
        assert!(report.contains("cells/s"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_storage_failures_quarantine_cells_and_mark_the_summary() {
        let dir = tmp_dir("chaos");
        let grid = SweepGrid {
            seeds: vec![1, 2],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        // Every cell-export write attempt EIOs; the retry budget
        // exhausts, so every cell is quarantined with a structured
        // storage reason — but the fleet completes and the summary
        // (written outside the chaos backend) still lands.
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 2,
                out_dir: dir.clone(),
                chaos: Some(ChaosProfile {
                    seed: 11,
                    p_eio: 1.0,
                    ..ChaosProfile::default()
                }),
                retry: IoRetryPolicy::fast(),
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.cells.len(), 2);
        assert_eq!(outcome.n_failed(), 2);
        assert!(outcome.degraded_storage());
        for cell in &outcome.cells {
            let why = cell.result.as_ref().err().unwrap();
            assert!(why.starts_with("storage:"), "{why}");
            assert!(why.contains("EIO"), "{why}");
            assert!(cell.export_file.is_none());
        }
        // No torn/partial cell exports litter the output directory.
        assert!(!dir.join(export_file_name(&outcome.cells[0].label)).exists());
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).expect("summary parses");
        assert_eq!(
            root.get("degraded_storage").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(root.get("n_failed").and_then(|v| v.as_u64()), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inert_chaos_profile_leaves_the_sweep_byte_identical() {
        let dir_plain = tmp_dir("inert-plain");
        let dir_chaos = tmp_dir("inert-chaos");
        let grid = SweepGrid {
            seeds: vec![1],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        let run = |dir: &PathBuf, chaos: Option<ChaosProfile>| {
            run_sweep(
                &grid,
                &SweepOpts {
                    jobs: 1,
                    out_dir: dir.clone(),
                    chaos,
                    ..SweepOpts::default()
                },
            )
            .unwrap()
        };
        let plain = run(&dir_plain, None);
        let drilled = run(
            &dir_chaos,
            Some(ChaosProfile {
                seed: 99,
                ..ChaosProfile::default()
            }),
        );
        assert_eq!(plain.n_failed(), 0);
        assert_eq!(drilled.n_failed(), 0);
        assert!(!drilled.degraded_storage());
        let name = export_file_name(&plain.cells[0].label);
        assert_eq!(
            std::fs::read(dir_plain.join(&name)).unwrap(),
            std::fs::read(dir_chaos.join(&name)).unwrap(),
            "an inert drill must not perturb artifacts"
        );
        // The deterministic summary is byte-identical too.
        assert_eq!(
            std::fs::read(dir_plain.join("sweep_summary.json")).unwrap(),
            std::fs::read(dir_chaos.join("sweep_summary.json")).unwrap(),
            "summary v2 must not depend on timing or chaos wiring"
        );
        std::fs::remove_dir_all(&dir_plain).unwrap();
        std::fs::remove_dir_all(&dir_chaos).unwrap();
    }

    /// Satellite: the chaos self-healing drill. Under a transient EIO
    /// profile a cell quarantines at `--cell-retries 0`, heals at
    /// `--cell-retries 2`, and the healed artifact is byte-identical to
    /// its fault-free counterpart.
    #[test]
    fn transient_storage_fault_heals_on_cell_retry_byte_identically() {
        let grid = SweepGrid {
            seeds: vec![1],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
            ..tiny_grid()
        };
        // Fault-free reference artifacts.
        let dir_ref = tmp_dir("heal-ref");
        let base = SweepOpts {
            jobs: 1,
            out_dir: dir_ref.clone(),
            // One write attempt per cell attempt: the inner I/O ladder is
            // disabled so healing is attributable to the cell-level retry.
            retry: IoRetryPolicy {
                attempts: 1,
                ..IoRetryPolicy::fast()
            },
            cell_backoff: Duration::from_millis(1),
            ..SweepOpts::default()
        };
        let reference = run_sweep(&grid, &base).unwrap();
        assert_eq!(reference.n_failed(), 0);
        let name = export_file_name(&reference.cells[0].label);
        let ref_bytes = std::fs::read(dir_ref.join(&name)).unwrap();

        // Find a chaos seed whose first export write EIOs but which a
        // retried attempt survives — deterministic given the profile, so
        // the scan itself is deterministic.
        let mut healed = false;
        for seed in 0..64u64 {
            let profile = ChaosProfile {
                seed,
                p_eio: 0.5,
                ..ChaosProfile::default()
            };
            let dir_q = tmp_dir("heal-quarantine");
            let quarantined = run_sweep(
                &grid,
                &SweepOpts {
                    out_dir: dir_q.clone(),
                    chaos: Some(profile),
                    ..base.clone()
                },
            )
            .unwrap();
            let first_attempt_fails = quarantined.degraded_storage();
            std::fs::remove_dir_all(&dir_q).unwrap();
            if !first_attempt_fails {
                continue;
            }
            let dir_h = tmp_dir("heal-retry");
            let retried = run_sweep(
                &grid,
                &SweepOpts {
                    out_dir: dir_h.clone(),
                    chaos: Some(profile),
                    cell_retries: 2,
                    ..base.clone()
                },
            )
            .unwrap();
            if retried.n_failed() != 0 {
                std::fs::remove_dir_all(&dir_h).unwrap();
                continue;
            }
            // Converged to zero storage quarantines, via ≥1 retry…
            assert!(retried.n_retried() >= 1, "healing must consume a retry");
            // …and the healed export is byte-identical to fault-free.
            assert_eq!(
                std::fs::read(dir_h.join(&name)).unwrap(),
                ref_bytes,
                "a retried cell must reproduce the clean artifact exactly"
            );
            // The journal shows the supervision history: a scheduled
            // retry, then a completion carrying the retry count.
            let replay = journal::load(&dir_h).unwrap().unwrap();
            assert!(replay.records.iter().any(|r| matches!(
                r,
                journal::Record::RetryScheduled { reason, .. }
                    if reason.starts_with("storage:")
            )));
            assert!(replay.records.iter().any(|r| matches!(
                r,
                journal::Record::Completed { retries, .. } if *retries > 0
            )));
            std::fs::remove_dir_all(&dir_h).unwrap();
            healed = true;
            break;
        }
        assert!(healed, "no chaos seed in 0..64 exercised the heal path");
        std::fs::remove_dir_all(&dir_ref).unwrap();
    }

    /// A deliberately hung cell trips its cooperative deadline, is
    /// quarantined as `timeout:`, and the fleet neither wedges nor loses
    /// its partial summary.
    #[test]
    fn hung_cell_is_contained_by_the_cooperative_deadline() {
        let dir = tmp_dir("timeout");
        // One enormous cell: at tiny-preset event rates a 20-year run
        // takes far longer than the 50 ms deadline, so only cooperative
        // cancelation can end it.
        let mut huge = tiny_preset();
        huge.duration = SimDuration::from_hours(24 * 365 * 20);
        let grid = SweepGrid {
            presets: vec![PresetAxis {
                name: "huge".into(),
                base: huge,
            }],
            seeds: vec![1],
            fail_probs: vec![0.05],
            breakers: vec![BreakerSetting::Off],
        };
        let t0 = Instant::now();
        let outcome = run_sweep(
            &grid,
            &SweepOpts {
                jobs: 1,
                out_dir: dir.clone(),
                cell_timeout: Some(Duration::from_millis(50)),
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "deadline must abort the cell promptly, not wedge the fleet"
        );
        assert_eq!(outcome.n_failed(), 1);
        assert_eq!(outcome.n_timed_out(), 1);
        let why = outcome.cells[0].result.as_ref().err().unwrap();
        assert!(why.starts_with("timeout:"), "{why}");
        assert!(why.contains("canceled:"), "cancel detail preserved: {why}");
        // Partial summary still written, journal records the quarantine.
        let summary = std::fs::read_to_string(dir.join("sweep_summary.json")).unwrap();
        let root = json::parse(&summary).unwrap();
        assert_eq!(root.get("n_timed_out").and_then(|v| v.as_u64()), Some(1));
        let replay = journal::load(&dir).unwrap().unwrap();
        assert!(replay.records.iter().any(|r| matches!(
            r,
            journal::Record::Quarantined { reason, .. } if reason.starts_with("timeout:")
        )));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
