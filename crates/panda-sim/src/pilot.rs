//! The Harvester/pilot layer (paper §2.1).
//!
//! "At each site, PanDA interacts with the Harvester service, which
//! orchestrates execution by deploying lightweight Pilot jobs to worker
//! nodes. Pilots provision the execution environment, validate resources,
//! and then request a payload job from the dispatcher, thereby shielding
//! workload jobs from grid heterogeneity."
//!
//! The model captures the pieces that matter for timeline/failure realism:
//!
//! * **dispatch latency** — pilot submission + environment provisioning +
//!   resource validation, log-normal around ~½ minute, before staging can
//!   begin (this is the queue-time floor visible in every matched job);
//! * **validation failures** — a small fraction of pilots land on broken
//!   worker nodes; the payload is re-dispatched after a backoff, adding a
//!   visible queue-time spike;
//! * **lost heartbeats** — a running payload whose pilot stops
//!   heartbeating is declared failed partway through its walltime (PanDA
//!   error "lost heartbeat"), an error class unrelated to staging that
//!   keeps the Fig 9 `Low`-staging band's failure population realistic.

use dmsa_simcore::SimRng;
use rand::RngExt;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Lost-heartbeat PanDA error code.
pub const LOST_HEARTBEAT: u32 = 1361;

/// Pilot-layer parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PilotParams {
    /// Median provisioning+validation latency in seconds.
    pub median_dispatch_secs: f64,
    /// Log-normal sigma of the dispatch latency.
    pub dispatch_sigma: f64,
    /// Probability a pilot fails validation and the payload must be
    /// re-dispatched.
    pub p_validation_failure: f64,
    /// Backoff before re-dispatch, seconds (fixed; retries draw a fresh
    /// dispatch latency on top).
    pub retry_backoff_secs: f64,
    /// Maximum validation retries before the job is failed outright.
    pub max_retries: u32,
    /// Probability per *hour of walltime* that the pilot's heartbeat is
    /// lost mid-execution.
    pub heartbeat_loss_per_hour: f64,
}

impl Default for PilotParams {
    fn default() -> Self {
        PilotParams {
            median_dispatch_secs: 35.0,
            dispatch_sigma: 0.6,
            p_validation_failure: 0.03,
            retry_backoff_secs: 120.0,
            max_retries: 3,
            heartbeat_loss_per_hour: 0.002,
        }
    }
}

/// Outcome of the dispatch phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DispatchOutcome {
    /// Pilot validated; staging may begin after `delay_secs`.
    Ready {
        /// Total seconds from job creation to a validated pilot.
        delay_secs: f64,
        /// Validation retries that were needed.
        retries: u32,
    },
    /// Every retry failed validation; the job fails without running.
    ExhaustedRetries {
        /// Seconds burned across all attempts.
        delay_secs: f64,
    },
}

/// Outcome of the execution phase's heartbeat watch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeartbeatOutcome {
    /// Pilot heartbeat healthy for the whole walltime.
    Healthy,
    /// Heartbeat lost at this fraction of the walltime; the job is failed
    /// there with [`LOST_HEARTBEAT`].
    LostAtFraction(f64),
}

/// The pilot model: samplers for dispatch and heartbeat processes.
#[derive(Clone, Debug)]
pub struct PilotModel {
    params: PilotParams,
    dispatch: LogNormal<f64>,
}

impl PilotModel {
    /// Build from parameters.
    pub fn new(params: PilotParams) -> Self {
        let dispatch = LogNormal::new(params.median_dispatch_secs.ln(), params.dispatch_sigma)
            .expect("valid log-normal parameters");
        PilotModel { params, dispatch }
    }

    /// Parameters in effect.
    pub fn params(&self) -> &PilotParams {
        &self.params
    }

    /// Sample the dispatch phase: provisioning, validation, retries.
    pub fn sample_dispatch(&self, rng: &mut SimRng) -> DispatchOutcome {
        let mut total = 0.0;
        for attempt in 0..=self.params.max_retries {
            total += self.dispatch.sample(rng).clamp(5.0, 3_600.0);
            if rng.random::<f64>() >= self.params.p_validation_failure {
                return DispatchOutcome::Ready {
                    delay_secs: total,
                    retries: attempt,
                };
            }
            total += self.params.retry_backoff_secs;
        }
        DispatchOutcome::ExhaustedRetries { delay_secs: total }
    }

    /// Sample the heartbeat watch for a payload with `walltime_secs`.
    pub fn sample_heartbeat(&self, walltime_secs: f64, rng: &mut SimRng) -> HeartbeatOutcome {
        let hours = walltime_secs / 3_600.0;
        let p_loss = 1.0 - (-self.params.heartbeat_loss_per_hour * hours).exp();
        if rng.random::<f64>() < p_loss {
            HeartbeatOutcome::LostAtFraction(0.05 + 0.9 * rng.random::<f64>())
        } else {
            HeartbeatOutcome::Healthy
        }
    }
}

impl Default for PilotModel {
    fn default() -> Self {
        PilotModel::new(PilotParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_simcore::RngFactory;

    fn rng(seed: u64) -> SimRng {
        RngFactory::new(seed).stream("pilot-test")
    }

    #[test]
    fn dispatch_latency_is_bounded_and_positive() {
        let m = PilotModel::default();
        let mut r = rng(1);
        for _ in 0..2_000 {
            match m.sample_dispatch(&mut r) {
                DispatchOutcome::Ready {
                    delay_secs,
                    retries,
                } => {
                    assert!(delay_secs >= 5.0);
                    assert!(retries <= m.params().max_retries);
                }
                DispatchOutcome::ExhaustedRetries { delay_secs } => {
                    assert!(delay_secs > m.params().retry_backoff_secs);
                }
            }
        }
    }

    #[test]
    fn validation_failures_occur_at_configured_rate() {
        let m = PilotModel::new(PilotParams {
            p_validation_failure: 0.5,
            ..Default::default()
        });
        let mut r = rng(2);
        let retried = (0..5_000)
            .filter(|_| {
                matches!(
                    m.sample_dispatch(&mut r),
                    DispatchOutcome::Ready { retries, .. } if retries > 0
                ) || matches!(
                    m.sample_dispatch(&mut r),
                    DispatchOutcome::ExhaustedRetries { .. }
                )
            })
            .count();
        assert!(retried > 1_000, "retry rate implausibly low: {retried}");
    }

    #[test]
    fn zero_failure_probability_never_retries() {
        let m = PilotModel::new(PilotParams {
            p_validation_failure: 0.0,
            ..Default::default()
        });
        let mut r = rng(3);
        for _ in 0..500 {
            match m.sample_dispatch(&mut r) {
                DispatchOutcome::Ready { retries, .. } => assert_eq!(retries, 0),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn heartbeat_loss_scales_with_walltime() {
        let m = PilotModel::new(PilotParams {
            heartbeat_loss_per_hour: 0.05,
            ..Default::default()
        });
        let mut r = rng(4);
        let losses = |wall: f64, r: &mut SimRng| {
            (0..4_000)
                .filter(|_| m.sample_heartbeat(wall, r) != HeartbeatOutcome::Healthy)
                .count()
        };
        let short = losses(600.0, &mut r);
        let long = losses(24.0 * 3_600.0, &mut r);
        assert!(
            long > short * 5,
            "day-long jobs should lose heartbeats far more often: {short} vs {long}"
        );
    }

    #[test]
    fn lost_heartbeat_fraction_is_interior() {
        let m = PilotModel::new(PilotParams {
            heartbeat_loss_per_hour: 1.0,
            ..Default::default()
        });
        let mut r = rng(5);
        for _ in 0..500 {
            if let HeartbeatOutcome::LostAtFraction(f) = m.sample_heartbeat(36_000.0, &mut r) {
                assert!((0.05..=0.95).contains(&f));
            }
        }
    }
}
