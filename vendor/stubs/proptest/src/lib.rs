//! Offline mini-proptest: deterministic random testing without shrinking.
//!
//! Implements the strategy combinators the dmsa test-suites use with real
//! sampling (a per-test deterministic RNG), so property bodies actually
//! execute offline; only shrinking and persistence are missing. Code
//! written against this stub is a strict subset of the real proptest API.

pub mod test_runner {
    /// Configuration (subset): number of cases per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG (SplitMix64) seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn uniform_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (no shrinking in the stub).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty strategy range");
                    let span = (b as i128 - a as i128) as u64 as u128 + 1;
                    (a as i128 + (((rng.next_u64() as u128) * span) >> 64) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.uniform_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    );


    /// String strategies from simple regexes, as in real proptest. The
    /// stub supports the subset `[class]{m,n}` (with `a-z` ranges and
    /// literal chars) plus plain literals; enough for the dmsa suites.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let s = *self;
            let bytes = s.as_bytes();
            if !(bytes.first() == Some(&b'[')) {
                return s.to_string();
            }
            let close = s.find(']').expect("unterminated char class in stub regex");
            let class = &bytes[1..close];
            let mut alphabet: Vec<u8> = Vec::new();
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == b'-' {
                    for c in class[i]..=class[i + 2] {
                        alphabet.push(c);
                    }
                    i += 3;
                } else {
                    alphabet.push(class[i]);
                    i += 1;
                }
            }
            let rest = &s[close + 1..];
            let (lo, hi) = if rest.is_empty() {
                (1usize, 1usize)
            } else {
                let inner = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .expect("stub regex supports only [class]{m,n}");
                match inner.split_once(',') {
                    Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                    None => {
                        let n: usize = inner.parse().unwrap();
                        (n, n)
                    }
                }
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize] as char)
                .collect()
        }
    }

    /// Helper for `prop_oneof!`: erase a strategy's type.
    pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice among same-valued strategies (from `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty());
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy (subset).
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — vectors with length drawn from the range.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Weighted(pub f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.uniform_f64() < self.0
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_strategy($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} == {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = __result {
                        panic!("proptest case {} failed: {}", __case, msg);
                    }
                }
            }
        )*
    };
}
