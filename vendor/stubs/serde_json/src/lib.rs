//! Offline stub for `serde_json`: `to_string` yields a fixed placeholder,
//! `from_str` always errors. Tests that round-trip JSON through serde are
//! expected to fail offline (documented in the verify skill); they pass in
//! a networked environment with the real crate.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{\"stub\":true}".to_string())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error("deserialization unavailable offline".to_string()))
}
