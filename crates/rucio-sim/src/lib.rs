//! # dmsa-rucio-sim
//!
//! A Rucio-style distributed data-management substrate (paper §2.2).
//!
//! Rucio's concepts are reproduced faithfully at the granularity the paper's
//! matching algorithm needs:
//!
//! * a three-tier **DID namespace** — files grouped into datasets, datasets
//!   into containers ([`did`], [`catalog`]);
//! * **replicas**: physical copies of a file at Rucio Storage Elements,
//!   tracked by the [`catalog::ReplicaCatalog`];
//! * **replication rules** that pin N copies of a DID on a set of RSEs and
//!   trigger transfers of missing replicas ([`rules`]);
//! * an **FTS-like transfer engine** ([`transfer`]) with per-site stream
//!   limits (some sites serialize transfers — the paper's Fig 10
//!   pathology), replica selection by current effective throughput, and
//!   per-transfer event emission carrying exactly the metadata fields
//!   Algorithm 1 joins on (`lfn`, `dataset`, `proddblock`, `scope`,
//!   `file_size`, sites, times, activity);
//! * the catalog **growth model** ([`growth`]) reproducing Fig 2's
//!   cumulative managed volume approaching 1 EB by mid-2024.
//!
//! Every emitted [`transfer::TransferEvent`] also records its *ground-truth
//! cause* (the PanDA job that triggered it, if any). Downstream, the
//! metadata corruption layer hides that linkage from the matcher — exactly
//! the situation the paper confronts — while the evaluator uses it to score
//! precision/recall of the exact/RM1/RM2 strategies.

pub mod activity;
pub mod catalog;
pub mod deletion;
pub mod did;
pub mod growth;
pub mod rules;
pub mod transfer;

pub use activity::Activity;
pub use catalog::{ContainerId, DatasetId, FileId, ReplicaCatalog};
pub use deletion::{reap_all, reap_rse, Deletion, ReaperPolicy};
pub use did::{DidName, Scope};
pub use rules::{ReplicationRule, RuleEngine, RuleId};
pub use transfer::{
    RetryPolicy, TransferEngine, TransferEngineSnapshot, TransferEvent, TransferId,
    TransferOutcome, TransferPathStats, TransferRequest, TransferStatus,
};
