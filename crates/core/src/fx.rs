//! FxHash — re-exported from [`dmsa_simcore::fx`].
//!
//! The implementation moved to `dmsa-simcore` (the root of the crate
//! graph) so the interning table can share it; this alias keeps the
//! matcher's original `dmsa_core::fx` paths working.

pub use dmsa_simcore::fx::*;
