//! # dmsa-panda-sim
//!
//! A PanDA-style workload-management substrate (paper §2.1).
//!
//! PanDA's architecture — a central server receiving user tasks, a global
//! job queue, a **brokerage** module assigning jobs to sites "based on many
//! criteria such as job type, priority, input data location, and site
//! availability", and per-site Harvester/pilot execution — is modelled at
//! the granularity the paper's analysis needs:
//!
//! * [`task`] — JEDI tasks (`jeditaskid`) owning input/output datasets and
//!   fanning out into jobs (`pandaid`);
//! * [`job`] — the job lifecycle and the exact metadata fields Algorithm 1
//!   reads (`computingsite`, `creationtime`/`starttime`/`endtime`,
//!   `ninputfilebytes`/`noutputfilebytes`, statuses, error codes);
//! * [`broker`] — the data-locality heuristic ("assign computing jobs to
//!   the site that already hosts the required input data", §3.1) with a
//!   load-aware escape hatch that occasionally sends jobs remote;
//! * [`models`] — calibrated stochastic models for task shapes, file sizes,
//!   walltimes, I/O modes, and the failure process whose coupling to
//!   staging delay produces the paper's Fig 9 correlation between high
//!   transfer-time percentages and elevated error rates.
//!
//! The actual event loop lives in `dmsa-scenario`, which wires this crate's
//! state machines to the Rucio substrate's transfer engine.

pub mod broker;
pub mod job;
pub mod models;
pub mod pilot;
pub mod task;
pub mod types;

pub use broker::{Broker, BrokerConfig, SiteLoadView};
pub use job::{Job, JobOutcome};
pub use models::{FailureModel, WorkloadModel, WorkloadParams};
pub use pilot::{DispatchOutcome, HeartbeatOutcome, PilotModel, PilotParams};
pub use task::JediTask;
pub use types::{IoMode, JobId, JobStatus, TaskId, TaskKind, TaskStatus};
