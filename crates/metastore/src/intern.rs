//! String interning — re-exported from [`dmsa_simcore::intern`].
//!
//! The table moved to `dmsa-simcore` so the Rucio-layer replica catalog
//! can intern LFN/dataset names with the same `Sym` type the metadata
//! store uses (letting the campaign driver pass symbols end-to-end
//! instead of cloning strings per record). This alias keeps the original
//! `dmsa_metastore::{Sym, SymbolTable}` paths working.

pub use dmsa_simcore::intern::{Sym, SymbolTable};
