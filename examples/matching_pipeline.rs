//! Build a *custom* scenario, sweep the metadata-corruption level, and
//! watch what each matching strategy recovers — the experiment §5.5 of the
//! paper wishes it could run ("any future systematic and scalable analysis
//! designs ... will be especially valuable once data quality improves").
//!
//! ```text
//! cargo run --release --example matching_pipeline
//! ```

use dmsa::prelude::*;
use dmsa_core::matcher::Matcher;

fn main() {
    println!(
        "{:<12} {:>8} {:>16} {:>14} {:>11} {:>9}",
        "corruption", "method", "matched transfers", "matched jobs", "precision", "recall"
    );
    for k in [0.0, 0.5, 1.0, 1.5] {
        // One campaign per corruption level; everything else fixed.
        let base = ScenarioConfig::paper_8day(0.02);
        let config = ScenarioConfig {
            corruption: base.corruption.scaled(k),
            ..base
        };
        let campaign = dmsa_scenario::run(&config);
        let (_, _, _, with_tid) = campaign.store.counts();
        for method in MatchMethod::ALL {
            let set = ParallelMatcher.match_jobs(&campaign.store, campaign.window, method);
            let eval = evaluate(&campaign.store, &set, campaign.window);
            println!(
                "{:<12} {:>8} {:>9} ({:>5.2}%) {:>14} {:>11.3} {:>9.3}",
                format!("{k:.1}x"),
                method.label(),
                set.n_matched_transfers(),
                100.0 * set.n_matched_transfers() as f64 / with_tid.max(1) as f64,
                set.n_matched_jobs(),
                eval.transfer_precision(),
                eval.transfer_recall(),
            );
        }
        println!();
    }
    println!("At 0x corruption the matcher recovers every recorded job-driven transfer");
    println!("(recall < 1 only because most grid traffic never records a job linkage);");
    println!("as corruption grows, exact matching collapses first, RM1/RM2 degrade");
    println!("gracefully — the quantitative version of the paper's §4.3 argument.");
}
