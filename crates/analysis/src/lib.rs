//! # dmsa-analysis
//!
//! Analyses over the metadata store and matched job–transfer pairs. Each
//! module regenerates one of the paper's tables or figures:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`matrix`] | Fig 3 — site×site transfer-volume matrix and its imbalance statistics |
//! | [`activity`] | Table 1 — matched-transfer breakdown by activity |
//! | [`overlap`] | §5.1 — transfer-time-in-queue percentages (mean / geometric mean) |
//! | [`topjobs`] | Fig 5 / Fig 6 — top-N queuing-time breakdowns, local vs remote |
//! | [`bandwidth`] | Fig 7 / Fig 8 — accumulated bandwidth-usage time series per site pair |
//! | [`threshold`] | Fig 9 — job counts by (job, task) status vs transfer-time threshold |
//! | [`cases`] | Figs 10–12 / Table 3 — case-study timelines and anomaly detectors |
//! | [`growth`] | Fig 2 — cumulative managed-volume series |
//! | [`temporal`] | §3.2's temporal imbalance — volume series, peak/trough, site Gini |
//! | [`errors`] | §1/§3.1's "altered error distributions" — codes × staging bands |
//! | [`hotspots`] | §5.3's site-level queueing hot spots — per-site queue stats and imbalance |
//! | [`redundancy`] | Fig 12 / Table 3 — duplicate deliveries attributed retry- vs reaper-induced |
//! | [`exclusion`] | adaptive-exclusion accounting — breaker trips, excluded hours, avoided failures |
//!
//! All analyses read only the (corrupted) [`dmsa_metastore::MetaStore`] and
//! [`dmsa_core::MatchSet`]s — never simulator ground truth — exactly as the
//! paper's analyses read only production telemetry.

pub mod activity;
pub mod bandwidth;
pub mod cases;
pub mod errors;
pub mod exclusion;
pub mod growth;
pub mod hotspots;
pub mod matrix;
pub mod overlap;
pub mod redundancy;
pub mod render;
pub mod sweep;
pub mod temporal;
pub mod threshold;
pub mod topjobs;

pub use matrix::TransferMatrix;
pub use overlap::JobTransferOverlap;
