//! Match results and their classification.

use crate::method::MatchMethod;
use dmsa_metastore::MetaStore;
use serde::{Deserialize, Serialize};

/// One matched job with its associated transfer events.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchedJob {
    /// Index into `store.jobs`.
    pub job_idx: u32,
    /// Indices into `store.transfers`, sorted ascending. Never empty.
    pub transfers: Vec<u32>,
}

/// Locality class of a matched job's transfer set (Table 2b columns).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum JobTransferClass {
    /// Every matched transfer is local per recorded metadata.
    AllLocal,
    /// Every matched transfer is remote (or has unknown endpoints).
    AllRemote,
    /// Both kinds present.
    Mixed,
}

/// The output of a matching run: the set `M` of Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchSet {
    /// Strategy that produced this set.
    pub method: MatchMethod,
    /// Matched jobs, ordered by `job_idx`. Jobs without matches are absent.
    pub jobs: Vec<MatchedJob>,
}

/// Table 2a row: matched transfer counts by locality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferCounts {
    /// Local (recorded source == destination, both valid).
    pub local: usize,
    /// Remote or unknown-endpoint transfers.
    pub remote: usize,
}

impl TransferCounts {
    /// Total matched transfers.
    pub fn total(&self) -> usize {
        self.local + self.remote
    }
}

/// Table 2b row: matched job counts by transfer-locality class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobCounts {
    /// Jobs whose matched transfers are all local.
    pub all_local: usize,
    /// Jobs whose matched transfers are all remote.
    pub all_remote: usize,
    /// Jobs with both.
    pub mixed: usize,
}

impl JobCounts {
    /// Total matched jobs.
    pub fn total(&self) -> usize {
        self.all_local + self.all_remote + self.mixed
    }
}

/// Is this transfer local per *recorded* metadata? Unknown or invalid
/// endpoints never count as local — they surface in Table 2a's remote
/// column, which is why RM2's remote count jumps by 24 k in the paper.
pub fn recorded_local(store: &MetaStore, transfer_idx: u32) -> bool {
    let t = &store.transfers[transfer_idx as usize];
    t.source_site == t.destination_site && store.is_valid_site(t.source_site)
}

impl MatchSet {
    /// Total number of matched transfers (with multiplicity across jobs —
    /// a transfer matched to two jobs counts twice, as in the paper's
    /// per-job accounting).
    pub fn n_matched_transfers(&self) -> usize {
        self.jobs.iter().map(|j| j.transfers.len()).sum()
    }

    /// Number of matched jobs.
    pub fn n_matched_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of *distinct* matched transfer events.
    pub fn n_distinct_transfers(&self) -> usize {
        let mut ids: Vec<u32> = self
            .jobs
            .iter()
            .flat_map(|j| j.transfers.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Table 2a: matched transfer counts split by recorded locality.
    pub fn transfer_counts(&self, store: &MetaStore) -> TransferCounts {
        let mut c = TransferCounts::default();
        for j in &self.jobs {
            for &ti in &j.transfers {
                if recorded_local(store, ti) {
                    c.local += 1;
                } else {
                    c.remote += 1;
                }
            }
        }
        c
    }

    /// Locality class of one matched job.
    pub fn classify_job(&self, store: &MetaStore, job: &MatchedJob) -> JobTransferClass {
        let mut any_local = false;
        let mut any_remote = false;
        for &ti in &job.transfers {
            if recorded_local(store, ti) {
                any_local = true;
            } else {
                any_remote = true;
            }
        }
        match (any_local, any_remote) {
            (true, false) => JobTransferClass::AllLocal,
            (false, true) => JobTransferClass::AllRemote,
            (true, true) => JobTransferClass::Mixed,
            (false, false) => unreachable!("matched jobs have at least one transfer"),
        }
    }

    /// Table 2b: matched job counts by locality class.
    pub fn job_counts(&self, store: &MetaStore) -> JobCounts {
        let mut c = JobCounts::default();
        for j in &self.jobs {
            match self.classify_job(store, j) {
                JobTransferClass::AllLocal => c.all_local += 1,
                JobTransferClass::AllRemote => c.all_remote += 1,
                JobTransferClass::Mixed => c.mixed += 1,
            }
        }
        c
    }

    /// True if `other` (a stricter method's result) is contained in this
    /// set job-by-job — the Exact ⊆ RM1 ⊆ RM2 monotonicity property.
    pub fn contains(&self, other: &MatchSet) -> bool {
        let by_job: std::collections::HashMap<u32, &MatchedJob> =
            self.jobs.iter().map(|j| (j.job_idx, j)).collect();
        other.jobs.iter().all(|oj| {
            by_job.get(&oj.job_idx).is_some_and(|sj| {
                oj.transfers
                    .iter()
                    .all(|t| sj.transfers.binary_search(t).is_ok())
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(method: MatchMethod, jobs: Vec<(u32, Vec<u32>)>) -> MatchSet {
        MatchSet {
            method,
            jobs: jobs
                .into_iter()
                .map(|(job_idx, transfers)| MatchedJob { job_idx, transfers })
                .collect(),
        }
    }

    #[test]
    fn counting_helpers() {
        let m = mk(MatchMethod::Exact, vec![(0, vec![1, 2]), (3, vec![2])]);
        assert_eq!(m.n_matched_jobs(), 2);
        assert_eq!(m.n_matched_transfers(), 3);
        assert_eq!(m.n_distinct_transfers(), 2);
    }

    #[test]
    fn containment_checks_jobs_and_transfers() {
        let big = mk(MatchMethod::Rm1, vec![(0, vec![1, 2, 3]), (5, vec![7])]);
        let small = mk(MatchMethod::Exact, vec![(0, vec![1, 3])]);
        let off = mk(MatchMethod::Exact, vec![(0, vec![4])]);
        let extra_job = mk(MatchMethod::Exact, vec![(9, vec![1])]);
        assert!(big.contains(&small));
        assert!(!big.contains(&off));
        assert!(!big.contains(&extra_job));
        assert!(big.contains(&big));
    }
}
