//! Site-level queueing hot spots (§5.3).
//!
//! The paper's Fig 5/6 comparison concludes that "some individual sites
//! experienced server queuing delays despite using local transfers" — a
//! site-level, not job-level, pathology. This module aggregates user-job
//! queue times per computing site and ranks the hot spots, quantifying
//! the claim that strictly following data locality can park jobs behind
//! enormous local queues while remote capacity idles.

use dmsa_metastore::{MetaStore, Sym};
use dmsa_simcore::interval::Interval;
use dmsa_simcore::stats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Queueing statistics of one computing site.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SiteQueueStats {
    /// Site symbol.
    pub site: Sym,
    /// User jobs that ran there (within the window).
    pub n_jobs: usize,
    /// Mean queue time, seconds.
    pub mean_queue_secs: f64,
    /// 95th percentile queue time, seconds.
    pub p95_queue_secs: f64,
    /// Maximum queue time, seconds.
    pub max_queue_secs: f64,
    /// Failure rate of the site's jobs.
    pub failure_rate: f64,
}

/// Per-site queueing statistics over user jobs in `window`, descending by
/// p95 queue time. Sites with fewer than `min_jobs` jobs are dropped
/// (their percentiles are noise).
pub fn site_queue_stats(
    store: &MetaStore,
    window: Interval,
    min_jobs: usize,
) -> Vec<SiteQueueStats> {
    let mut queues: HashMap<Sym, Vec<f64>> = HashMap::new();
    let mut failures: HashMap<Sym, usize> = HashMap::new();
    for j in store.user_jobs_in(window) {
        queues
            .entry(j.computingsite)
            .or_default()
            .push(j.queuing_time().as_secs_f64());
        if j.status == dmsa_panda_sim::JobStatus::Failed {
            *failures.entry(j.computingsite).or_insert(0) += 1;
        }
    }
    let mut out: Vec<SiteQueueStats> = queues
        .into_iter()
        .filter(|(_, q)| q.len() >= min_jobs)
        .map(|(site, q)| {
            let n_failed = failures.get(&site).copied().unwrap_or(0);
            SiteQueueStats {
                site,
                n_jobs: q.len(),
                mean_queue_secs: stats::mean(&q).unwrap_or(0.0),
                p95_queue_secs: stats::percentile(&q, 95.0).unwrap_or(0.0),
                max_queue_secs: q.iter().copied().fold(0.0, f64::max),
                failure_rate: n_failed as f64 / q.len() as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| b.p95_queue_secs.total_cmp(&a.p95_queue_secs));
    out
}

/// Imbalance summary: how much worse the hottest sites are than the
/// median site.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HotspotSummary {
    /// Sites considered.
    pub n_sites: usize,
    /// p95 queue of the hottest site, seconds.
    pub hottest_p95_secs: f64,
    /// Median over sites of the per-site p95 queue, seconds.
    pub median_p95_secs: f64,
    /// Ratio of the two (1.0 when perfectly balanced).
    pub imbalance_ratio: f64,
}

/// Summarize a ranked stats list (from [`site_queue_stats`]).
pub fn summarize_hotspots(ranked: &[SiteQueueStats]) -> Option<HotspotSummary> {
    if ranked.is_empty() {
        return None;
    }
    let p95s: Vec<f64> = ranked.iter().map(|s| s.p95_queue_secs).collect();
    let hottest = p95s[0];
    let median = stats::median(&p95s).unwrap_or(0.0);
    Some(HotspotSummary {
        n_sites: ranked.len(),
        hottest_p95_secs: hottest,
        median_p95_secs: median,
        imbalance_ratio: if median > 0.0 {
            hottest / median
        } else {
            f64::INFINITY
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_metastore::JobRecord;
    use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
    use dmsa_simcore::SimTime;

    fn job(site: Sym, queue_s: i64, failed: bool) -> JobRecord {
        JobRecord {
            pandaid: 0,
            jeditaskid: 0,
            computingsite: site,
            creationtime: SimTime::EPOCH,
            starttime: SimTime::from_secs(queue_s),
            endtime: SimTime::from_secs(queue_s + 100),
            ninputfilebytes: 0,
            noutputfilebytes: 0,
            io_mode: IoMode::StageIn,
            status: if failed {
                JobStatus::Failed
            } else {
                JobStatus::Finished
            },
            task_status: TaskStatus::Done,
            error_code: None,
            is_user_analysis: true,
        }
    }

    fn window() -> Interval {
        Interval::new(SimTime::EPOCH, SimTime::from_secs(1_000_000))
    }

    #[test]
    fn ranks_hot_sites_first() {
        let mut store = MetaStore::new();
        let cool = store.register_site("COOL");
        let hot = store.register_site("HOT");
        for _ in 0..10 {
            store.jobs.push(job(cool, 10, false));
            store.jobs.push(job(hot, 10_000, false));
        }
        let ranked = site_queue_stats(&store, window(), 1);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].site, hot);
        assert!(ranked[0].p95_queue_secs > ranked[1].p95_queue_secs * 100.0);
        let s = summarize_hotspots(&ranked).unwrap();
        assert!(s.imbalance_ratio > 1.0);
        assert_eq!(s.n_sites, 2);
    }

    #[test]
    fn min_jobs_filters_thin_sites() {
        let mut store = MetaStore::new();
        let a = store.register_site("A");
        let b = store.register_site("B");
        for _ in 0..10 {
            store.jobs.push(job(a, 10, false));
        }
        store.jobs.push(job(b, 99_999, false));
        let ranked = site_queue_stats(&store, window(), 5);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].site, a);
    }

    #[test]
    fn failure_rates_are_per_site() {
        let mut store = MetaStore::new();
        let a = store.register_site("A");
        for i in 0..10 {
            store.jobs.push(job(a, 10, i < 3));
        }
        let ranked = site_queue_stats(&store, window(), 1);
        assert!((ranked[0].failure_rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_store_summarizes_to_none() {
        let store = MetaStore::new();
        let ranked = site_queue_stats(&store, window(), 1);
        assert!(ranked.is_empty());
        assert!(summarize_hotspots(&ranked).is_none());
    }
}
