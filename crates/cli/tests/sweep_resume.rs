//! Crash-and-resume drills for the sweep supervision layer.
//!
//! The contract under test: a sweep interrupted mid-flight and resumed
//! with `--resume` must (a) not re-run cells whose journaled completion
//! still verifies on disk, and (b) end with `sweep_summary.json` and
//! every `cell-*.json` byte-identical to an uninterrupted sweep. The
//! in-process interruption here models the SIGKILL variant the CI smoke
//! drill runs against the real binary — the journal can't tell the
//! difference, which is the point.

use dmsa_cli::journal;
use dmsa_cli::sweep::{export_file_name, run_cell, run_sweep_with, SweepOpts};
use dmsa_scenario::{
    BreakerSetting, CancelToken, GridCell, PresetAxis, ScenarioConfig, SharedPrefix, SweepGrid,
};
use dmsa_simcore::SimDuration;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn tiny_preset() -> ScenarioConfig {
    let mut c = ScenarioConfig::small_faulty();
    c.duration = SimDuration::from_hours(6);
    c.workload.tasks_per_hour = 10.0;
    c.initial_datasets = 20;
    c.background_transfers_per_hour = 50.0;
    c
}

fn tiny_grid() -> SweepGrid {
    SweepGrid {
        presets: vec![PresetAxis {
            name: "faulty".into(),
            base: tiny_preset(),
        }],
        seeds: vec![1, 2],
        fail_probs: vec![0.05, 0.2],
        breakers: vec![
            BreakerSetting::Off,
            BreakerSetting::Adaptive {
                cooldown_secs: None,
            },
        ],
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dmsa-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(dir: &Path) -> SweepOpts {
    SweepOpts {
        jobs: 1,
        out_dir: dir.to_path_buf(),
        ..SweepOpts::default()
    }
}

/// Byte-compare the summary and all 8 cell exports of two sweep dirs.
fn assert_dirs_byte_identical(got: &Path, want: &Path, grid: &SweepGrid) {
    assert_eq!(
        std::fs::read(got.join("sweep_summary.json")).unwrap(),
        std::fs::read(want.join("sweep_summary.json")).unwrap(),
        "sweep_summary.json diverged"
    );
    for cell in grid.expand().unwrap() {
        let name = export_file_name(&cell.label);
        assert_eq!(
            std::fs::read(got.join(&name)).unwrap(),
            std::fs::read(want.join(&name)).unwrap(),
            "cell export {name} diverged"
        );
    }
}

#[test]
fn interrupted_sweep_resumes_without_rerunning_verified_cells() {
    static RAN_BEFORE: AtomicUsize = AtomicUsize::new(0);
    static RAN_AFTER: AtomicUsize = AtomicUsize::new(0);
    RAN_BEFORE.store(0, Ordering::Relaxed);
    RAN_AFTER.store(0, Ordering::Relaxed);

    let grid = tiny_grid();

    // Reference: one uninterrupted sweep.
    let dir_ref = tmp_dir("ref");
    let reference = run_sweep_with(&grid, &opts(&dir_ref), &run_cell).unwrap();
    assert_eq!(reference.n_failed(), 0);

    // Interrupted sweep: the "signal" latches as the third cell starts.
    // With one worker, two cells complete, the third aborts in flight
    // through its cancel-token probe (`interrupted:`), and the rest are
    // never dispatched.
    let dir = tmp_dir("victim");
    let interrupted_runner =
        |cell: &GridCell, prefix: Option<&SharedPrefix>, cancel: &CancelToken| {
            RAN_BEFORE.fetch_add(1, Ordering::Relaxed);
            run_cell(cell, prefix, cancel)
        };
    let first = run_sweep_with(
        &grid,
        &SweepOpts {
            interrupt: Some(|| RAN_BEFORE.load(Ordering::Relaxed) >= 3),
            ..opts(&dir)
        },
        &interrupted_runner,
    )
    .unwrap();
    assert!(first.interrupted);
    let done = first.cells.iter().filter(|c| c.result.is_ok()).count();
    assert_eq!(done, 2, "pre-interrupt cells complete, in-flight aborts");
    assert!(
        first.cells.iter().any(|c| matches!(
            &c.result,
            Err(e) if e.starts_with("interrupted:") && e.contains("canceled:")
        )),
        "the in-flight cell aborts cooperatively"
    );
    assert_eq!(first.n_failed(), 6);

    // Resume: only the unfinished cells are dispatched; the journaled
    // completions are adopted after re-verification.
    let counting_runner = |cell: &GridCell, prefix: Option<&SharedPrefix>, cancel: &CancelToken| {
        RAN_AFTER.fetch_add(1, Ordering::Relaxed);
        run_cell(cell, prefix, cancel)
    };
    let resumed = run_sweep_with(
        &grid,
        &SweepOpts {
            resume: true,
            ..opts(&dir)
        },
        &counting_runner,
    )
    .unwrap();
    assert_eq!(resumed.n_failed(), 0, "{:?}", resumed.cells);
    assert_eq!(resumed.n_resumed(), 2, "adopted the journaled completions");
    assert_eq!(
        RAN_AFTER.load(Ordering::Relaxed),
        6,
        "verified-complete cells must not re-run"
    );

    // The resumed directory is byte-identical to the uninterrupted one.
    assert_dirs_byte_identical(&dir, &dir_ref, &grid);

    // The rewritten journal is one coherent generation: 8 completions.
    let replay = journal::load(&dir).unwrap().unwrap();
    assert!(replay.torn_tail.is_none());
    let completions = replay
        .records
        .iter()
        .filter(|r| matches!(r, journal::Record::Completed { .. }))
        .count();
    assert_eq!(completions, 8);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir_ref).unwrap();
}

#[test]
fn corrupted_survivor_exports_are_redispatched_on_resume() {
    static RAN: AtomicUsize = AtomicUsize::new(0);
    RAN.store(0, Ordering::Relaxed);

    let grid = tiny_grid();
    let dir = tmp_dir("corrupt");
    let complete = run_sweep_with(&grid, &opts(&dir), &run_cell).unwrap();
    assert_eq!(complete.n_failed(), 0);

    // Flip one byte deep inside one export: its length still matches the
    // journal stamp, so only the checksum/content audit can catch it.
    let victim = export_file_name(&complete.cells[4].label);
    let path = dir.join(&victim);
    let clean = std::fs::read(&path).unwrap();
    let mut bad = clean.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x20;
    std::fs::write(&path, &bad).unwrap();

    let counting_runner = |cell: &GridCell, prefix: Option<&SharedPrefix>, cancel: &CancelToken| {
        RAN.fetch_add(1, Ordering::Relaxed);
        run_cell(cell, prefix, cancel)
    };
    let resumed = run_sweep_with(
        &grid,
        &SweepOpts {
            resume: true,
            ..opts(&dir)
        },
        &counting_runner,
    )
    .unwrap();
    assert_eq!(resumed.n_failed(), 0);
    assert_eq!(resumed.n_resumed(), 7, "only the damaged cell re-ran");
    assert_eq!(RAN.load(Ordering::Relaxed), 1);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        clean,
        "the re-dispatched cell must restore the artifact byte-identically"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_journal_from_a_different_grid_starts_cold() {
    static RAN: AtomicUsize = AtomicUsize::new(0);
    RAN.store(0, Ordering::Relaxed);

    // Small grids keep this fast: 1 cell first, 2 cells on "resume".
    let grid_a = SweepGrid {
        seeds: vec![1],
        fail_probs: vec![0.05],
        breakers: vec![BreakerSetting::Off],
        ..tiny_grid()
    };
    let grid_b = SweepGrid {
        seeds: vec![1, 2],
        ..grid_a.clone()
    };
    let dir = tmp_dir("mismatch");
    run_sweep_with(&grid_a, &opts(&dir), &run_cell).unwrap();

    let counting_runner = |cell: &GridCell, prefix: Option<&SharedPrefix>, cancel: &CancelToken| {
        RAN.fetch_add(1, Ordering::Relaxed);
        run_cell(cell, prefix, cancel)
    };
    let resumed = run_sweep_with(
        &grid_b,
        &SweepOpts {
            resume: true,
            ..opts(&dir)
        },
        &counting_runner,
    )
    .unwrap();
    // The journal's grid fingerprint doesn't match: nothing is adopted,
    // every cell of the new grid runs.
    assert_eq!(resumed.n_resumed(), 0);
    assert_eq!(RAN.load(Ordering::Relaxed), 2);
    assert_eq!(resumed.n_failed(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
