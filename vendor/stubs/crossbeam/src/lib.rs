//! Offline stub for `crossbeam` 0.8 (declared but unused in dmsa).
