//! Property-based tests over randomly generated metadata stores.
//!
//! The generators build small but adversarial stores directly (no
//! simulation): jobs with random timelines, file tables with shared and
//! private keys, transfers with random corruption of sites, sizes and task
//! ids. The properties pin the core guarantees of `dmsa-core`:
//!
//! 1. engine agreement — naive, indexed, parallel, prepared, and
//!    windowed-over-prepared produce identical match sets;
//! 2. monotonicity — Exact ⊆ RM1 ⊆ RM2, per job and per transfer;
//! 3. determinism — repeated runs are equal;
//! 4. algorithm-1 postconditions on every exact match.

use dmsa_core::matcher::Matcher;
use dmsa_core::windowed::{max_job_lifetime, max_transfer_lead};
use dmsa_core::{
    IndexedMatcher, MatchMethod, NaiveMatcher, ParallelMatcher, PreparedMatcher, PreparedStore,
    WindowedMatcher,
};
use dmsa_metastore::{
    FileDirection, FileRecord, JobRecord, MetaStore, SymbolTable, TransferRecord,
};
use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
use dmsa_rucio_sim::Activity;
use dmsa_simcore::interval::Interval;
use dmsa_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawJob {
    pandaid: u64,
    taskid: u64,
    site: usize,
    created_s: i64,
    queue_s: i64,
    wall_s: i64,
    n_files: usize,
    bytes_skew: i64,
}

#[derive(Debug, Clone)]
struct RawTransfer {
    job_ref: usize,
    file_ref: usize,
    start_s: i64,
    dur_s: i64,
    size_skew: i64,
    dest_kind: u8, // 0 = job site, 1 = other site, 2 = UNKNOWN, 3 = garbage
    drop_taskid: bool,
    is_upload: bool,
}

fn raw_job() -> impl Strategy<Value = RawJob> {
    (
        1u64..50,
        1u64..6,
        0usize..4,
        0i64..500,
        1i64..300,
        1i64..300,
        1usize..4,
        prop_oneof![Just(0i64), 1i64..100],
    )
        .prop_map(
            |(pandaid, taskid, site, created_s, queue_s, wall_s, n_files, bytes_skew)| RawJob {
                pandaid,
                taskid,
                site,
                created_s,
                queue_s,
                wall_s,
                n_files,
                bytes_skew,
            },
        )
}

fn raw_transfer() -> impl Strategy<Value = RawTransfer> {
    (
        0usize..16,
        0usize..3,
        0i64..1_000,
        1i64..200,
        prop_oneof![Just(0i64), 1i64..50],
        0u8..4,
        any::<bool>(),
        proptest::bool::weighted(0.2),
    )
        .prop_map(
            |(job_ref, file_ref, start_s, dur_s, size_skew, dest_kind, drop_taskid, is_upload)| {
                RawTransfer {
                    job_ref,
                    file_ref,
                    start_s,
                    dur_s,
                    size_skew,
                    dest_kind,
                    drop_taskid,
                    is_upload,
                }
            },
        )
}

/// Materialize a store from raw specs. File sizes are derived from
/// (pandaid, file index) so different jobs can still collide on keys when
/// they share a task id — the ambiguity the matcher must survive.
fn build_store(jobs: &[RawJob], transfers: &[RawTransfer]) -> MetaStore {
    let mut store = MetaStore::new();
    let sites: Vec<_> = (0..4)
        .map(|i| store.register_site(&format!("SITE-{i}")))
        .collect();
    let garbage = store.symbols.intern("??bad??");

    for j in jobs {
        let site = sites[j.site];
        let in_bytes: u64 = (0..j.n_files)
            .map(|f| 1_000 + j.pandaid * 10 + f as u64)
            .sum();
        store.jobs.push(JobRecord {
            pandaid: j.pandaid,
            jeditaskid: j.taskid,
            computingsite: site,
            creationtime: SimTime::from_secs(j.created_s),
            starttime: SimTime::from_secs(j.created_s + j.queue_s),
            endtime: SimTime::from_secs(j.created_s + j.queue_s + j.wall_s),
            ninputfilebytes: (in_bytes as i64 + j.bytes_skew) as u64,
            noutputfilebytes: 500 + j.pandaid,
            io_mode: IoMode::StageIn,
            status: JobStatus::Finished,
            task_status: TaskStatus::Done,
            error_code: None,
            is_user_analysis: true,
        });
        for f in 0..j.n_files {
            store.files.push(FileRecord {
                pandaid: j.pandaid,
                jeditaskid: j.taskid,
                lfn: store.symbols.intern(&format!("lfn-{}-{}", j.pandaid, f)),
                dataset: store.symbols.intern(&format!("ds-{}", j.taskid)),
                proddblock: store.symbols.intern(&format!("blk-{}", j.taskid)),
                scope: store.symbols.intern("user"),
                file_size: 1_000 + j.pandaid * 10 + f as u64,
                direction: FileDirection::Input,
            });
        }
    }

    for (i, t) in transfers.iter().enumerate() {
        let Some(j) = jobs.get(t.job_ref % jobs.len().max(1)) else {
            continue;
        };
        let f = t.file_ref % j.n_files;
        let site = sites[j.site];
        let dest = match t.dest_kind {
            0 => site,
            1 => sites[(j.site + 1) % sites.len()],
            2 => SymbolTable::UNKNOWN,
            _ => garbage,
        };
        let size = (1_000 + j.pandaid * 10 + f as u64) as i64 + t.size_skew;
        store.transfers.push(TransferRecord {
            transfer_id: i as u64,
            lfn: store.symbols.intern(&format!("lfn-{}-{}", j.pandaid, f)),
            dataset: store.symbols.intern(&format!("ds-{}", j.taskid)),
            proddblock: store.symbols.intern(&format!("blk-{}", j.taskid)),
            scope: store.symbols.intern("user"),
            file_size: size.max(1) as u64,
            starttime: SimTime::from_secs(t.start_s),
            endtime: SimTime::from_secs(t.start_s + t.dur_s),
            source_site: if t.is_upload { dest } else { site },
            destination_site: if t.is_upload { site } else { dest },
            activity: if t.is_upload {
                Activity::AnalysisUpload
            } else {
                Activity::AnalysisDownload
            },
            jeditaskid: (!t.drop_taskid).then_some(j.taskid),
            is_download: !t.is_upload,
            is_upload: t.is_upload,
            attempt: 1,
            succeeded: true,
            gt_pandaid: Some(j.pandaid),
            gt_source_site: site,
            gt_destination_site: site,
            gt_file_size: size.max(1) as u64,
        });
    }
    store
}

fn window() -> Interval {
    Interval::new(SimTime::from_secs(0), SimTime::from_secs(100_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_on_random_stores(
        jobs in prop::collection::vec(raw_job(), 1..12),
        transfers in prop::collection::vec(raw_transfer(), 0..40),
    ) {
        let store = build_store(&jobs, &transfers);
        // One shared prepared index across every method (the tentpole's
        // reuse contract: building once must not change any result).
        let shared = PreparedStore::build(&store);
        for method in MatchMethod::ALL {
            let naive = NaiveMatcher.match_jobs(&store, window(), method);
            let indexed = IndexedMatcher.match_jobs(&store, window(), method);
            let parallel = ParallelMatcher.match_jobs(&store, window(), method);
            let prepared = PreparedMatcher.match_jobs(&store, window(), method);
            let shared_seq = shared.match_window(window(), method);
            let shared_par = shared.par_match_window(window(), method);
            prop_assert_eq!(&naive, &indexed);
            prop_assert_eq!(&indexed, &parallel);
            prop_assert_eq!(&parallel, &prepared);
            prop_assert_eq!(&prepared, &shared_seq);
            prop_assert_eq!(&shared_seq, &shared_par);
        }
    }

    #[test]
    fn windowed_streaming_over_prepared_agrees_with_single_pass(
        jobs in prop::collection::vec(raw_job(), 1..10),
        transfers in prop::collection::vec(raw_transfer(), 0..30),
    ) {
        let store = build_store(&jobs, &transfers);
        // §4.2's contract: the overlap must cover the longest job lifetime
        // plus the longest transfer lead for streaming to be lossless.
        let overlap = max_job_lifetime(&store)
            + max_transfer_lead(&store)
            + SimDuration::from_secs(1);
        let width = overlap + SimDuration::from_secs(5_000);
        let streaming = WindowedMatcher::new(PreparedMatcher, width, overlap);
        for method in MatchMethod::ALL {
            let streamed = streaming.match_streaming(&store, window(), method);
            let single = NaiveMatcher.match_jobs(&store, window(), method);
            prop_assert_eq!(&streamed, &single);
        }
    }

    #[test]
    fn relaxation_is_monotone_on_random_stores(
        jobs in prop::collection::vec(raw_job(), 1..12),
        transfers in prop::collection::vec(raw_transfer(), 0..40),
    ) {
        let store = build_store(&jobs, &transfers);
        let exact = IndexedMatcher.match_jobs(&store, window(), MatchMethod::Exact);
        let rm1 = IndexedMatcher.match_jobs(&store, window(), MatchMethod::Rm1);
        let rm2 = IndexedMatcher.match_jobs(&store, window(), MatchMethod::Rm2);
        prop_assert!(rm1.contains(&exact), "RM1 lost an exact match");
        prop_assert!(rm2.contains(&rm1), "RM2 lost an RM1 match");
    }

    #[test]
    fn matching_is_deterministic_on_random_stores(
        jobs in prop::collection::vec(raw_job(), 1..8),
        transfers in prop::collection::vec(raw_transfer(), 0..24),
    ) {
        let store = build_store(&jobs, &transfers);
        let a = ParallelMatcher.match_jobs(&store, window(), MatchMethod::Rm2);
        let b = ParallelMatcher.match_jobs(&store, window(), MatchMethod::Rm2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn exact_matches_satisfy_postconditions(
        jobs in prop::collection::vec(raw_job(), 1..12),
        transfers in prop::collection::vec(raw_transfer(), 0..40),
    ) {
        let store = build_store(&jobs, &transfers);
        let exact = IndexedMatcher.match_jobs(&store, window(), MatchMethod::Exact);
        for mj in &exact.jobs {
            let job = &store.jobs[mj.job_idx as usize];
            let mut dl = 0u64;
            let mut ul = 0u64;
            for &ti in &mj.transfers {
                let t = &store.transfers[ti as usize];
                prop_assert!(t.starttime < job.endtime);
                prop_assert_eq!(t.jeditaskid, Some(job.jeditaskid));
                if t.is_download {
                    prop_assert_eq!(t.destination_site, job.computingsite);
                    dl += t.file_size;
                } else {
                    prop_assert_eq!(t.source_site, job.computingsite);
                    ul += t.file_size;
                }
            }
            prop_assert!(dl == 0 || dl == job.ninputfilebytes);
            prop_assert!(ul == 0 || ul == job.noutputfilebytes);
        }
    }

    #[test]
    fn unknown_sites_only_ever_add_matches_at_rm2(
        jobs in prop::collection::vec(raw_job(), 1..10),
        transfers in prop::collection::vec(raw_transfer(), 0..30),
    ) {
        let store = build_store(&jobs, &transfers);
        let rm1 = IndexedMatcher.match_jobs(&store, window(), MatchMethod::Rm1);
        let rm2 = IndexedMatcher.match_jobs(&store, window(), MatchMethod::Rm2);
        // Every RM2-only transfer has an invalid relevant endpoint.
        let rm1_pairs: std::collections::HashSet<(u32, u32)> = rm1
            .jobs
            .iter()
            .flat_map(|j| j.transfers.iter().map(move |&t| (j.job_idx, t)))
            .collect();
        for mj in &rm2.jobs {
            for &ti in &mj.transfers {
                if rm1_pairs.contains(&(mj.job_idx, ti)) {
                    continue;
                }
                let t = &store.transfers[ti as usize];
                let endpoint = if t.is_download {
                    t.destination_site
                } else {
                    t.source_site
                };
                prop_assert!(
                    !store.is_valid_site(endpoint),
                    "RM2-only match with a valid endpoint"
                );
            }
        }
    }
}
