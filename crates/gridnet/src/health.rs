//! Closed-loop site/link health: failure telemetry and circuit breakers.
//!
//! PR 2's fault layer makes transfers *fail* realistically; this module
//! makes the system *react*, the way production ATLAS operations do with
//! site exclusion and probation. Every transfer attempt and pilot mishap
//! emits a [`HealthEvent`]; a [`HealthMonitor`] folds the stream into one
//! **circuit breaker** per site and per directed link:
//!
//! ```text
//!            failure rate / consecutive failures over a sliding window
//!   Closed ────────────────────────────────────────────────────────▶ Open
//!     ▲                                                               │
//!     │ `probe_successes` probe deliveries                 cooldown   │
//!     └──────────────────────────── HalfOpen ◀──────────────────────┘
//!                                     │  any probe failure ──▶ Open
//! ```
//!
//! While a breaker is **Open** the broker hard-excludes the site and the
//! transfer engine skips the source unless it holds the only replica.
//! After `cooldown` the breaker drops to **HalfOpen** probation, which
//! admits a bounded trickle of probe traffic (`probe_quota` grants); probe
//! successes re-close it, a probe failure re-opens it. A breaker can
//! therefore never starve an entity forever — cooldown always re-arms
//! probation (property-tested).
//!
//! **Determinism.** The monitor owns no RNG: state is a pure fold over the
//! observed event sequence plus the query times, both of which are fully
//! determined by the simulation's own event order. With the subsystem
//! disabled (the default) nothing downstream consults it, so existing
//! seeds stay byte-identical.

use crate::site::SiteId;
use dmsa_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// What a health event is about.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum HealthSubject {
    /// A site's storage/compute frontend.
    Site(SiteId),
    /// A directed WAN link.
    Link {
        /// Source site.
        src: SiteId,
        /// Destination site.
        dst: SiteId,
    },
}

/// One telemetry signal. Transfer-engine signals carry per-attempt
/// outcomes; pilot-layer signals carry job-level mishaps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HealthSignal {
    /// A transfer attempt delivered its file.
    AttemptSucceeded,
    /// A transfer attempt died mid-flight.
    AttemptFailed,
    /// A whole transfer request exhausted its retry budget.
    TransferExhausted,
    /// A pilot burned through its validation retries at the site.
    PilotValidationFailed,
    /// A running payload's pilot stopped heartbeating.
    LostHeartbeat,
}

impl HealthSignal {
    /// Does this signal count against the subject?
    pub fn is_failure(self) -> bool {
        !matches!(self, HealthSignal::AttemptSucceeded)
    }
}

/// One entry of the telemetry stream.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Entity the signal is about.
    pub subject: HealthSubject,
    /// Sim time the signal was observed.
    pub at: SimTime,
    /// What happened.
    pub signal: HealthSignal,
}

/// Circuit-breaker tuning. `enabled` gates the whole subsystem; with it
/// false (the default) no component consults the monitor and campaigns
/// are byte-identical to pre-health builds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Master switch for adaptive exclusion.
    pub enabled: bool,
    /// Sliding telemetry window the failure rate is computed over.
    pub window: SimDuration,
    /// Minimum samples inside the window before the rate can trip.
    pub min_samples: u32,
    /// Failure rate (0..1] over the window that opens the breaker.
    pub failure_rate_threshold: f64,
    /// Consecutive failures that open the breaker regardless of rate.
    pub consecutive_failures: u32,
    /// How long an Open breaker refuses everything before probation.
    pub cooldown: SimDuration,
    /// Probe admissions granted per HalfOpen probation round.
    pub probe_quota: u32,
    /// Probe successes needed to re-close from HalfOpen.
    pub probe_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::disabled()
    }
}

impl HealthConfig {
    /// The inert configuration: breakers exist nowhere, nothing reacts.
    pub fn disabled() -> Self {
        HealthConfig {
            enabled: false,
            ..HealthConfig::adaptive()
        }
    }

    /// Adaptive exclusion at the default operating point, tuned so the
    /// 8 %-background-failure `degraded()` grid never trips a breaker
    /// from noise while hour-long outages (95 % failure) trip within a
    /// handful of attempts.
    pub fn adaptive() -> Self {
        HealthConfig {
            enabled: true,
            window: SimDuration::from_secs(1_800),
            min_samples: 8,
            failure_rate_threshold: 0.7,
            consecutive_failures: 4,
            cooldown: SimDuration::from_secs(1_800),
            probe_quota: 3,
            probe_successes: 2,
        }
    }
}

/// Breaker state at a given instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: all traffic admitted, telemetry scored.
    Closed,
    /// Tripped: all traffic refused until the cooldown elapses.
    Open,
    /// Probation: a bounded trickle of probe traffic admitted.
    HalfOpen,
}

/// One contiguous period a breaker spent Open (exclusion accounting).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpenEpisode {
    /// What was excluded.
    pub subject: HealthSubject,
    /// When the breaker tripped.
    pub from: SimTime,
    /// When probation began (trip time + cooldown).
    pub until: SimTime,
}

impl OpenEpisode {
    /// Exclusion span clamped to an observation window end.
    pub fn clamped_secs(&self, window_end: SimTime) -> f64 {
        (self.until.min(window_end) - self.from)
            .clamp_non_negative()
            .as_secs_f64()
    }
}

/// Admission/refusal counters the monitor accumulates; the `exclusion`
/// analysis report reads them as the "failures avoided" evidence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthCounters {
    /// Broker placements refused because the site breaker was not Closed.
    pub site_refusals: u64,
    /// Source-selection skips because the source site or link breaker
    /// was not Closed.
    pub link_refusals: u64,
    /// Probe admissions granted during HalfOpen probation.
    pub probes_granted: u64,
    /// Breaker trips (Closed/HalfOpen → Open transitions).
    pub trips: u64,
}

/// End-of-campaign health telemetry, exported alongside the store so the
/// `exclusion` report can quantify the closed loop without simulator
/// access.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HealthSummary {
    /// Every Open period, in trip order.
    pub episodes: Vec<OpenEpisode>,
    /// Admission counters.
    pub counters: HealthCounters,
}

impl HealthSummary {
    /// Total site exclusion, in hours, clamped to `window_end`.
    pub fn excluded_site_hours(&self, window_end: SimTime) -> f64 {
        self.subject_hours(window_end, |s| matches!(s, HealthSubject::Site(_)))
    }

    /// Total directed-link exclusion, in hours, clamped to `window_end`.
    pub fn excluded_link_hours(&self, window_end: SimTime) -> f64 {
        self.subject_hours(window_end, |s| matches!(s, HealthSubject::Link { .. }))
    }

    fn subject_hours(&self, window_end: SimTime, pick: impl Fn(HealthSubject) -> bool) -> f64 {
        self.episodes
            .iter()
            .filter(|e| pick(e.subject))
            .map(|e| e.clamped_secs(window_end))
            .sum::<f64>()
            / 3_600.0
    }
}

/// Checkpointable image of one breaker: every field of the state machine,
/// including the sliding sample window, so a restored breaker trips (or
/// recloses) on exactly the same future observation an uninterrupted one
/// would.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerSnapshot {
    /// Breaker position in the state machine.
    pub state: BreakerState,
    /// `(observed_at, failed)` samples, oldest first.
    pub samples: Vec<(SimTime, bool)>,
    /// Current run of consecutive failures.
    pub consecutive_failures: u32,
    /// While Open: when probation starts.
    pub open_until: SimTime,
    /// While HalfOpen: probe admissions granted this round.
    pub probes_granted: u32,
    /// While HalfOpen: probe successes accumulated this round.
    pub probe_successes: u32,
}

/// Checkpointable image of a whole [`HealthMonitor`] minus its config
/// (the resume path re-derives the config from the scenario config, so a
/// snapshot can never smuggle in stale tuning). Link breakers are listed
/// sorted by `(src, dst)`, giving the snapshot a canonical byte encoding
/// independent of `HashMap` iteration order.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Per-site breakers, indexed by `SiteId`.
    pub sites: Vec<BreakerSnapshot>,
    /// Directed-link breakers, sorted by `(src, dst)`.
    pub links: Vec<((SiteId, SiteId), BreakerSnapshot)>,
    /// Every Open period so far, in trip order.
    pub episodes: Vec<OpenEpisode>,
    /// Admission counters so far.
    pub counters: HealthCounters,
}

/// One circuit breaker: sliding sample window + state machine.
#[derive(Clone, Debug)]
struct Breaker {
    state: BreakerState,
    /// `(observed_at, failed)` samples, oldest first, pruned to `window`.
    samples: VecDeque<(SimTime, bool)>,
    consecutive_failures: u32,
    /// While Open: when probation starts.
    open_until: SimTime,
    /// While HalfOpen: probe admissions granted this round.
    probes_granted: u32,
    /// While HalfOpen: probe successes accumulated this round.
    probe_successes: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            samples: VecDeque::new(),
            consecutive_failures: 0,
            open_until: SimTime::EPOCH,
            probes_granted: 0,
            probe_successes: 0,
        }
    }

    /// Advance Open → HalfOpen once the cooldown has elapsed. All queries
    /// and observations funnel through this, so state only ever moves
    /// forward with the (monotone-in-call-order) times the sim hands us.
    fn tick(&mut self, t: SimTime) {
        if self.state == BreakerState::Open && t >= self.open_until {
            self.state = BreakerState::HalfOpen;
            self.probes_granted = 0;
            self.probe_successes = 0;
        }
    }

    fn trip(&mut self, t: SimTime, config: &HealthConfig) -> OpenEpisode {
        self.state = BreakerState::Open;
        self.open_until = t + config.cooldown;
        self.samples.clear();
        self.consecutive_failures = 0;
        OpenEpisode {
            subject: HealthSubject::Site(SiteId(0)), // caller overwrites
            from: t,
            until: self.open_until,
        }
    }

    /// Would traffic be admitted at `t`? Does not consume probe quota.
    fn admits(&mut self, t: SimTime, config: &HealthConfig) -> bool {
        self.tick(t);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => self.probes_granted < config.probe_quota,
        }
    }

    /// Consume one probe grant if the breaker is on probation.
    fn commit(&mut self, t: SimTime, config: &HealthConfig) -> bool {
        self.tick(t);
        if self.state == BreakerState::HalfOpen && self.probes_granted < config.probe_quota {
            self.probes_granted += 1;
            return true;
        }
        false
    }

    fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            samples: self.samples.iter().copied().collect(),
            consecutive_failures: self.consecutive_failures,
            open_until: self.open_until,
            probes_granted: self.probes_granted,
            probe_successes: self.probe_successes,
        }
    }

    fn from_snapshot(snap: BreakerSnapshot) -> Self {
        Breaker {
            state: snap.state,
            samples: snap.samples.into(),
            consecutive_failures: snap.consecutive_failures,
            open_until: snap.open_until,
            probes_granted: snap.probes_granted,
            probe_successes: snap.probe_successes,
        }
    }

    /// Fold one observation in; returns a new episode if this trips it.
    fn observe(&mut self, t: SimTime, failed: bool, config: &HealthConfig) -> Option<OpenEpisode> {
        self.tick(t);
        match self.state {
            BreakerState::Open => None, // refused traffic; nothing to score
            BreakerState::HalfOpen => {
                if failed {
                    // Probation failed: back to Open for a fresh cooldown.
                    Some(self.trip(t, config))
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= config.probe_successes {
                        self.state = BreakerState::Closed;
                        self.samples.clear();
                        self.consecutive_failures = 0;
                    }
                    None
                }
            }
            BreakerState::Closed => {
                self.samples.push_back((t, failed));
                let horizon = t - config.window;
                while let Some(&(s, _)) = self.samples.front() {
                    if s < horizon {
                        self.samples.pop_front();
                    } else {
                        break;
                    }
                }
                if failed {
                    self.consecutive_failures += 1;
                } else {
                    self.consecutive_failures = 0;
                }
                let n = self.samples.len() as u32;
                let fails = self.samples.iter().filter(|&&(_, f)| f).count();
                let rate_tripped = n >= config.min_samples
                    && fails as f64 / n as f64 >= config.failure_rate_threshold;
                let run_tripped = self.consecutive_failures >= config.consecutive_failures;
                (rate_tripped || run_tripped).then(|| self.trip(t, config))
            }
        }
    }
}

/// The per-site / per-link breaker registry and telemetry sink.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    sites: Vec<Breaker>,
    links: HashMap<(SiteId, SiteId), Breaker>,
    episodes: Vec<OpenEpisode>,
    counters: HealthCounters,
}

impl HealthMonitor {
    /// Monitor for a topology of `n_sites` sites, all breakers Closed.
    pub fn new(config: HealthConfig, n_sites: usize) -> Self {
        HealthMonitor {
            config,
            sites: (0..n_sites).map(|_| Breaker::new()).collect(),
            links: HashMap::new(),
            episodes: Vec::new(),
            counters: HealthCounters::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Current state of a site's breaker (advancing cooldowns to `t`).
    pub fn site_state(&mut self, site: SiteId, t: SimTime) -> BreakerState {
        let b = &mut self.sites[site.index()];
        b.tick(t);
        b.state
    }

    /// Current state of a directed link's breaker.
    pub fn link_state(&mut self, src: SiteId, dst: SiteId, t: SimTime) -> BreakerState {
        match self.links.entry((src, dst)) {
            Entry::Occupied(mut e) => {
                let b = e.get_mut();
                b.tick(t);
                b.state
            }
            Entry::Vacant(_) => BreakerState::Closed,
        }
    }

    /// Would the broker be allowed to place work at `site` at `t`? Counts
    /// a refusal when not. Does not consume probe quota — pair with
    /// [`Self::commit_site`] once a placement is actually made.
    pub fn site_admits(&mut self, site: SiteId, t: SimTime) -> bool {
        let ok = self.sites[site.index()].admits(t, &self.config);
        if !ok {
            self.counters.site_refusals += 1;
        }
        ok
    }

    /// Would source selection be allowed to draw from `src` towards `dst`
    /// at `t`? Checks the source-site breaker and (for remote paths) the
    /// directed-link breaker. Counts a refusal when not.
    pub fn source_admits(&mut self, src: SiteId, dst: SiteId, t: SimTime) -> bool {
        let config = &self.config;
        let site_ok = self.sites[src.index()].admits(t, config);
        let link_ok = src == dst
            || match self.links.get_mut(&(src, dst)) {
                Some(b) => b.admits(t, config),
                None => true,
            };
        if !(site_ok && link_ok) {
            self.counters.link_refusals += 1;
            return false;
        }
        true
    }

    /// Commit a placement at `site`: consumes one probe grant if the site
    /// is on probation.
    pub fn commit_site(&mut self, site: SiteId, t: SimTime) {
        if self.sites[site.index()].commit(t, &self.config) {
            self.counters.probes_granted += 1;
        }
    }

    /// Commit a source choice `src → dst`: consumes probe grants on
    /// whichever of the source-site / link breakers are on probation.
    pub fn commit_source(&mut self, src: SiteId, dst: SiteId, t: SimTime) {
        if self.sites[src.index()].commit(t, &self.config) {
            self.counters.probes_granted += 1;
        }
        if src != dst {
            if let Some(b) = self.links.get_mut(&(src, dst)) {
                if b.commit(t, &self.config) {
                    self.counters.probes_granted += 1;
                }
            }
        }
    }

    /// Fold one telemetry event into the relevant breaker.
    pub fn observe(&mut self, event: HealthEvent) {
        let failed = event.signal.is_failure();
        let config = self.config.clone();
        let breaker = match event.subject {
            HealthSubject::Site(site) => &mut self.sites[site.index()],
            HealthSubject::Link { src, dst } => {
                self.links.entry((src, dst)).or_insert_with(Breaker::new)
            }
        };
        if let Some(mut episode) = breaker.observe(event.at, failed, &config) {
            episode.subject = event.subject;
            self.counters.trips += 1;
            self.episodes.push(episode);
        }
    }

    /// Observe a transfer attempt over `src → dst`: scores the source
    /// site, the destination site, and (for remote paths) the link. The
    /// blame is deliberately symmetric — telemetry cannot see *which*
    /// component failed, only that the path did, exactly like production
    /// FTS error accounting.
    pub fn observe_attempt(&mut self, src: SiteId, dst: SiteId, at: SimTime, succeeded: bool) {
        let signal = if succeeded {
            HealthSignal::AttemptSucceeded
        } else {
            HealthSignal::AttemptFailed
        };
        self.observe(HealthEvent {
            subject: HealthSubject::Site(src),
            at,
            signal,
        });
        if src != dst {
            self.observe(HealthEvent {
                subject: HealthSubject::Site(dst),
                at,
                signal,
            });
            self.observe(HealthEvent {
                subject: HealthSubject::Link { src, dst },
                at,
                signal,
            });
        }
    }

    /// Observe a request that exhausted its retry budget on `src → dst`.
    pub fn observe_exhausted(&mut self, src: SiteId, dst: SiteId, at: SimTime) {
        self.observe(HealthEvent {
            subject: HealthSubject::Site(src),
            at,
            signal: HealthSignal::TransferExhausted,
        });
        if src != dst {
            self.observe(HealthEvent {
                subject: HealthSubject::Link { src, dst },
                at,
                signal: HealthSignal::TransferExhausted,
            });
        }
    }

    /// Snapshot the exclusion telemetry for export.
    pub fn summary(&self) -> HealthSummary {
        HealthSummary {
            episodes: self.episodes.clone(),
            counters: self.counters,
        }
    }

    /// Capture the full monitor state for a checkpoint. Canonical: link
    /// breakers are sorted by `(src, dst)`, so equal monitors always
    /// produce identical snapshots.
    pub fn snapshot(&self) -> HealthSnapshot {
        let mut links: Vec<((SiteId, SiteId), BreakerSnapshot)> =
            self.links.iter().map(|(&k, b)| (k, b.snapshot())).collect();
        links.sort_by_key(|&((s, d), _)| (s.index(), d.index()));
        HealthSnapshot {
            sites: self.sites.iter().map(Breaker::snapshot).collect(),
            links,
            episodes: self.episodes.clone(),
            counters: self.counters,
        }
    }

    /// Rebuild a monitor from a checkpoint. `config` comes from the
    /// scenario config of the resuming run, not the snapshot.
    pub fn restore(config: HealthConfig, snap: HealthSnapshot) -> Self {
        HealthMonitor {
            config,
            sites: snap.sites.into_iter().map(Breaker::from_snapshot).collect(),
            links: snap
                .links
                .into_iter()
                .map(|(k, b)| (k, Breaker::from_snapshot(b)))
                .collect(),
            episodes: snap.episodes,
            counters: snap.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig::adaptive(), 4)
    }

    fn fail(m: &mut HealthMonitor, site: SiteId, t: SimTime) {
        m.observe(HealthEvent {
            subject: HealthSubject::Site(site),
            at: t,
            signal: HealthSignal::AttemptFailed,
        });
    }

    fn succeed(m: &mut HealthMonitor, site: SiteId, t: SimTime) {
        m.observe(HealthEvent {
            subject: HealthSubject::Site(site),
            at: t,
            signal: HealthSignal::AttemptSucceeded,
        });
    }

    #[test]
    fn breaker_stays_closed_under_background_noise() {
        let mut m = monitor();
        let s = SiteId(1);
        // 8 % failures, the degraded-grid baseline: never trips.
        for i in 0..500 {
            let t = SimTime::from_secs(i * 10);
            if i % 13 == 0 {
                fail(&mut m, s, t);
            } else {
                succeed(&mut m, s, t);
            }
        }
        assert_eq!(
            m.site_state(s, SimTime::from_hours(2)),
            BreakerState::Closed
        );
        assert!(m.summary().episodes.is_empty());
    }

    #[test]
    fn consecutive_failures_open_the_breaker() {
        let mut m = monitor();
        let s = SiteId(2);
        for i in 0..4 {
            fail(&mut m, s, SimTime::from_secs(i * 5));
        }
        assert_eq!(m.site_state(s, SimTime::from_secs(20)), BreakerState::Open);
        assert!(!m.site_admits(s, SimTime::from_secs(25)));
        let summary = m.summary();
        assert_eq!(summary.episodes.len(), 1);
        assert_eq!(summary.counters.trips, 1);
        assert_eq!(summary.counters.site_refusals, 1);
    }

    #[test]
    fn failure_rate_opens_without_a_consecutive_run() {
        let mut m = monitor();
        let s = SiteId(0);
        // Alternate 3 fails / 1 success: 75 % ≥ the 70 % threshold, but
        // never 4 consecutive failures.
        for i in 0..12i64 {
            let t = SimTime::from_secs(i * 5);
            if i % 4 == 3 {
                succeed(&mut m, s, t);
            } else {
                fail(&mut m, s, t);
            }
        }
        assert_eq!(m.site_state(s, SimTime::from_secs(60)), BreakerState::Open);
    }

    #[test]
    fn cooldown_reaches_half_open_and_probes_are_bounded() {
        let mut m = monitor();
        let s = SiteId(1);
        for i in 0..4 {
            fail(&mut m, s, SimTime::from_secs(i));
        }
        let after = SimTime::from_secs(4) + m.config().cooldown;
        assert_eq!(m.site_state(s, after), BreakerState::HalfOpen);
        // Quota grants, then refusals.
        for _ in 0..m.config().probe_quota {
            assert!(m.site_admits(s, after));
            m.commit_site(s, after);
        }
        assert!(!m.site_admits(s, after));
        assert_eq!(m.summary().counters.probes_granted, 3);
    }

    #[test]
    fn probe_successes_reclose_and_probe_failure_reopens() {
        let mut m = monitor();
        let s = SiteId(1);
        for i in 0..4 {
            fail(&mut m, s, SimTime::from_secs(i));
        }
        let after = SimTime::from_secs(10) + m.config().cooldown;
        assert_eq!(m.site_state(s, after), BreakerState::HalfOpen);
        succeed(&mut m, s, after);
        succeed(&mut m, s, after + SimDuration::from_secs(5));
        assert_eq!(
            m.site_state(s, after + SimDuration::from_secs(6)),
            BreakerState::Closed
        );

        // Trip again; this time the probe fails → straight back to Open.
        for i in 0..4 {
            fail(&mut m, s, after + SimDuration::from_secs(10 + i));
        }
        let probation = after + SimDuration::from_secs(20) + m.config().cooldown;
        assert_eq!(m.site_state(s, probation), BreakerState::HalfOpen);
        fail(&mut m, s, probation);
        assert_eq!(m.site_state(s, probation), BreakerState::Open);
        assert_eq!(m.summary().counters.trips, 3);
        assert_eq!(m.summary().episodes.len(), 3);
    }

    #[test]
    fn open_windows_expire_from_the_sliding_window() {
        let mut m = monitor();
        let s = SiteId(3);
        // Three old failures, then much later a fourth: the window prune
        // plus the success-free gap means only consecutive-run logic could
        // trip — and the run was broken by a success.
        for i in 0..3 {
            fail(&mut m, s, SimTime::from_secs(i));
        }
        succeed(&mut m, s, SimTime::from_secs(10));
        fail(&mut m, s, SimTime::from_hours(3));
        assert_eq!(
            m.site_state(s, SimTime::from_hours(3)),
            BreakerState::Closed
        );
    }

    #[test]
    fn link_breakers_are_directed_and_independent_of_sites() {
        let mut m = monitor();
        let (a, b) = (SiteId(0), SiteId(1));
        for i in 0..4 {
            m.observe(HealthEvent {
                subject: HealthSubject::Link { src: a, dst: b },
                at: SimTime::from_secs(i),
                signal: HealthSignal::AttemptFailed,
            });
        }
        assert_eq!(
            m.link_state(a, b, SimTime::from_secs(5)),
            BreakerState::Open
        );
        assert_eq!(
            m.link_state(b, a, SimTime::from_secs(5)),
            BreakerState::Closed
        );
        assert_eq!(m.site_state(a, SimTime::from_secs(5)), BreakerState::Closed);
        // source_admits folds both site and link checks.
        assert!(!m.source_admits(a, b, SimTime::from_secs(5)));
        assert!(m.source_admits(b, a, SimTime::from_secs(5)));
    }

    #[test]
    fn observe_attempt_blames_path_components_symmetrically() {
        let mut m = monitor();
        let (src, dst) = (SiteId(2), SiteId(3));
        for i in 0..4 {
            m.observe_attempt(src, dst, SimTime::from_secs(i), false);
        }
        assert_eq!(m.site_state(src, SimTime::from_secs(5)), BreakerState::Open);
        assert_eq!(m.site_state(dst, SimTime::from_secs(5)), BreakerState::Open);
        assert_eq!(
            m.link_state(src, dst, SimTime::from_secs(5)),
            BreakerState::Open
        );
        // Local attempts only score the one site.
        let mut m2 = monitor();
        m2.observe_attempt(SiteId(0), SiteId(0), SimTime::EPOCH, false);
        assert!(m2.links.is_empty());
    }

    #[test]
    fn exhausted_requests_count_as_failures() {
        let mut m = monitor();
        let (src, dst) = (SiteId(0), SiteId(1));
        for i in 0..4 {
            m.observe_exhausted(src, dst, SimTime::from_secs(i));
        }
        assert_eq!(m.site_state(src, SimTime::from_secs(5)), BreakerState::Open);
        assert_eq!(
            m.link_state(src, dst, SimTime::from_secs(5)),
            BreakerState::Open
        );
    }

    #[test]
    fn summary_hours_clamp_to_window_end() {
        let mut m = monitor();
        let s = SiteId(1);
        for i in 0..4 {
            fail(&mut m, s, SimTime::from_secs(i));
        }
        let summary = m.summary();
        // Full cooldown = 1800 s = 0.5 h.
        let full = summary.excluded_site_hours(SimTime::from_hours(10));
        assert!((full - 0.5).abs() < 1e-6, "{full}");
        // Window ends 900 s after the trip → half the episode counts.
        let clamped = summary.excluded_site_hours(SimTime::from_secs(3 + 900));
        assert!((clamped - 0.25).abs() < 1e-6, "{clamped}");
        assert_eq!(summary.excluded_link_hours(SimTime::from_hours(10)), 0.0);
    }

    #[test]
    fn snapshot_restore_preserves_future_behavior() {
        // Build a monitor with one Open site, one HalfOpen site mid-probe,
        // a tripped link, and a Closed site with a partial failure run —
        // then check the restored monitor answers every future query the
        // same way the original does.
        let mut m = monitor();
        for i in 0..4 {
            fail(&mut m, SiteId(0), SimTime::from_secs(i)); // → Open
        }
        for i in 0..4 {
            fail(&mut m, SiteId(1), SimTime::from_secs(i));
        }
        let probation = SimTime::from_secs(3) + m.config().cooldown;
        assert_eq!(m.site_state(SiteId(1), probation), BreakerState::HalfOpen);
        m.commit_site(SiteId(1), probation); // one probe grant consumed
        for i in 0..2 {
            fail(&mut m, SiteId(2), SimTime::from_secs(100 + i)); // partial run
        }
        for i in 0..4 {
            m.observe(HealthEvent {
                subject: HealthSubject::Link {
                    src: SiteId(2),
                    dst: SiteId(3),
                },
                at: SimTime::from_secs(i),
                signal: HealthSignal::AttemptFailed,
            });
        }

        let snap = m.snapshot();
        let mut r = HealthMonitor::restore(m.config().clone(), snap.clone());
        assert_eq!(r.snapshot(), snap, "restore must be lossless");

        let t = probation + SimDuration::from_secs(1);
        for site in 0..4 {
            let s = SiteId(site);
            assert_eq!(m.site_state(s, t), r.site_state(s, t));
            assert_eq!(m.site_admits(s, t), r.site_admits(s, t));
        }
        assert_eq!(
            m.link_state(SiteId(2), SiteId(3), t),
            r.link_state(SiteId(2), SiteId(3), t)
        );
        // Two more failures trip the partially-run site in both monitors
        // at the same instant (consecutive_failures was checkpointed).
        for i in 0..2 {
            fail(&mut m, SiteId(2), t + SimDuration::from_secs(i));
            fail(&mut r, SiteId(2), t + SimDuration::from_secs(i));
        }
        assert_eq!(
            m.site_state(SiteId(2), t + SimDuration::from_secs(3)),
            r.site_state(SiteId(2), t + SimDuration::from_secs(3))
        );
        assert_eq!(m.summary().counters, r.summary().counters);
        assert_eq!(m.summary().episodes.len(), r.summary().episodes.len());
    }

    #[test]
    fn half_open_ignores_further_refused_traffic_scoring() {
        // Results observed while Open are ignored (that traffic was
        // forced through the only-replica rule); the breaker still
        // reaches probation on schedule.
        let mut m = monitor();
        let s = SiteId(1);
        for i in 0..4 {
            fail(&mut m, s, SimTime::from_secs(i));
        }
        succeed(&mut m, s, SimTime::from_secs(100));
        assert_eq!(m.site_state(s, SimTime::from_secs(101)), BreakerState::Open);
        let after = SimTime::from_secs(3) + m.config().cooldown;
        assert_eq!(m.site_state(s, after), BreakerState::HalfOpen);
    }
}
