//! The three record families the paper's query module retrieves.
//!
//! Field names deliberately track the paper's Algorithm 1 notation
//! (`pandaid`, `jeditaskid`, `lfn`, `dataset`, `proddblock`, `scope`,
//! `file_size`, `ninputfilebytes`, `noutputfilebytes`, `computingsite`,
//! `starttime`, `endtime`, `source_site`, `destination_site`,
//! `is_download`/`is_upload`).
//!
//! Fields prefixed `gt_` carry simulator ground truth that production
//! systems do not have. The matcher must never read them; the evaluator
//! uses them to score match precision/recall.

use crate::intern::Sym;
use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
use dmsa_rucio_sim::Activity;
use dmsa_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One completed PanDA job, as the query module reports it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// `pandaid`.
    pub pandaid: u64,
    /// `jeditaskid`.
    pub jeditaskid: u64,
    /// `computingsite` (interned site name).
    pub computingsite: Sym,
    /// Creation instant.
    pub creationtime: SimTime,
    /// Execution start.
    pub starttime: SimTime,
    /// Completion.
    pub endtime: SimTime,
    /// Σ input file sizes.
    pub ninputfilebytes: u64,
    /// Σ output file sizes.
    pub noutputfilebytes: u64,
    /// Stage-in vs direct I/O.
    pub io_mode: IoMode,
    /// Final job status.
    pub status: JobStatus,
    /// Final status of the owning task.
    pub task_status: TaskStatus,
    /// Error code when failed.
    pub error_code: Option<u32>,
    /// User analysis (true) vs production (false). The paper's §5 queries
    /// user jobs only.
    pub is_user_analysis: bool,
}

impl JobRecord {
    /// Queuing duration.
    pub fn queuing_time(&self) -> SimDuration {
        (self.starttime - self.creationtime).clamp_non_negative()
    }

    /// Wall duration.
    pub fn wall_time(&self) -> SimDuration {
        (self.endtime - self.starttime).clamp_non_negative()
    }
}

/// Whether a file-table row is an input or output of its job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FileDirection {
    /// Input of the job.
    Input,
    /// Output of the job.
    Output,
}

/// One row of PanDA's per-job file table — the bridge Algorithm 1 walks
/// from jobs to transfers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileRecord {
    /// Owning job.
    pub pandaid: u64,
    /// Owning task.
    pub jeditaskid: u64,
    /// Logical file name (interned).
    pub lfn: Sym,
    /// Dataset DID name (interned).
    pub dataset: Sym,
    /// Production block (interned).
    pub proddblock: Sym,
    /// Scope (interned).
    pub scope: Sym,
    /// Exact file size in bytes.
    pub file_size: u64,
    /// Input or output of the job.
    pub direction: FileDirection,
}

/// One Rucio file-transfer event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Event identifier.
    pub transfer_id: u64,
    /// Logical file name (interned).
    pub lfn: Sym,
    /// Dataset DID name (interned).
    pub dataset: Sym,
    /// Production block (interned).
    pub proddblock: Sym,
    /// Scope (interned).
    pub scope: Sym,
    /// Recorded size in bytes (may be jittered by corruption).
    pub file_size: u64,
    /// Transfer start.
    pub starttime: SimTime,
    /// Transfer end.
    pub endtime: SimTime,
    /// Recorded source site (may be `UNKNOWN` or invalid).
    pub source_site: Sym,
    /// Recorded destination site (may be `UNKNOWN` or invalid).
    pub destination_site: Sym,
    /// Transfer activity class.
    pub activity: Activity,
    /// `jeditaskid` when recorded (job-driven activities only; may be
    /// dropped by corruption).
    pub jeditaskid: Option<u64>,
    /// Moves data *to* the computing site.
    pub is_download: bool,
    /// Moves data *from* the computing site.
    pub is_upload: bool,
    /// 1-based attempt ordinal as Rucio would record it (retries of the
    /// same request share lfn/size/destination but bump this; may be
    /// cleared to the default by corruption).
    #[serde(default = "default_attempt")]
    pub attempt: u32,
    /// Did this attempt deliver the file? Failed attempts are the
    /// retry-induced redundant transfers of §5.2.
    #[serde(default = "default_succeeded")]
    pub succeeded: bool,
    /// Ground truth: the job that caused this transfer.
    pub gt_pandaid: Option<u64>,
    /// Ground truth: true source site.
    pub gt_source_site: Sym,
    /// Ground truth: true destination site.
    pub gt_destination_site: Sym,
    /// Ground truth: true size before any jitter.
    pub gt_file_size: u64,
}

/// Serde default for [`TransferRecord::attempt`]: pre-retry exports
/// carried only first attempts. Public because it is part of the record
/// schema contract (the offline derive stub does not reference
/// `#[serde(default = ...)]` targets, so a private fn would lint dead).
pub fn default_attempt() -> u32 {
    1
}

/// Serde default for [`TransferRecord::succeeded`]: pre-retry exports
/// carried only delivered transfers. Public for the same reason as
/// [`default_attempt`].
pub fn default_succeeded() -> bool {
    true
}

impl TransferRecord {
    /// A retry attempt (not the first try of its request)?
    pub fn is_retry(&self) -> bool {
        self.attempt > 1
    }

    /// Duration of the transfer.
    pub fn duration(&self) -> SimDuration {
        (self.endtime - self.starttime).clamp_non_negative()
    }

    /// Recorded mean throughput in bytes/second.
    pub fn throughput_bytes_per_sec(&self) -> f64 {
        self.file_size as f64 / self.duration().as_secs_f64().max(1e-3)
    }

    /// Local per the *recorded* sites (what the paper's Table 2a counts).
    pub fn recorded_local(&self) -> bool {
        self.source_site == self.destination_site
    }

    /// Local per ground truth.
    pub fn gt_local(&self) -> bool {
        self.gt_source_site == self.gt_destination_site
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer() -> TransferRecord {
        TransferRecord {
            transfer_id: 1,
            lfn: Sym(1),
            dataset: Sym(2),
            proddblock: Sym(3),
            scope: Sym(4),
            file_size: 1_000_000,
            starttime: SimTime::from_secs(0),
            endtime: SimTime::from_secs(10),
            source_site: Sym(5),
            destination_site: Sym(5),
            activity: Activity::AnalysisDownload,
            jeditaskid: Some(9),
            is_download: true,
            is_upload: false,
            attempt: 1,
            succeeded: true,
            gt_pandaid: Some(77),
            gt_source_site: Sym(5),
            gt_destination_site: Sym(6),
            gt_file_size: 1_000_000,
        }
    }

    #[test]
    fn throughput_and_duration() {
        let t = transfer();
        assert_eq!(t.duration(), SimDuration::from_secs(10));
        assert!((t.throughput_bytes_per_sec() - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn recorded_vs_ground_truth_locality_can_differ() {
        let t = transfer();
        assert!(t.recorded_local());
        assert!(!t.gt_local(), "corruption can fake locality");
    }

    #[test]
    fn job_record_durations() {
        let j = JobRecord {
            pandaid: 1,
            jeditaskid: 2,
            computingsite: Sym(1),
            creationtime: SimTime::from_secs(0),
            starttime: SimTime::from_secs(60),
            endtime: SimTime::from_secs(160),
            ninputfilebytes: 0,
            noutputfilebytes: 0,
            io_mode: IoMode::StageIn,
            status: JobStatus::Finished,
            task_status: TaskStatus::Done,
            error_code: None,
            is_user_analysis: true,
        };
        assert_eq!(j.queuing_time(), SimDuration::from_secs(60));
        assert_eq!(j.wall_time(), SimDuration::from_secs(100));
    }
}
