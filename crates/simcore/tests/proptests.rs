//! Property tests for the simulation primitives.

use dmsa_simcore::interval::{merge, union_len_within, Interval};
use dmsa_simcore::stats::{geometric_mean, mean, percentile, OnlineStats};
use dmsa_simcore::{EventQueue, QueueBackend, SimDuration, SimTime};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0i64..2_000, 0i64..500)
        .prop_map(|(a, len)| Interval::new(SimTime::from_millis(a), SimTime::from_millis(a + len)))
}

/// Brute-force union length: count covered milliseconds one by one.
fn union_len_brute(intervals: &[Interval], window: Interval) -> i64 {
    let mut covered = 0;
    for ms in window.start.as_millis()..window.end.as_millis() {
        let t = SimTime::from_millis(ms);
        if intervals.iter().any(|iv| iv.contains(t)) {
            covered += 1;
        }
    }
    covered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_len_matches_brute_force(
        intervals in prop::collection::vec(interval_strategy(), 0..12),
        win_start in 0i64..1_000,
        win_len in 0i64..800,
    ) {
        let window = Interval::new(
            SimTime::from_millis(win_start),
            SimTime::from_millis(win_start + win_len),
        );
        let fast = union_len_within(&intervals, window).as_millis();
        let brute = union_len_brute(&intervals, window);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn merge_output_is_disjoint_sorted_and_preserves_union(
        intervals in prop::collection::vec(interval_strategy(), 0..12),
    ) {
        let merged = merge(&intervals);
        // Sorted, disjoint, non-empty members.
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start, "not disjoint: {:?}", w);
        }
        for iv in &merged {
            prop_assert!(!iv.is_empty());
        }
        // Union length is preserved.
        let window = Interval::new(SimTime::from_millis(0), SimTime::from_millis(4_000));
        prop_assert_eq!(
            union_len_within(&intervals, window),
            union_len_within(&merged, window)
        );
    }

    #[test]
    fn event_queue_equals_stable_sort(
        times in prop::collection::vec(0i64..1_000, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut expected: Vec<(i64, usize)> =
            times.iter().copied().zip(0..).collect();
        // Stable sort by time == FIFO among equal timestamps.
        expected.sort_by_key(|&(t, _)| t);
        let got: Vec<(i64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_millis(), i)).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn queue_clock_is_monotone_under_interleaving(
        ops in prop::collection::vec((0i64..500, any::<bool>()), 1..64),
    ) {
        let mut q = EventQueue::new();
        let mut last = SimTime::EPOCH;
        for &(dt, push) in &ops {
            if push || q.is_empty() {
                q.push(q.now() + SimDuration::from_millis(dt), ());
            } else if let Some((t, ())) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn percentile_is_bounded_and_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let lo = p1.min(p2);
        let hi = p1.max(p2);
        let vlo = percentile(&xs, lo).unwrap();
        let vhi = percentile(&xs, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(vlo >= min - 1e-9 && vhi <= max + 1e-9);
    }

    #[test]
    fn am_gm_inequality(xs in prop::collection::vec(1e-3f64..1e6, 1..50)) {
        let am = mean(&xs).unwrap();
        let gm = geometric_mean(&xs).unwrap();
        prop_assert!(am >= gm * (1.0 - 1e-12), "AM {am} < GM {gm}");
    }

    #[test]
    fn online_stats_merge_is_order_independent(
        xs in prop::collection::vec(-1e3f64..1e3, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let (a, b) = xs.split_at(split);
        let fold = |slice: &[f64]| {
            let mut s = OnlineStats::new();
            for &x in slice {
                s.add(x);
            }
            s
        };
        let mut ab = fold(a);
        ab.merge(&fold(b));
        let mut ba = fold(b);
        ba.merge(&fold(a));
        prop_assert_eq!(ab.count(), ba.count());
        if let (Some(m1), Some(m2)) = (ab.mean(), ba.mean()) {
            prop_assert!((m1 - m2).abs() < 1e-9);
        }
        if let (Some(v1), Some(v2)) = (ab.variance(), ba.variance()) {
            prop_assert!((v1 - v2).abs() < 1e-6);
        }
    }
}

// ---------------------------------------------------------------------------
// Calendar queue vs reference binary heap: the two backends must be
// observationally identical — same pop order (FIFO among equal
// timestamps included) and byte-identical checkpoint images.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of pushes and pops (with deliberately heavy
    /// timestamp collisions from the tiny time range) pop identically
    /// from both backends, down to the last event.
    #[test]
    fn calendar_and_heap_backends_pop_identically(
        ops in prop::collection::vec((0i64..25, prop::bool::weighted(0.4)), 1..120),
    ) {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut next = 0u32;
        for &(gap, pop_now) in &ops {
            // Push relative to the consumed clock so time never regresses.
            let at = cal.now() + SimDuration::from_millis(gap);
            cal.push(at, next);
            heap.push(at, next);
            next += 1;
            if pop_now {
                prop_assert_eq!(cal.pop(), heap.pop());
                prop_assert_eq!(cal.now(), heap.now());
            }
        }
        loop {
            let a = cal.pop();
            prop_assert_eq!(a, heap.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// Same-tick ties drain in push (FIFO) order on both backends.
    #[test]
    fn same_tick_ties_are_fifo_on_both_backends(
        n in 1usize..40,
        t in 0i64..1_000,
    ) {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            let at = SimTime::from_millis(t);
            for i in 0..n {
                q.push(at, i);
            }
            for i in 0..n {
                prop_assert_eq!(q.pop(), Some((at, i)));
            }
            prop_assert!(q.pop().is_none());
        }
    }

    /// `snapshot_entries` → `restore_with_backend` round-trips onto
    /// either backend: the restored queue snapshots byte-identically and
    /// drains exactly like the original.
    #[test]
    fn restore_round_trips_on_both_backends(
        gaps in prop::collection::vec(0i64..20, 1..60),
        pops in 0usize..20,
        onto_heap in any::<bool>(),
    ) {
        let mut q = EventQueue::new();
        for (i, &gap) in gaps.iter().enumerate() {
            let at = q.now() + SimDuration::from_millis(gap);
            q.push(at, i as u32);
        }
        for _ in 0..pops.min(gaps.len()) {
            q.pop();
        }
        let entries: Vec<(SimTime, u64, u32)> = q
            .snapshot_entries()
            .into_iter()
            .map(|(t, s, &e)| (t, s, e))
            .collect();
        let backend = if onto_heap {
            QueueBackend::BinaryHeap
        } else {
            QueueBackend::Calendar
        };
        let mut r =
            EventQueue::restore_with_backend(entries.clone(), q.next_seq(), q.now(), backend);
        prop_assert_eq!(r.backend(), backend);
        prop_assert_eq!(r.next_seq(), q.next_seq());
        prop_assert_eq!(r.now(), q.now());
        // Identical canonical checkpoint image...
        let reimage: Vec<(SimTime, u64, u32)> = r
            .snapshot_entries()
            .into_iter()
            .map(|(t, s, &e)| (t, s, e))
            .collect();
        prop_assert_eq!(&reimage, &entries);
        // ...and an identical drain.
        loop {
            let a = q.pop();
            prop_assert_eq!(a, r.pop());
            if a.is_none() {
                break;
            }
        }
    }
}
