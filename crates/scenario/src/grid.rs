//! Config-grid expansion for ablation sweeps.
//!
//! A [`SweepGrid`] declares the axes of an experiment — scenario presets
//! × seeds × fault rates × breaker settings — and [`SweepGrid::expand`]
//! materializes the full factorial product as [`GridCell`]s. Each cell
//! carries two configs: `base` (preset + seed, swept knobs *not*
//! applied) and `config` (swept knobs applied). The pair is what makes
//! checkpoint warm-starts legal: cells sharing a `base` share the
//! campaign prefix exactly, so a sweep pays the prefix once per
//! `(preset, seed)` group and each cell continues via
//! [`crate::driver::fork_with_config`] — its swept knobs taking effect
//! from the divergence time, identically to a standalone
//! [`crate::driver::run_forked`] of the same pair.
//!
//! Expansion is pure and deterministic: the same grid always yields the
//! same cells in the same order, with stable labels usable as file
//! names (`faulty-s7-fp0.15-brkadp600`).

use crate::config::ScenarioConfig;
use dmsa_gridnet::HealthConfig;
use dmsa_simcore::SimDuration;

/// One point on the breaker axis.
#[derive(Clone, Debug, PartialEq)]
pub enum BreakerSetting {
    /// Health loop disarmed (open-loop baseline).
    Off,
    /// Health loop armed with [`HealthConfig::adaptive`] thresholds,
    /// optionally overriding the open-state cooldown.
    Adaptive {
        /// Cooldown override in seconds; `None` keeps the adaptive
        /// preset's cooldown.
        cooldown_secs: Option<i64>,
    },
}

impl BreakerSetting {
    /// Stable label segment (also the knob value in aggregation keys).
    pub fn label(&self) -> String {
        match self {
            BreakerSetting::Off => "off".into(),
            BreakerSetting::Adaptive {
                cooldown_secs: None,
            } => "adp".into(),
            BreakerSetting::Adaptive {
                cooldown_secs: Some(s),
            } => format!("adp{s}"),
        }
    }

    fn apply(&self, config: &mut ScenarioConfig) {
        match self {
            BreakerSetting::Off => config.health = HealthConfig::default(),
            BreakerSetting::Adaptive { cooldown_secs } => {
                config.health = HealthConfig::adaptive();
                if let Some(s) = cooldown_secs {
                    config.health.cooldown = SimDuration::from_secs(*s);
                }
            }
        }
    }
}

/// One point on the preset axis: a named base config. The name is the
/// label prefix; the config supplies everything a swept knob does not
/// override.
#[derive(Clone, Debug)]
pub struct PresetAxis {
    pub name: String,
    pub base: ScenarioConfig,
}

/// The declared axes of a sweep. `seeds` and `presets` must be
/// non-empty; an empty knob axis means "inherit the preset's value"
/// (the axis contributes no label segment and no aggregation knob).
#[derive(Clone, Debug)]
pub struct SweepGrid {
    pub presets: Vec<PresetAxis>,
    pub seeds: Vec<u64>,
    /// Per-attempt transfer failure probabilities.
    pub fail_probs: Vec<f64>,
    /// Breaker settings.
    pub breakers: Vec<BreakerSetting>,
}

/// One materialized cell of the grid.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Stable, filesystem-safe identity, e.g. `faulty-s7-fp0.15-brkadp`.
    pub label: String,
    pub seed: u64,
    /// Preset + seed only — the config whose campaign prefix this cell
    /// shares with every other cell of the same `(preset, seed)` group.
    pub base: ScenarioConfig,
    /// `base` with the swept knobs applied — what the cell actually
    /// runs (from t=0 when cold, from the divergence time when
    /// warm-started).
    pub config: ScenarioConfig,
    /// `(axis, value)` pairs for cross-cell aggregation, e.g.
    /// `[("preset","faulty"), ("seed","7"), ("fail_prob","0.15"),
    /// ("breaker","adp")]`.
    pub knobs: Vec<(String, String)>,
}

impl GridCell {
    /// The value of one aggregation axis, if this grid swept it.
    pub fn knob(&self, axis: &str) -> Option<&str> {
        self.knobs
            .iter()
            .find(|(k, _)| k == axis)
            .map(|(_, v)| v.as_str())
    }
}

impl SweepGrid {
    /// Number of cells [`expand`](Self::expand) will produce.
    pub fn n_cells(&self) -> usize {
        self.presets.len()
            * self.seeds.len()
            * self.fail_probs.len().max(1)
            * self.breakers.len().max(1)
    }

    /// Order- and content-sensitive identity of this grid: a hash over
    /// every expanded cell's `(label, behavior fingerprint)`. Two grids
    /// fingerprint equal iff they expand to the same cells running the
    /// same behaviors in the same order — the gate a sweep journal uses
    /// to decide whether its records describe *this* sweep. Errors on
    /// the same degenerate grids [`expand`](Self::expand) rejects.
    pub fn fingerprint(&self) -> Result<u64, String> {
        let mut acc = String::new();
        for cell in self.expand()? {
            acc.push_str(&cell.label);
            acc.push('\t');
            acc.push_str(&format!("{:016x}", cell.config.behavior_fingerprint()));
            acc.push('\n');
        }
        Ok(dmsa_simcore::fx::hash_bytes(acc.as_bytes()))
    }

    /// Materialize the full factorial product, in deterministic order
    /// (presets outermost, breakers innermost). Labels are unique by
    /// construction: every swept axis contributes a segment, and
    /// duplicate axis values are rejected.
    pub fn expand(&self) -> Result<Vec<GridCell>, String> {
        if self.presets.is_empty() {
            return Err("sweep grid has no presets".into());
        }
        if self.seeds.is_empty() {
            return Err("sweep grid has no seeds".into());
        }
        for (name, dup) in [
            ("seeds", has_dup(&self.seeds)),
            ("fail-probs", has_dup(&self.fail_probs)),
            (
                "breakers",
                has_dup(&self.breakers.iter().map(|b| b.label()).collect::<Vec<_>>()),
            ),
            (
                "presets",
                has_dup(
                    &self
                        .presets
                        .iter()
                        .map(|p| p.name.clone())
                        .collect::<Vec<_>>(),
                ),
            ),
        ] {
            if dup {
                return Err(format!("sweep grid {name} axis repeats a value"));
            }
        }
        let mut cells = Vec::with_capacity(self.n_cells());
        for preset in &self.presets {
            for &seed in &self.seeds {
                let mut base = preset.base.clone();
                base.seed = seed;
                // An absent axis iterates once with `None`: no label
                // segment, no knob, preset value untouched.
                for fp in opt_axis(&self.fail_probs) {
                    for brk in opt_axis(&self.breakers) {
                        let mut config = base.clone();
                        let mut label = format!("{}-s{seed}", preset.name);
                        let mut knobs = vec![
                            ("preset".to_string(), preset.name.clone()),
                            ("seed".to_string(), seed.to_string()),
                        ];
                        if let Some(fp) = fp {
                            config.faults.p_attempt_failure = *fp;
                            label.push_str(&format!("-fp{fp}"));
                            knobs.push(("fail_prob".to_string(), fp.to_string()));
                        }
                        if let Some(brk) = brk {
                            brk.apply(&mut config);
                            label.push_str(&format!("-brk{}", brk.label()));
                            knobs.push(("breaker".to_string(), brk.label()));
                        }
                        cells.push(GridCell {
                            label,
                            seed,
                            base: base.clone(),
                            config,
                            knobs,
                        });
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// Iterate an optional axis: every value when declared, one `None` pass
/// when absent.
fn opt_axis<T>(axis: &[T]) -> impl Iterator<Item = Option<&T>> {
    let absent = axis.is_empty();
    axis.iter()
        .map(Some)
        .chain(std::iter::once(None).filter(move |_| absent))
}

fn has_dup<T: PartialEq>(xs: &[T]) -> bool {
    xs.iter()
        .enumerate()
        .any(|(i, x)| xs[..i].iter().any(|y| y == x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid {
            presets: vec![PresetAxis {
                name: "faulty".into(),
                base: ScenarioConfig::small_faulty(),
            }],
            seeds: vec![1, 7],
            fail_probs: vec![0.05, 0.15],
            breakers: vec![
                BreakerSetting::Off,
                BreakerSetting::Adaptive {
                    cooldown_secs: Some(600),
                },
            ],
        }
    }

    #[test]
    fn expansion_is_the_full_factorial_product_with_unique_labels() {
        let cells = grid().expand().unwrap();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells.len(), grid().n_cells());
        let mut labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8, "labels collide");
        assert!(cells
            .iter()
            .any(|c| c.label == "faulty-s7-fp0.15-brkadp600"));
    }

    #[test]
    fn cells_apply_knobs_to_config_but_not_base() {
        for c in grid().expand().unwrap() {
            assert_eq!(c.base.seed, c.seed);
            assert_eq!(c.config.seed, c.seed);
            // base keeps the preset's knob values...
            assert_eq!(
                c.base.faults.p_attempt_failure,
                ScenarioConfig::small_faulty().faults.p_attempt_failure
            );
            assert!(!c.base.health.enabled);
            // ...config carries the swept ones.
            let fp: f64 = c.knob("fail_prob").unwrap().parse().unwrap();
            assert_eq!(c.config.faults.p_attempt_failure, fp);
            let armed = c.knob("breaker").unwrap() != "off";
            assert_eq!(c.config.health.enabled, armed);
            if armed {
                assert_eq!(c.config.health.cooldown, SimDuration::from_secs(600));
            }
            // The fork invariant: swept knobs never touch structure.
            assert_eq!(
                c.base.structural_fingerprint(),
                c.config.structural_fingerprint()
            );
        }
    }

    #[test]
    fn absent_axes_inherit_the_preset_and_add_no_label_segment() {
        let g = SweepGrid {
            fail_probs: vec![],
            breakers: vec![],
            ..grid()
        };
        let cells = g.expand().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].label, "faulty-s1");
        assert_eq!(cells[0].knob("fail_prob"), None);
        assert_eq!(
            cells[0].config.faults.p_attempt_failure,
            ScenarioConfig::small_faulty().faults.p_attempt_failure
        );
    }

    #[test]
    fn degenerate_and_duplicate_grids_are_rejected() {
        assert!(SweepGrid {
            seeds: vec![],
            ..grid()
        }
        .expand()
        .is_err());
        assert!(SweepGrid {
            presets: vec![],
            ..grid()
        }
        .expand()
        .is_err());
        let err = SweepGrid {
            seeds: vec![3, 3],
            ..grid()
        }
        .expand()
        .unwrap_err();
        assert!(err.contains("seeds"), "{err}");
        assert!(SweepGrid {
            fail_probs: vec![0.1, 0.1],
            ..grid()
        }
        .expand()
        .is_err());
    }

    #[test]
    fn fingerprint_tracks_grid_identity() {
        let a = grid().fingerprint().unwrap();
        assert_eq!(a, grid().fingerprint().unwrap(), "not deterministic");
        // Any axis change moves the fingerprint...
        let mut g = grid();
        g.seeds = vec![1, 8];
        assert_ne!(a, g.fingerprint().unwrap());
        let mut g = grid();
        g.fail_probs = vec![0.05, 0.16];
        assert_ne!(a, g.fingerprint().unwrap());
        // ...and so does axis *order* (cells would land in other slots).
        let mut g = grid();
        g.seeds = vec![7, 1];
        assert_ne!(a, g.fingerprint().unwrap());
        // Degenerate grids error rather than fingerprinting.
        assert!(SweepGrid {
            seeds: vec![],
            ..grid()
        }
        .fingerprint()
        .is_err());
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = grid().expand().unwrap();
        let b = grid().expand().unwrap();
        let fmt = |cells: &[GridCell]| format!("{cells:?}");
        assert_eq!(fmt(&a), fmt(&b));
    }
}
