//! # dmsa-gridnet
//!
//! A WLCG-like grid substrate: tiered computing sites (Tier-0 … Tier-3, §2.1
//! of the paper), storage elements, and site-to-site links whose *effective*
//! bandwidth fluctuates over time.
//!
//! The paper's analyses hinge on two properties of the real grid that this
//! crate reproduces:
//!
//! 1. **Spatial imbalance** (Fig 3): a handful of site pairs — mostly the
//!    diagonal (local transfers) at T0/T1 hubs — carry petabytes while the
//!    median pair carries almost nothing. We get this from a tiered topology
//!    with heavy-tailed per-site activity weights.
//! 2. **Temporal variability** (Fig 7, Fig 8): effective throughput on a
//!    given link fluctuates by an order of magnitude within hours, and is
//!    *asymmetric* between the two directions of the same site pair. We get
//!    this from a deterministic, seeded noise process per (directed link,
//!    time bucket) composed with a diurnal load curve and rare deep
//!    congestion events.
//!
//! Bandwidth is a pure function of `(master seed, directed link, time)` —
//! no mutable state — so any component may query it at any time and the
//! whole campaign stays reproducible.

pub mod bandwidth;
pub mod config;
pub mod faults;
pub mod health;
pub mod site;
pub mod topology;

pub use bandwidth::BandwidthModel;
pub use config::TopologyConfig;
pub use faults::{FaultConfig, FaultModel};
pub use health::{
    BreakerSnapshot, BreakerState, HealthConfig, HealthCounters, HealthEvent, HealthMonitor,
    HealthSignal, HealthSnapshot, HealthSubject, HealthSummary, OpenEpisode,
};
pub use site::{Rse, RseId, RseKind, Site, SiteId, Tier};
pub use topology::GridTopology;
