//! Stable discrete-event queue.
//!
//! Delivers events in non-decreasing timestamp order and — crucially for
//! reproducibility — **FIFO among events scheduled for the same instant**.
//! Every entry carries a monotonically increasing sequence number used as
//! the tiebreaker, so delivery order is the total order on `(time, seq)`.
//!
//! Two interchangeable backends implement that contract:
//!
//! * [`QueueBackend::Calendar`] (the default) — a three-level calendar
//!   queue (hierarchical timing wheel). Each level is a ring of 4096 FIFO
//!   lanes; level 0 lanes cover a single millisecond tick, level 1 lanes a
//!   4096 ms block, level 2 lanes a ~4.66 h block, and a sorted overflow
//!   heap catches anything beyond the ~2.2-year level-2 horizon. Push and
//!   pop are O(1) amortized: a pop takes the front of the first occupied
//!   tick lane (found via occupancy bitmaps), and events only move when a
//!   coarse lane's window opens and it cascades one level down. Because a
//!   tick lane is exactly one timestamp, FIFO order *is* append order — no
//!   comparisons on the hot path.
//! * [`QueueBackend::BinaryHeap`] — the original `std::collections::BinaryHeap`
//!   over `(time, seq)` entries, kept as the reference implementation for
//!   differential tests and the `bench_sim` before/after comparison.
//!
//! Both backends produce identical pop sequences, identical
//! [`EventQueue::snapshot_entries`] output, and honour the same
//! [`EventQueue::restore`] contract, so checkpoints are byte-identical
//! regardless of backend.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which event-queue implementation backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Three-level calendar queue with per-tick FIFO lanes (the fast path).
    #[default]
    Calendar,
    /// The original binary-heap implementation (reference/baseline).
    BinaryHeap,
}

// ---------------------------------------------------------------------------
// Calendar backend
// ---------------------------------------------------------------------------

/// Bits per wheel level: 4096 lanes each.
const LB: u32 = 12;
/// Lanes per level.
const SLOTS: usize = 1 << LB;
/// Lane-index mask.
const MASK: i64 = SLOTS as i64 - 1;
/// `u64` words in one occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// Occupancy bitmap over one level's 4096 lanes, with a one-word summary
/// (bit `w` set ⇔ word `w` non-zero) so the first occupied lane is found
/// in two `trailing_zeros` calls.
struct Bitmap {
    words: [u64; WORDS],
    summary: u64,
}

impl Bitmap {
    fn new() -> Self {
        Bitmap {
            words: [0; WORDS],
            summary: 0,
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
        self.summary |= 1 << (i / 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        let w = i / 64;
        self.words[w] &= !(1 << (i % 64));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// Index of the first occupied lane, if any.
    #[inline]
    fn first(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let w = self.summary.trailing_zeros() as usize;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }
}

/// One FIFO lane: a `VecDeque` so the front pops in O(1) while the ring
/// buffer keeps its allocation across wheel revolutions.
type Lane<E> = std::collections::VecDeque<Entry<E>>;

struct Level<E> {
    lanes: Box<[Lane<E>]>,
    map: Bitmap,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            lanes: (0..SLOTS).map(|_| Lane::new()).collect(),
            map: Bitmap::new(),
        }
    }

    #[inline]
    fn push(&mut self, slot: usize, entry: Entry<E>) {
        self.lanes[slot].push_back(entry);
        self.map.set(slot);
    }
}

/// The calendar queue proper.
///
/// Window invariant: level ℓ holds exactly the entries whose time `t`
/// satisfies `t >> ((ℓ+1)·12) == blocks[ℓ]` and which do not fit a finer
/// level; `blocks` only ever advances, and an entry is inserted at the
/// finest level whose current window contains it. Pops drain level 0 in
/// lane order; when level 0 empties, the next occupied coarser lane
/// cascades down, preserving stored (push) order. Since stored order is
/// seq order among equal timestamps at every level (pushes arrive in seq
/// order, cascades preserve order, overflow drains in `(time, seq)` heap
/// order), a tick lane is always FIFO-correct without sorting.
struct Calendar<E> {
    levels: [Level<E>; 3],
    /// Current aligned window per level: `blocks[ℓ] = t >> ((ℓ+1)·12)` for
    /// every `t` the level may currently hold.
    blocks: [i64; 3],
    /// Entries beyond the level-2 horizon, sorted by `(time, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
}

impl<E> Calendar<E> {
    fn new(now: SimTime) -> Self {
        let t = now.as_millis();
        Calendar {
            levels: [Level::new(), Level::new(), Level::new()],
            blocks: [t >> LB, t >> (2 * LB), t >> (3 * LB)],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn insert(&mut self, entry: Entry<E>) {
        let t = entry.time.as_millis();
        if t >> LB == self.blocks[0] {
            self.levels[0].push((t & MASK) as usize, entry);
        } else if t >> (2 * LB) == self.blocks[1] {
            self.levels[1].push(((t >> LB) & MASK) as usize, entry);
        } else if t >> (3 * LB) == self.blocks[2] {
            self.levels[2].push(((t >> (2 * LB)) & MASK) as usize, entry);
        } else {
            self.overflow.push(entry);
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Hot path: first occupied tick lane, FIFO front.
            if let Some(s) = self.levels[0].map.first() {
                let lane = &mut self.levels[0].lanes[s];
                let entry = lane.pop_front().expect("occupied lane");
                if lane.is_empty() {
                    self.levels[0].map.clear(s);
                }
                self.len -= 1;
                return Some(entry);
            }
            // Level 0 exhausted: open the next occupied level-1 lane.
            if let Some(j) = self.levels[1].map.first() {
                self.blocks[0] = (self.blocks[1] << LB) | j as i64;
                self.levels[1].map.clear(j);
                let [l0, l1, _] = &mut self.levels;
                for e in l1.lanes[j].drain(..) {
                    let s = (e.time.as_millis() & MASK) as usize;
                    l0.push(s, e);
                }
                continue;
            }
            // Level 1 exhausted: open the next occupied level-2 lane.
            if let Some(k) = self.levels[2].map.first() {
                self.blocks[1] = (self.blocks[2] << LB) | k as i64;
                self.levels[2].map.clear(k);
                let [_, l1, l2] = &mut self.levels;
                for e in l2.lanes[k].drain(..) {
                    let s = ((e.time.as_millis() >> LB) & MASK) as usize;
                    l1.push(s, e);
                }
                continue;
            }
            // Wheel fully drained (len > 0 ⇒ overflow non-empty): open the
            // overflow's earliest level-2 window. The heap yields (time,
            // seq) order, so lanes fill FIFO-correct.
            let top = self.overflow.peek().expect("len > 0 with empty wheel");
            self.blocks[2] = top.time.as_millis() >> (3 * LB);
            while let Some(top) = self.overflow.peek() {
                if top.time.as_millis() >> (3 * LB) != self.blocks[2] {
                    break;
                }
                let e = self.overflow.pop().expect("peeked entry");
                let s = ((e.time.as_millis() >> (2 * LB)) & MASK) as usize;
                self.levels[2].push(s, e);
            }
        }
    }

    /// Earliest pending `(time)` without mutating any window state.
    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(s) = self.levels[0].map.first() {
            // A tick lane is a single timestamp.
            return Some(SimTime::from_millis((self.blocks[0] << LB) | s as i64));
        }
        for level in self.levels.iter().skip(1) {
            if let Some(j) = level.map.first() {
                // Coarse lanes hold several ticks in push (not time) order.
                let t = level.lanes[j]
                    .iter()
                    .map(|e| e.time)
                    .min()
                    .expect("occupied lane");
                return Some(t);
            }
        }
        self.overflow.peek().map(|e| e.time)
    }

    fn iter(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.levels
            .iter()
            .flat_map(|level| level.lanes.iter().flat_map(|lane| lane.iter()))
            .chain(self.overflow.iter())
            .map(|e| (e.time, e.seq, &e.event))
    }
}

// ---------------------------------------------------------------------------
// Public queue
// ---------------------------------------------------------------------------

enum Backend<E> {
    // Boxed: the calendar's bucket array dwarfs the heap variant.
    Calendar(Box<Calendar<E>>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic discrete-event queue.
///
/// ```
/// use dmsa_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(10), "b");
/// q.push(SimTime::from_secs(5), "a");
/// q.push(SimTime::from_secs(10), "c"); // same time as "b": FIFO
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at the epoch (calendar backend).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Calendar)
    }

    /// Create an empty queue positioned at the epoch on a chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Calendar => {
                    Backend::Calendar(Box::new(Calendar::new(SimTime::EPOCH)))
                }
                QueueBackend::BinaryHeap => Backend::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// Create an empty queue with pre-allocated capacity (calendar
    /// backend; the hint sizes the heap on the heap backend and is
    /// otherwise advisory).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        if let Backend::Heap(heap) = &mut q.backend {
            heap.reserve(cap);
        }
        q
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Calendar(_) => QueueBackend::Calendar,
            Backend::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a logic
    /// error in the caller; debug builds panic, release builds clamp to
    /// "now" so the simulation still makes forward progress.
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time:?} before current time {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        match &mut self.backend {
            Backend::Calendar(c) => c.insert(entry),
            Backend::Heap(h) => h.push(entry),
        }
    }

    /// Pop the earliest event, advancing the queue's clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match &mut self.backend {
            Backend::Calendar(c) => c.pop()?,
            Backend::Heap(h) => h.pop()?,
        };
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(c) => c.peek_time(),
            Backend::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// The timestamp of the most recently popped event (the current
    /// simulated instant).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len,
            Backend::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next pushed event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// All pending entries as `(time, seq, event)`, sorted by `(time, seq)`
    /// — the exact pop order. Canonical form for checkpoint encoding: the
    /// backend's internal layout is not observable, so two queues holding
    /// the same entries always snapshot identically — whatever the backend.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut entries: Vec<(SimTime, u64, &E)> = match &self.backend {
            Backend::Calendar(c) => c.iter().collect(),
            Backend::Heap(h) => h.iter().map(|e| (e.time, e.seq, &e.event)).collect(),
        };
        entries.sort_by_key(|&(t, s, _)| (t, s));
        entries
    }

    /// Rebuild a queue from checkpointed entries plus the clock and
    /// sequence counter captured alongside them (calendar backend).
    /// Entries keep their original sequence numbers, so FIFO tiebreaks
    /// replay exactly.
    pub fn restore(entries: Vec<(SimTime, u64, E)>, next_seq: u64, now: SimTime) -> Self {
        Self::restore_with_backend(entries, next_seq, now, QueueBackend::Calendar)
    }

    /// [`EventQueue::restore`] onto an explicit backend.
    pub fn restore_with_backend(
        mut entries: Vec<(SimTime, u64, E)>,
        next_seq: u64,
        now: SimTime,
        backend: QueueBackend,
    ) -> Self {
        // Calendar lanes require per-timestamp seq order on insertion;
        // sorting also tolerates non-canonical entry order from callers.
        entries.sort_by_key(|&(t, s, _)| (t, s));
        let backend = match backend {
            QueueBackend::Calendar => {
                let mut c = Calendar::new(now);
                for (time, seq, event) in entries {
                    debug_assert!(seq < next_seq, "entry seq {seq} >= next_seq {next_seq}");
                    c.insert(Entry { time, seq, event });
                }
                Backend::Calendar(Box::new(c))
            }
            QueueBackend::BinaryHeap => Backend::Heap(
                entries
                    .into_iter()
                    .map(|(time, seq, event)| {
                        debug_assert!(seq < next_seq, "entry seq {seq} >= next_seq {next_seq}");
                        Entry { time, seq, event }
                    })
                    .collect(),
            ),
        };
        EventQueue {
            backend,
            next_seq,
            now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Run a test closure against both backends.
    fn on_both(f: impl Fn(QueueBackend)) {
        f(QueueBackend::Calendar);
        f(QueueBackend::BinaryHeap);
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|b| {
            let mut q = EventQueue::with_backend(b);
            for &s in &[30i64, 10, 20, 5, 25] {
                q.push(SimTime::from_secs(s), s);
            }
            let mut out = Vec::new();
            while let Some((_, e)) = q.pop() {
                out.push(e);
            }
            assert_eq!(out, vec![5, 10, 20, 25, 30]);
        });
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        on_both(|b| {
            let mut q = EventQueue::with_backend(b);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_with_pops() {
        on_both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(SimTime::from_secs(7), ());
            assert_eq!(q.now(), SimTime::EPOCH);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(7));
        });
    }

    #[test]
    fn interleaved_push_pop_remains_ordered() {
        on_both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(SimTime::from_secs(1), 1);
            q.push(SimTime::from_secs(3), 3);
            assert_eq!(q.pop().unwrap().1, 1);
            // Push something between current time and the pending event.
            q.push(q.now() + SimDuration::from_secs(1), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        });
    }

    #[test]
    fn peek_does_not_advance() {
        on_both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(SimTime::from_secs(4), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
            assert_eq!(q.now(), SimTime::EPOCH);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn peek_matches_pop_across_wheel_levels() {
        // Times chosen to land in the tick wheel, both coarse wheels, and
        // the overflow heap (past the ~2.2-year horizon).
        let times = [
            0i64,
            1,
            4_095,
            4_096,
            1 << 20,
            (1 << 24) + 123,
            1 << 30,
            (1 << 36) + 7,
            (1 << 37) + 11,
        ];
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        while !q.is_empty() {
            let expect = q.peek_time().unwrap();
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, expect);
        }
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    fn backends_agree_on_mixed_workload() {
        // Deterministic pseudo-random interleaving of pushes and pops with
        // plenty of same-tick ties; the two backends must emit identical
        // (time, seq, event) streams.
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..20_000u64 {
            let r = rng();
            if r % 3 != 0 || cal.is_empty() {
                // Mix tick-local, near-future, far-future, and overflow times.
                let dt = match r % 7 {
                    0 => 0,
                    1 => (r >> 8) % 4,
                    2 => (r >> 8) % 5_000,
                    3 => (r >> 8) % 1_000_000,
                    4 => (r >> 8) % (1 << 25),
                    5 => (r >> 8) % (1 << 30),
                    _ => (1 << 36) + (r >> 8) % 1_000,
                } as i64;
                let t = cal.now() + SimDuration::from_millis(dt);
                cal.push(t, i);
                heap.push(t, i);
            } else {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        on_both(|b| {
            let mut q = EventQueue::with_backend(b);
            for &s in &[30i64, 10, 20, 10, 25] {
                q.push(SimTime::from_secs(s), s);
            }
            q.pop(); // advance the clock past the first event
            let entries: Vec<(SimTime, u64, i64)> = q
                .snapshot_entries()
                .into_iter()
                .map(|(t, s, &e)| (t, s, e))
                .collect();
            // Canonical order: sorted by (time, seq).
            assert!(entries
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
            let mut r = EventQueue::restore_with_backend(entries, q.next_seq(), q.now(), b);
            assert_eq!(r.now(), q.now());
            assert_eq!(r.next_seq(), q.next_seq());
            // Both queues must drain in the same order, FIFO ties included.
            loop {
                match (q.pop(), r.pop()) {
                    (None, None) => break,
                    (a, b) => assert_eq!(a, b),
                }
            }
            // And accept new pushes with continuing sequence numbers.
            r.push(r.now() + SimDuration::from_secs(1), 99);
            assert_eq!(r.pop().unwrap().1, 99);
        });
    }

    #[test]
    fn restore_crosses_backends() {
        // A snapshot taken on one backend restores onto the other with an
        // identical drain sequence.
        let mut q = EventQueue::with_backend(QueueBackend::BinaryHeap);
        for &ms in &[5_000i64, 10, 10, 1 << 26, (1 << 36) + 3, 42] {
            q.push(SimTime::from_millis(ms), ms);
        }
        q.pop();
        let entries: Vec<(SimTime, u64, i64)> = q
            .snapshot_entries()
            .into_iter()
            .map(|(t, s, &e)| (t, s, e))
            .collect();
        let mut r = EventQueue::restore_with_backend(
            entries,
            q.next_seq(),
            q.now(),
            QueueBackend::Calendar,
        );
        loop {
            match (q.pop(), r.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn lane_reuse_does_not_leak_or_double_drop() {
        // Drop-counting payload exercises Lane's manual memory management:
        // partially drained lanes, cascades, and queue drop mid-drain.
        use std::rc::Rc;
        let token = Rc::new(());
        {
            let mut q = EventQueue::with_backend(QueueBackend::Calendar);
            for i in 0..1_000i64 {
                q.push(SimTime::from_millis(i % 10), Rc::clone(&token));
                q.push(SimTime::from_millis(10_000 + i), Rc::clone(&token));
            }
            for _ in 0..700 {
                q.pop();
            }
            // q drops here with lanes in mixed drained/undrained states.
        }
        assert_eq!(Rc::strong_count(&token), 1);
    }
}
