//! RM2 extras: inferring missing site metadata and detecting redundant
//! transfers (§5.4, case study 3 / Fig 12 / Table 3).
//!
//! The paper shows that RM2 matches "not only capture additional possible
//! matches but also help to infer incomplete metadata, effectively
//! converting uncertain cases into exact ones": a set of transfers with
//! `UNKNOWN` destinations was pinned to CERN-PROD because byte-identical
//! transfers of the same files, with valid endpoints, existed nearby in
//! time. Two inference routes are implemented:
//!
//! 1. **Job-link inference** — an RM2 match itself implies the missing
//!    endpoint: a matched download's true destination is the job's
//!    computing site.
//! 2. **Duplicate-evidence inference** — a transfer with the same
//!    (`lfn`, `file_size`) and a valid endpoint near in time corroborates
//!    (or supplies) the missing site.
//!
//! The same duplicate search, run over *valid* endpoints, exposes the
//! paper's **redundant transfer** pattern: the same file delivered twice
//! to the same destination, "in principle avoidable".

use crate::fx::FxHashMap;
use crate::matchset::MatchSet;
use dmsa_metastore::{MetaStore, Sym};
use dmsa_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// How an inferred site was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferenceEvidence {
    /// Implied by the matched job's computing site.
    JobLink,
    /// Corroborated by a byte-identical transfer with valid metadata.
    DuplicateTransfer {
        /// Index of the corroborating transfer.
        witness: u32,
    },
    /// Both routes agree.
    JobLinkAndDuplicate {
        /// Index of the corroborating transfer.
        witness: u32,
    },
}

/// One recovered site field.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SiteInference {
    /// Transfer whose endpoint was `UNKNOWN`/invalid.
    pub transfer_idx: u32,
    /// True if the missing endpoint is the destination (else the source).
    pub destination_missing: bool,
    /// The inferred site.
    pub inferred: Sym,
    /// Supporting evidence.
    pub evidence: InferenceEvidence,
}

impl SiteInference {
    /// Check against simulator ground truth (test/ablation use only).
    pub fn is_correct(&self, store: &MetaStore) -> bool {
        let t = &store.transfers[self.transfer_idx as usize];
        if self.destination_missing {
            t.gt_destination_site == self.inferred
        } else {
            t.gt_source_site == self.inferred
        }
    }
}

/// Infer missing endpoints for every RM2-matched transfer whose relevant
/// site is not a valid name. `dup_window` bounds the duplicate search.
pub fn infer_sites(
    store: &MetaStore,
    set: &MatchSet,
    dup_window: SimDuration,
) -> Vec<SiteInference> {
    // Index all transfers with valid endpoints by (lfn, size) for the
    // duplicate search.
    let mut by_key: FxHashMap<(Sym, u64), Vec<u32>> = FxHashMap::default();
    for (i, t) in store.transfers.iter().enumerate() {
        if store.is_valid_site(t.source_site) && store.is_valid_site(t.destination_site) {
            by_key
                .entry((t.lfn, t.file_size))
                .or_default()
                .push(i as u32);
        }
    }

    let mut out = Vec::new();
    for mj in &set.jobs {
        let job = &store.jobs[mj.job_idx as usize];
        for &ti in &mj.transfers {
            let t = &store.transfers[ti as usize];
            let (missing_dest, missing) =
                if t.is_download && !store.is_valid_site(t.destination_site) {
                    (true, t.destination_site)
                } else if t.is_upload && !store.is_valid_site(t.source_site) {
                    (false, t.source_site)
                } else {
                    continue;
                };
            let _ = missing;

            // Route 1: the job link implies the endpoint.
            let inferred = job.computingsite;

            // Route 2: duplicate corroboration — same (lfn, size), valid
            // endpoints, within the window, endpoint agrees with route 1.
            let witness = by_key.get(&(t.lfn, t.file_size)).and_then(|cands| {
                cands.iter().copied().filter(|&wi| wi != ti).find(|&wi| {
                    let w = &store.transfers[wi as usize];
                    let gap = (w.starttime - t.starttime).as_millis().abs();
                    let endpoint = if missing_dest {
                        w.destination_site
                    } else {
                        w.source_site
                    };
                    gap <= dup_window.as_millis() && endpoint == inferred
                })
            });

            let evidence = match witness {
                Some(w) => InferenceEvidence::JobLinkAndDuplicate { witness: w },
                None => InferenceEvidence::JobLink,
            };
            out.push(SiteInference {
                transfer_idx: ti,
                destination_missing: missing_dest,
                inferred,
                evidence,
            });
        }
    }
    out
}

/// A group of transfers delivering the same bytes to the same destination
/// — the avoidable redundancy of Fig 12.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RedundantGroup {
    /// The duplicated (lfn, size) key's transfers, ascending by start time.
    pub transfers: Vec<u32>,
    /// The common destination (resolved: recorded, or inferred for
    /// unknown endpoints when `resolved_dest` was supplied).
    pub destination: Sym,
}

/// Find redundant delivery groups: ≥2 transfers of the same
/// (`lfn`, `file_size`) to the same destination within `window` of each
/// other. `resolve_dest` maps a transfer index to its effective
/// destination (letting callers substitute inferred sites for `UNKNOWN`).
pub fn redundant_groups<F>(
    store: &MetaStore,
    window: SimDuration,
    mut resolve_dest: F,
) -> Vec<RedundantGroup>
where
    F: FnMut(u32) -> Sym,
{
    let mut by_key: FxHashMap<(Sym, u64, Sym), Vec<u32>> = FxHashMap::default();
    for (i, t) in store.transfers.iter().enumerate() {
        let dest = resolve_dest(i as u32);
        by_key
            .entry((t.lfn, t.file_size, dest))
            .or_default()
            .push(i as u32);
    }

    let mut out = Vec::new();
    for ((_, _, dest), mut idxs) in by_key {
        if idxs.len() < 2 {
            continue;
        }
        idxs.sort_by_key(|&i| store.transfers[i as usize].starttime);
        // Split into clusters where consecutive starts are within `window`.
        let mut cluster: Vec<u32> = vec![idxs[0]];
        for w in idxs.windows(2) {
            let gap =
                store.transfers[w[1] as usize].starttime - store.transfers[w[0] as usize].starttime;
            if gap <= window {
                cluster.push(w[1]);
            } else {
                if cluster.len() >= 2 {
                    out.push(RedundantGroup {
                        transfers: cluster.clone(),
                        destination: dest,
                    });
                }
                cluster = vec![w[1]];
            }
        }
        if cluster.len() >= 2 {
            out.push(RedundantGroup {
                transfers: cluster,
                destination: dest,
            });
        }
    }
    out.sort_by_key(|g| g.transfers[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::{Matcher, NaiveMatcher};
    use crate::method::MatchMethod;

    /// The Fig 12 scenario: a job's stage-in recorded with UNKNOWN
    /// destination, plus an earlier byte-identical delivery with valid
    /// endpoints.
    fn fig12_store() -> (
        dmsa_metastore::MetaStore,
        dmsa_simcore::interval::Interval,
        u32,
        u32,
    ) {
        let mut b = StoreBuilder::new();
        let cern = b.site("CERN-PROD");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        b.job_with_file(1, 10, cern, 5_243_410_528, 0, 1_277, 3_000);
        // Earlier redundant delivery, valid metadata (transfers 3-5 of Table 3).
        let witness = b.download(1, 10, cern, cern, 5_243_410_528, 100, 130);
        // The matched stage-in with UNKNOWN destination (transfers 0-2).
        // Its *true* destination is CERN; only the record is corrupted.
        let broken = b.download(1, 10, cern, unknown, 5_243_410_528, 1_180, 1_271);
        b.store.transfers[broken as usize].gt_destination_site = cern;
        // Neutralize the witness's task link so only the broken one matches
        // (the witness predates the job's own staging).
        b.store.transfers[witness as usize].jeditaskid = None;
        b.store.transfers[witness as usize].gt_pandaid = None;
        let w = b.window();
        (b.store, w, broken, witness)
    }

    #[test]
    fn rm2_match_plus_inference_recovers_unknown_destination() {
        let (store, w, broken, witness) = fig12_store();
        let set = NaiveMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        assert_eq!(set.n_matched_transfers(), 1);
        let inferred = infer_sites(&store, &set, SimDuration::from_days(2));
        assert_eq!(inferred.len(), 1);
        let inf = &inferred[0];
        assert_eq!(inf.transfer_idx, broken);
        assert!(inf.destination_missing);
        assert_eq!(store.name(inf.inferred), "CERN-PROD");
        assert!(inf.is_correct(&store));
        assert_eq!(
            inf.evidence,
            InferenceEvidence::JobLinkAndDuplicate { witness }
        );
    }

    #[test]
    fn inference_without_witness_uses_job_link_only() {
        let (mut store, w, _, witness) = fig12_store();
        // Remove the witness.
        store.transfers.remove(witness as usize);
        let set = NaiveMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        let inferred = infer_sites(&store, &set, SimDuration::from_days(2));
        assert_eq!(inferred.len(), 1);
        assert_eq!(inferred[0].evidence, InferenceEvidence::JobLink);
        assert!(inferred[0].is_correct(&store));
    }

    #[test]
    fn exact_matches_produce_no_inferences() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 100, 0, 50, 100);
        b.download(1, 10, site, site, 100, 5, 10);
        let set = NaiveMatcher.match_jobs(&b.store, b.window(), MatchMethod::Exact);
        assert!(infer_sites(&b.store, &set, SimDuration::from_days(1)).is_empty());
    }

    #[test]
    fn redundant_groups_detect_fig12_duplicates() {
        let (store, _, broken, witness) = fig12_store();
        // Resolve unknown destinations to the inferred site (CERN).
        let cern = store.symbols.get("CERN-PROD").unwrap();
        let groups = redundant_groups(&store, SimDuration::from_days(1), |i| {
            let t = &store.transfers[i as usize];
            if store.is_valid_site(t.destination_site) {
                t.destination_site
            } else {
                cern
            }
        });
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.destination, cern);
        assert_eq!(g.transfers, vec![witness, broken]);
    }

    #[test]
    fn far_apart_duplicates_are_not_redundant() {
        let (store, _, _, _) = fig12_store();
        // 100 s window: the two deliveries are ~18 min apart.
        let groups = redundant_groups(&store, SimDuration::from_secs(100), |i| {
            store.transfers[i as usize].destination_site
        });
        assert!(groups.is_empty());
    }

    #[test]
    fn distinct_destinations_are_not_redundant() {
        let mut b = StoreBuilder::new();
        let a = b.site("A");
        let c = b.site("C");
        b.job_with_file(1, 10, a, 100, 0, 50, 100);
        b.download(1, 10, a, a, 100, 5, 10);
        b.download(1, 10, a, c, 100, 6, 12); // same file, different dest
        let groups = redundant_groups(&b.store, SimDuration::from_days(1), |i| {
            b.store.transfers[i as usize].destination_site
        });
        assert!(groups.is_empty(), "replication to two sites is legitimate");
    }
}
