//! The metadata store and its time-window queries.

use crate::intern::{Sym, SymbolTable};
use crate::records::{FileRecord, JobRecord, TransferRecord};
use dmsa_simcore::interval::Interval;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// In-memory metadata store — the simulated OpenSearch.
///
/// Holds the three record families plus the shared symbol table. Queries
/// follow the paper's §4.2 pre-selection discipline: analyses operate on a
/// common time window, and "the query module only reports jobs that are
/// completed before the end of the interval, excluding all jobs still
/// running at that time".
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaStore {
    /// Shared string table.
    pub symbols: SymbolTable,
    /// Completed jobs.
    pub jobs: Vec<JobRecord>,
    /// PanDA file-table rows.
    pub files: Vec<FileRecord>,
    /// Rucio transfer events.
    pub transfers: Vec<TransferRecord>,
    /// Symbols of *valid* site names (everything else — `UNKNOWN` or
    /// garbage — is treated as invalid by the RM2 matcher).
    pub valid_sites: HashSet<Sym>,
}

impl MetaStore {
    /// Empty store.
    pub fn new() -> Self {
        MetaStore {
            symbols: SymbolTable::new(),
            ..Default::default()
        }
    }

    /// Register a site name as valid, returning its symbol.
    pub fn register_site(&mut self, name: &str) -> Sym {
        let sym = self.symbols.intern(name);
        self.valid_sites.insert(sym);
        sym
    }

    /// Whether a recorded site symbol names a real site.
    pub fn is_valid_site(&self, sym: Sym) -> bool {
        self.valid_sites.contains(&sym)
    }

    /// User jobs completed within `window` — the paper's §5 job
    /// population (966,453 user jobs in the production study).
    pub fn user_jobs_in(&self, window: Interval) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(move |j| {
            j.is_user_analysis && j.endtime < window.end && j.creationtime >= window.start
        })
    }

    /// Transfer events whose start lies within `window`.
    pub fn transfers_in(&self, window: Interval) -> impl Iterator<Item = &TransferRecord> {
        self.transfers
            .iter()
            .filter(move |t| window.contains(t.starttime))
    }

    /// Transfers carrying a `jeditaskid` — the candidates for matching
    /// (1,585,229 of 6,784,936 in the paper's window).
    pub fn transfers_with_taskid(&self) -> impl Iterator<Item = &TransferRecord> {
        self.transfers.iter().filter(|t| t.jeditaskid.is_some())
    }

    /// Quick size summary `(jobs, files, transfers, transfers_with_taskid)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.jobs.len(),
            self.files.len(),
            self.transfers.len(),
            self.transfers
                .iter()
                .filter(|t| t.jeditaskid.is_some())
                .count(),
        )
    }

    /// Resolve an interned name.
    pub fn name(&self, sym: Sym) -> &str {
        self.symbols.resolve(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::SimTime;

    fn job(pandaid: u64, user: bool, created_s: i64, ended_s: i64, site: Sym) -> JobRecord {
        JobRecord {
            pandaid,
            jeditaskid: 1,
            computingsite: site,
            creationtime: SimTime::from_secs(created_s),
            starttime: SimTime::from_secs(created_s + 1),
            endtime: SimTime::from_secs(ended_s),
            ninputfilebytes: 0,
            noutputfilebytes: 0,
            io_mode: IoMode::StageIn,
            status: JobStatus::Finished,
            task_status: TaskStatus::Done,
            error_code: None,
            is_user_analysis: user,
        }
    }

    fn transfer(id: u64, start_s: i64, taskid: Option<u64>) -> TransferRecord {
        TransferRecord {
            transfer_id: id,
            lfn: Sym(0),
            dataset: Sym(0),
            proddblock: Sym(0),
            scope: Sym(0),
            file_size: 1,
            starttime: SimTime::from_secs(start_s),
            endtime: SimTime::from_secs(start_s + 1),
            source_site: Sym(0),
            destination_site: Sym(0),
            activity: Activity::AnalysisDownload,
            jeditaskid: taskid,
            is_download: true,
            is_upload: false,
            attempt: 1,
            succeeded: true,
            gt_pandaid: None,
            gt_source_site: Sym(0),
            gt_destination_site: Sym(0),
            gt_file_size: 1,
        }
    }

    fn window(a: i64, b: i64) -> Interval {
        Interval::new(SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn user_job_query_excludes_production_and_unfinished() {
        let mut store = MetaStore::new();
        let site = store.register_site("X");
        store.jobs.push(job(1, true, 10, 50, site)); // in window
        store.jobs.push(job(2, false, 10, 50, site)); // production
        store.jobs.push(job(3, true, 10, 200, site)); // ends after window
        store.jobs.push(job(4, true, 10, 100, site)); // ends exactly at window end
        let got: Vec<u64> = store
            .user_jobs_in(window(0, 100))
            .map(|j| j.pandaid)
            .collect();
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn transfers_in_window_filter_on_start() {
        let mut store = MetaStore::new();
        store.transfers.push(transfer(1, 5, None));
        store.transfers.push(transfer(2, 150, None));
        let got: Vec<u64> = store
            .transfers_in(window(0, 100))
            .map(|t| t.transfer_id)
            .collect();
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn taskid_filter_counts() {
        let mut store = MetaStore::new();
        store.transfers.push(transfer(1, 5, Some(7)));
        store.transfers.push(transfer(2, 6, None));
        store.transfers.push(transfer(3, 7, Some(8)));
        assert_eq!(store.transfers_with_taskid().count(), 2);
        let (j, f, t, twt) = store.counts();
        assert_eq!((j, f, t, twt), (0, 0, 3, 2));
    }

    #[test]
    fn site_validity_registry() {
        let mut store = MetaStore::new();
        let s = store.register_site("BNL");
        assert!(store.is_valid_site(s));
        assert!(!store.is_valid_site(SymbolTable::UNKNOWN));
        let garbage = store.symbols.intern("s1te-g@rbage");
        assert!(!store.is_valid_site(garbage));
        assert_eq!(store.name(s), "BNL");
    }
}
