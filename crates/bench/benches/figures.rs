//! One bench target per paper table/figure: measures the cost of
//! regenerating each artifact from a prebuilt campaign (the simulation
//! itself is benched separately in `ablations.rs`).
//!
//! Run with `cargo bench -p dmsa-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use dmsa_analysis::activity::ActivityBreakdown;
use dmsa_analysis::bandwidth::{busiest_pairs, usage_series};
use dmsa_analysis::cases;
use dmsa_analysis::growth::yearly;
use dmsa_analysis::matrix::TransferMatrix;
use dmsa_analysis::overlap::{all_overlaps, summarize};
use dmsa_analysis::threshold::threshold_sweep;
use dmsa_analysis::topjobs::{top_jobs, Locality};
use dmsa_bench::ReproContext;
use dmsa_rucio_sim::growth::growth_series;
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::{RngFactory, SimDuration};
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let ctx = ReproContext::build(0.02, 42);
    let fig3_campaign = dmsa_scenario::run(&ScenarioConfig::paper_92day(0.01));
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig2_growth", |b| {
        b.iter(|| black_box(yearly(&growth_series(&RngFactory::new(42), 2024.5))))
    });

    g.bench_function("fig3_matrix", |b| {
        b.iter(|| {
            let m = TransferMatrix::build(&fig3_campaign.store, fig3_campaign.window);
            black_box((m.summary(), m.top_outliers(6)))
        })
    });

    g.bench_function("table1_activity", |b| {
        b.iter(|| black_box(ActivityBreakdown::build(&ctx.campaign.store, &ctx.exact)))
    });

    g.bench_function("table2_methods", |b| {
        b.iter(|| {
            let a = ctx.exact.transfer_counts(&ctx.campaign.store);
            let bb = ctx.rm1.job_counts(&ctx.campaign.store);
            let c2 = ctx.rm2.job_counts(&ctx.campaign.store);
            black_box((a, bb, c2))
        })
    });

    g.bench_function("summary_overlap", |b| {
        b.iter(|| {
            let o = all_overlaps(&ctx.campaign.store, &ctx.exact);
            black_box(summarize(&o))
        })
    });

    g.bench_function("fig5_topjobs_local", |b| {
        b.iter(|| black_box(top_jobs(&ctx.overlaps_exact, Locality::LocalOnly, 10.0, 40)))
    });

    g.bench_function("fig6_topjobs_remote", |b| {
        b.iter(|| {
            black_box(top_jobs(
                &ctx.overlaps_exact,
                Locality::RemoteOnly,
                10.0,
                40,
            ))
        })
    });

    let matched_ids: Vec<u32> = ctx
        .rm2
        .jobs
        .iter()
        .flat_map(|j| j.transfers.iter().copied())
        .collect();
    g.bench_function("fig7_bandwidth_remote", |b| {
        b.iter(|| {
            let pairs = busiest_pairs(&ctx.campaign.store, &matched_ids, false, 6);
            let series: Vec<_> = pairs
                .iter()
                .map(|&(s, d, _)| {
                    usage_series(
                        matched_ids
                            .iter()
                            .map(|&ti| &ctx.campaign.store.transfers[ti as usize]),
                        s,
                        d,
                        SimDuration::from_secs(300),
                    )
                })
                .collect();
            black_box(series)
        })
    });

    g.bench_function("fig8_bandwidth_local", |b| {
        b.iter(|| {
            let pairs = busiest_pairs(&ctx.campaign.store, &matched_ids, true, 6);
            black_box(pairs)
        })
    });

    g.bench_function("fig9_threshold_sweep", |b| {
        let thresholds: Vec<f64> = (0..=100).map(|t| t as f64).collect();
        b.iter(|| black_box(threshold_sweep(&ctx.overlaps_exact, &thresholds)))
    });

    g.bench_function("fig10_12_case_selectors", |b| {
        b.iter(|| {
            let a = cases::find_sequential_staging_case(&ctx.campaign.store, &ctx.exact);
            let bb = cases::find_spanning_failure_case(&ctx.campaign.store, &ctx.exact);
            let c2 = cases::find_redundant_unknown_case(
                &ctx.campaign.store,
                &ctx.rm2,
                SimDuration::from_days(2),
            );
            black_box((a, bb, c2))
        })
    });

    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
