//! Core identifier and status types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// PanDA job identifier (`pandaid`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pandaid:{}", self.0)
    }
}

/// JEDI task identifier (`jeditaskid`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jeditaskid:{}", self.0)
    }
}

/// Final state of a job. The paper's figures label these "D" (done) and
/// "F" (failed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum JobStatus {
    /// Completed successfully.
    Finished,
    /// Failed (see the job's error code).
    Failed,
}

impl JobStatus {
    /// The paper's single-letter label.
    pub fn letter(self) -> char {
        match self {
            JobStatus::Finished => 'D',
            JobStatus::Failed => 'F',
        }
    }
}

/// Final state of a task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Task completed.
    Done,
    /// Task failed.
    Failed,
}

impl TaskStatus {
    /// The paper's single-letter label.
    pub fn letter(self) -> char {
        match self {
            TaskStatus::Done => 'D',
            TaskStatus::Failed => 'F',
        }
    }
}

/// User analysis vs centrally-managed production.
///
/// The paper's §5.1 queries *user jobs* only; production transfers
/// therefore never match (Table 1 rows 4–5 show 0%).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TaskKind {
    /// User analysis task.
    UserAnalysis,
    /// Production (MC simulation / reprocessing) task.
    Production,
}

/// How a job consumes its input.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IoMode {
    /// Inputs staged to local scratch before execution ("Analysis
    /// Download" in Table 1); execution cannot begin until staging ends.
    StageIn,
    /// Streaming reads overlapping execution ("Analysis Download Direct
    /// IO"); transfers span the job's walltime.
    DirectIo,
}

/// Job error codes observed in the paper's case studies.
pub mod error_codes {
    /// "Non-zero return code from Overlay (1)" — Fig 11's failed job.
    pub const OVERLAY_FAILURE: u32 = 1305;
    /// Stage-in timeout.
    pub const STAGEIN_TIMEOUT: u32 = 1099;
    /// Payload segfault.
    pub const PAYLOAD_SEGV: u32 = 1201;
    /// Output upload failure.
    pub const STAGEOUT_FAILURE: u32 = 1137;
    /// Worker-node scratch exhausted.
    pub const NO_DISK_SPACE: u32 = 1098;
    /// Pilot could not validate any worker node after retries.
    pub const PILOT_VALIDATION: u32 = 1150;
    /// Pilot heartbeat lost mid-execution.
    pub const LOST_HEARTBEAT: u32 = 1361;
    /// Input file could not be staged after exhausting transfer retries
    /// (the transfer layer's graceful-degradation surface: PanDA
    /// re-brokers the job once).
    pub const LOST_INPUT: u32 = 1103;

    /// Message for a code, mirroring PanDA's error dictionary style.
    pub fn message(code: u32) -> &'static str {
        match code {
            OVERLAY_FAILURE => "Non-zero return code from Overlay (1)",
            STAGEIN_TIMEOUT => "Stage-in timed out",
            PAYLOAD_SEGV => "Payload received SIGSEGV",
            STAGEOUT_FAILURE => "Failed to stage out output file",
            NO_DISK_SPACE => "No space left on scratch disk",
            PILOT_VALIDATION => "Pilot failed to validate a worker node",
            LOST_HEARTBEAT => "Lost heartbeat",
            LOST_INPUT => "Input file lost: stage-in retries exhausted",
            _ => "Unknown error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_letters_match_paper_labels() {
        assert_eq!(JobStatus::Finished.letter(), 'D');
        assert_eq!(JobStatus::Failed.letter(), 'F');
        assert_eq!(TaskStatus::Done.letter(), 'D');
        assert_eq!(TaskStatus::Failed.letter(), 'F');
    }

    #[test]
    fn error_dictionary_covers_case_study_code() {
        assert_eq!(
            error_codes::message(error_codes::OVERLAY_FAILURE),
            "Non-zero return code from Overlay (1)"
        );
        assert_eq!(error_codes::message(9999), "Unknown error");
    }

    #[test]
    fn id_debug_forms() {
        assert_eq!(format!("{:?}", JobId(6583770648)), "pandaid:6583770648");
        assert_eq!(format!("{:?}", TaskId(42)), "jeditaskid:42");
    }
}
