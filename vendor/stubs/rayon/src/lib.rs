//! Offline stub for `rayon` 1.12: the parallel API surface dmsa uses,
//! executed sequentially. Results are identical (dmsa only uses
//! order-preserving or commutative operations); only wall-clock parallelism
//! is lost.

/// Run both closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    /// `par_iter()` on slices/vecs: sequential `iter()` under the stub.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()`: sequential `into_iter()` under the stub.
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator,
    {
        type Iter = std::ops::Range<T>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Rayon-specific adapters dmsa uses on parallel iterators.
    pub trait ParallelIteratorExt: Iterator + Sized {
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        fn with_min_len(self, _n: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}

    /// Parallel in-place slice sorts: sequential unstable sorts here.
    pub trait ParallelSliceMut<T> {
        fn as_mut_slice_stub(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord + Send,
        {
            self.as_mut_slice_stub().sort_unstable();
        }

        fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
        where
            K: Ord,
            F: FnMut(&T) -> K + Sync,
            T: Send,
        {
            self.as_mut_slice_stub().sort_unstable_by_key(f);
        }

        fn par_sort_unstable_by<F>(&mut self, f: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering + Sync,
            T: Send,
        {
            self.as_mut_slice_stub().sort_unstable_by(f);
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn as_mut_slice_stub(&mut self) -> &mut [T] {
            self
        }
    }
}
