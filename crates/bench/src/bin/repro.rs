//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p dmsa-bench --bin repro -- [--scale 0.05] [--seed 42] [--sections all]
//! ```
//!
//! Sections: `summary, table1, table2, fig2, fig3, fig5, fig6, fig7, fig8,
//! fig9, cases, temporal, eval, whatif` or `all`. Absolute numbers scale with `--scale`; the
//! *shapes* (who wins, by what factor, where crossovers fall) are the
//! reproduction targets recorded in `EXPERIMENTS.md`.

use dmsa_analysis::activity::ActivityBreakdown;
use dmsa_analysis::bandwidth::{busiest_pairs, usage_series};
use dmsa_analysis::cases;
use dmsa_analysis::growth::{growth_multiple, yearly};
use dmsa_analysis::matrix::TransferMatrix;
use dmsa_analysis::overlap::summarize;
use dmsa_analysis::threshold::{above_threshold, threshold_sweep, StatusCombo};
use dmsa_analysis::topjobs::{top_jobs, Locality};
use dmsa_bench::fmt::{bytes, pct};
use dmsa_bench::ReproContext;
use dmsa_core::{evaluate, MatchMethod, ScoredMatcher};
use dmsa_rucio_sim::growth::growth_series;
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::{RngFactory, SimDuration};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut sections = "all".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--sections" => {
                i += 1;
                sections = args[i].clone();
            }
            "--full" => scale = 1.0,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: repro [--scale F] [--seed N] [--full] [--sections a,b,c]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let want = |s: &str| sections == "all" || sections.split(',').any(|x| x == s);

    println!("=== DMSA repro: scale {scale}, seed {seed} ===\n");

    // Fig 2 needs no campaign.
    if want("fig2") {
        fig2(seed);
    }
    // Fig 3 runs its own 92-day campaign.
    if want("fig3") {
        fig3(scale, seed);
    }

    if want("whatif") {
        whatif(scale, seed);
    }

    let needs_ctx = [
        "summary", "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "cases", "temporal",
        "eval",
    ]
    .iter()
    .any(|s| want(s));
    if !needs_ctx {
        return;
    }

    eprintln!("[running 8-day campaign at scale {scale} ...]");
    let ctx = ReproContext::build(scale, seed);

    if want("summary") {
        summary(&ctx);
    }
    if want("table1") {
        table1(&ctx);
    }
    if want("table2") {
        table2(&ctx);
    }
    if want("fig5") {
        fig56(
            &ctx,
            Locality::LocalOnly,
            "Fig 5: top jobs with LOCAL transfers >= 10% of queuing time",
        );
    }
    if want("fig6") {
        fig56(
            &ctx,
            Locality::RemoteOnly,
            "Fig 6: top jobs with REMOTE transfers >= 10% of queuing time",
        );
    }
    if want("fig7") {
        fig78(
            &ctx,
            false,
            "Fig 7: bandwidth usage at six remote connections",
        );
    }
    if want("fig8") {
        fig78(&ctx, true, "Fig 8: bandwidth usage at six local sites");
    }
    if want("fig9") {
        fig9(&ctx);
    }
    if want("cases") {
        case_studies(&ctx);
    }
    if want("temporal") {
        temporal_section(&ctx);
    }
    if want("eval") {
        eval_section(&ctx);
    }
}

/// Extension: §3.2's temporal imbalance and §1's "altered error
/// distributions", quantified.
fn temporal_section(ctx: &ReproContext) {
    use dmsa_analysis::errors::{error_distribution, StagingBand};
    use dmsa_analysis::temporal::{peak_to_trough, site_volume_gini, volume_series};
    println!("--- Extension: temporal imbalance and error distributions ---");
    let series = volume_series(
        &ctx.campaign.store,
        ctx.campaign.window,
        SimDuration::from_hours(6),
    );
    let p2t = peak_to_trough(&series)
        .map(|r| format!("{r:.1}x"))
        .unwrap_or_else(|| "n/a".into());
    println!(
        "  volume series: {} buckets of 6h, peak/trough {} (temporal imbalance)",
        series.len(),
        p2t
    );
    println!(
        "  destination-site volume Gini: {:.3} (spatial concentration)",
        site_volume_gini(&ctx.campaign.store, ctx.campaign.window)
    );
    // Site-level hot spots (section 5.3's "server queuing delays despite
    // using local transfers").
    {
        use dmsa_analysis::hotspots::{site_queue_stats, summarize_hotspots};
        let ranked = site_queue_stats(&ctx.campaign.store, ctx.campaign.window, 30);
        if let Some(hs) = summarize_hotspots(&ranked) {
            println!(
                "  site queue hot spots: {} sites, hottest p95 {:.0}s vs median p95 {:.0}s ({:.1}x imbalance)",
                hs.n_sites, hs.hottest_p95_secs, hs.median_p95_secs, hs.imbalance_ratio
            );
            for s in ranked.iter().take(3) {
                println!(
                    "    {:<24} {:>6} jobs  p95 {:>8.0}s  max {:>8.0}s  fail {:.0}%",
                    ctx.campaign.store.name(s.site),
                    s.n_jobs,
                    s.p95_queue_secs,
                    s.max_queue_secs,
                    s.failure_rate * 100.0
                );
            }
        }
    }
    let dist = error_distribution(&ctx.campaign.store, &ctx.overlaps_exact);
    println!("  failed matched jobs by staging band:");
    for band in StagingBand::ALL {
        let b = &dist[&band];
        let rate = b
            .failure_rate()
            .map(|r| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "n/a".into());
        let staging = b
            .staging_related_fraction()
            .map(|r| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "    {:?}: {} jobs, failure rate {}, staging-related codes {}",
            band, b.n_jobs, rate, staging
        );
    }
    println!();
}

/// The co-optimization experiment the paper's conclusion calls for:
/// sweep the brokerage's willingness to send jobs off-data when the
/// data-holding sites are hot, and measure the locality/queueing trade-off
/// ("assigning jobs to remote sites, despite requiring additional
/// transfers, may result in shorter overall queuing times", section 5.3).
fn whatif(scale: f64, seed: u64) {
    println!("--- What-if: brokerage data-locality vs load-aware escape ---");
    println!(
        "  {:<26} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "policy", "p50 queue", "p90 queue", "p99 queue", "rmt stage", "lcl stage"
    );
    for (label, escape, prestage) in [
        ("strict locality (0.0)", 0.0, 0.0),
        ("paper-like (0.5)", 0.5, 0.0),
        ("aggressive offload (1.0)", 1.0, 0.0),
        ("paper-like + iDDS prestage", 0.5, 0.5),
    ] {
        let mut config = ScenarioConfig {
            seed,
            ..ScenarioConfig::paper_8day(scale)
        };
        config.broker.remote_when_hot_prob = escape;
        config.prestage_fraction = prestage;
        let campaign = dmsa_scenario::run(&config);
        let mut queues: Vec<f64> = campaign
            .store
            .user_jobs_in(campaign.window)
            .map(|j| j.queuing_time().as_secs_f64())
            .collect();
        queues.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| {
            if queues.is_empty() {
                0.0
            } else {
                queues[((queues.len() - 1) as f64 * p) as usize]
            }
        };
        // Job-caused staging volume only: background (rule-driven) traffic
        // is policy-independent and would swamp the signal.
        let mut remote = 0u64;
        let mut local = 0u64;
        for t in &campaign.store.transfers {
            if t.gt_pandaid.is_none() {
                continue;
            }
            if t.gt_source_site == t.gt_destination_site {
                local += t.gt_file_size;
            } else {
                remote += t.gt_file_size;
            }
        }
        println!(
            "  {:<26} {:>9.0}s {:>9.0}s {:>9.0}s {:>12} {:>12}",
            label,
            q(0.5),
            q(0.9),
            q(0.99),
            bytes(remote),
            bytes(local)
        );
    }
    println!("  (expected shape: escaping data locality trades remote volume for shorter tails)\n");
}

fn fig2(seed: u64) {
    println!("--- Fig 2: total volume managed by Rucio (exabytes) ---");
    let series = growth_series(&RngFactory::new(seed), 2024.5);
    for y in yearly(&series) {
        let bar = "#".repeat((y.exabytes * 60.0) as usize);
        println!("  {}  {:6.3} EB  {bar}", y.year, y.exabytes);
    }
    let end = series.last().map(|p| p.exabytes).unwrap_or(0.0);
    let mult = growth_multiple(&series, 2018.5, 2024.5).unwrap_or(0.0);
    println!("  mid-2024 volume : {end:.3} EB   (paper: ~1 EB)");
    println!("  growth since 2018: {mult:.2}x     (paper: more than 2x)\n");
}

fn fig3(scale: f64, seed: u64) {
    println!("--- Fig 3: site-to-site transfer volumes (92-day window) ---");
    eprintln!("[running 92-day campaign at scale {scale} ...]");
    let config = ScenarioConfig {
        seed,
        ..ScenarioConfig::paper_92day(scale)
    };
    let campaign = dmsa_scenario::run(&config);
    let matrix = TransferMatrix::build(&campaign.store, campaign.window);
    let s = matrix.summary();
    println!("  sites (incl. unknown) : {}", matrix.n());
    println!("  transfers             : {}", matrix.n_transfers);
    println!(
        "  total volume          : {}   (paper: 957.98 PB)",
        bytes(s.total_bytes)
    );
    println!(
        "  local (diagonal)      : {} = {:.1}%  (paper: 737.85 PB = 77.0%)",
        bytes(s.local_bytes),
        100.0 * s.local_bytes as f64 / s.total_bytes.max(1) as f64
    );
    println!(
        "  mean per site pair    : {}   (paper: 77.75 TB)",
        bytes(s.mean_pair_bytes as u64)
    );
    println!(
        "  geometric mean (nonzero cells): {}   (paper: 1.11 TB)",
        bytes(s.geo_mean_pair_bytes as u64)
    );
    println!(
        "  mean / geo-mean ratio : {:.1}x  (heavy-tailed imbalance)",
        s.mean_pair_bytes / s.geo_mean_pair_bytes.max(1.0)
    );
    println!("  top outlier cells (paper: 446.3 PB N-Europe T1, 71.9 PB CERN T0, ...):");
    for c in matrix.top_outliers(6) {
        let kind = if c.src == c.dst { "local " } else { "remote" };
        println!(
            "    {:>9}  {kind}  {} -> {}",
            bytes(c.bytes),
            c.src_label,
            c.dst_label
        );
    }
    println!(
        "  unknown-endpoint volume: {}  (paper: 42.4 PB CERN->unknown outlier)\n",
        bytes(matrix.unknown_bytes())
    );
}

fn summary(ctx: &ReproContext) {
    println!("--- Summary of exact matching (paper 5.1) ---");
    let (jobs, files, transfers, with_tid) = ctx.campaign.store.counts();
    let user_jobs = ctx.campaign.store.user_jobs_in(ctx.campaign.window).count();
    println!("  jobs collected        : {jobs} ({user_jobs} user jobs; paper: 966,453 user jobs)");
    println!("  file-table rows       : {files}");
    println!("  transfer events       : {transfers} (paper: 6,784,936)");
    println!("  with jeditaskid       : {with_tid} (paper: 1,585,229)");
    println!(
        "  exact-matched transfers: {} = {} of with-taskid (paper: 30,380 = 1.92%)",
        ctx.exact.n_matched_transfers(),
        pct(ctx.exact.n_matched_transfers(), with_tid)
    );
    println!(
        "  exact-matched jobs     : {} = {} of user jobs (paper: 7,907 = 0.82%)",
        ctx.exact.n_matched_jobs(),
        pct(ctx.exact.n_matched_jobs(), user_jobs)
    );
    let s = summarize(&ctx.overlaps_exact);
    println!(
        "  transfer time in queue : mean {:.2}% geo-mean {:.3}% max {:.1}% (paper: 8.43% / 1.942% / >83%)\n",
        s.mean_percent, s.geo_mean_percent, s.max_percent
    );
}

fn table1(ctx: &ReproContext) {
    println!("--- Table 1: breakdown of exact-matched transfers by activity ---");
    let table = ActivityBreakdown::build(&ctx.campaign.store, &ctx.exact);
    println!(
        "  {:<30} {:>9} {:>9} {:>9}   paper",
        "Transfer activity type", "Matched", "Total", "Pct"
    );
    let paper = ["8.38%", "95.42%", "2.31%", "0%", "0%"];
    for (row, paper_pct) in table.rows.iter().zip(paper) {
        println!(
            "  {:<30} {:>9} {:>9} {:>8.2}%   {paper_pct}",
            row.activity.label(),
            row.matched,
            row.total,
            row.percent()
        );
    }
    let (m, t) = table.totals();
    println!(
        "  {:<30} {:>9} {:>9} {:>9}   1.92%\n",
        "Total",
        m,
        t,
        pct(m, t)
    );
}

fn table2(ctx: &ReproContext) {
    println!("--- Table 2a: matched transfer counts by method ---");
    println!(
        "  {:<7} {:>8} {:>8} {:>8}   paper(local/remote/total)",
        "Method", "Local", "Remote", "Total"
    );
    let paper_a = [
        "28,579 / 1,801 / 30,380",
        "35,065 / 1,817 / 36,882",
        "36,320 / 24,273 / 60,593",
    ];
    for (method, p) in MatchMethod::ALL.into_iter().zip(paper_a) {
        let set = ctx.set(method);
        let c = set.transfer_counts(&ctx.campaign.store);
        println!(
            "  {:<7} {:>8} {:>8} {:>8}   {p}",
            method.label(),
            c.local,
            c.remote,
            c.total()
        );
    }
    println!("--- Table 2b: matched job counts by method ---");
    println!(
        "  {:<7} {:>9} {:>9} {:>7} {:>8}   paper(local/remote/mixed/total)",
        "Method", "AllLocal", "AllRemote", "Mixed", "Total"
    );
    let paper_b = [
        "7,649 / 258 / 0 / 7,907",
        "8,763 / 260 / 0 / 9,023",
        "8,727 / 7,662 / 112 / 16,501",
    ];
    for (method, p) in MatchMethod::ALL.into_iter().zip(paper_b) {
        let set = ctx.set(method);
        let c = set.job_counts(&ctx.campaign.store);
        println!(
            "  {:<7} {:>9} {:>9} {:>7} {:>8}   {p}",
            method.label(),
            c.all_local,
            c.all_remote,
            c.mixed,
            c.total()
        );
    }
    println!();
}

fn fig56(ctx: &ReproContext, locality: Locality, title: &str) {
    println!("--- {title} ---");
    let rows = top_jobs(&ctx.overlaps_exact, locality, 10.0, 40);
    println!(
        "  {:<14} {:>10} {:>12} {:>7} {:>10} {:>5}",
        "pandaid", "queue(s)", "transfer(s)", "pct", "size", "D/F"
    );
    for r in rows.iter().take(12) {
        println!(
            "  {:<14} {:>10.0} {:>12.0} {:>6.1}% {:>10} {:>3}/{}",
            r.pandaid,
            r.queue_secs,
            r.transfer_secs,
            r.percent,
            bytes(r.transferred_bytes),
            r.task_status,
            r.job_status
        );
    }
    if rows.len() > 12 {
        println!("  ... ({} rows total)", rows.len());
    }
    let failed = rows.iter().filter(|r| r.job_status == 'F').count();
    let max_queue = rows.first().map(|r| r.queue_secs).unwrap_or(0.0);
    println!(
        "  rows {} | failed {} | longest queue {:.0}s\n",
        rows.len(),
        failed,
        max_queue
    );
}

fn fig78(ctx: &ReproContext, local: bool, title: &str) {
    println!("--- {title} ---");
    let matched_ids: Vec<u32> = ctx
        .rm2
        .jobs
        .iter()
        .flat_map(|j| j.transfers.iter().copied())
        .collect();
    let pairs = busiest_pairs(&ctx.campaign.store, &matched_ids, local, 6);
    let store = &ctx.campaign.store;
    for (src, dst, n) in pairs {
        let series = usage_series(
            matched_ids.iter().map(|&ti| &store.transfers[ti as usize]),
            src,
            dst,
            SimDuration::from_secs(300),
        );
        println!(
            "  {} -> {} : {n} transfers, peak {:.1} MBps, mean {:.1} MBps, {} active buckets",
            store.name(src),
            store.name(dst),
            series.peak_mbps(),
            series.mean_mbps(),
            series.points.len()
        );
    }
    println!();
}

fn fig9(ctx: &ReproContext) {
    println!("--- Fig 9: job counts by status vs transfer-time threshold ---");
    let thresholds = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0];
    let pts = threshold_sweep(&ctx.overlaps_exact, &thresholds);
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>12}",
        "T(%)",
        StatusCombo::ALL[0].label(),
        StatusCombo::ALL[1].label(),
        StatusCombo::ALL[2].label(),
        StatusCombo::ALL[3].label()
    );
    for p in &pts {
        println!(
            "  {:>6} {:>12} {:>12} {:>12} {:>12}",
            p.t_percent, p.counts[0], p.counts[1], p.counts[2], p.counts[3]
        );
    }
    let ok = ctx
        .overlaps_exact
        .iter()
        .filter(|o| o.job_succeeded)
        .count();
    println!(
        "  overall success: {} (paper: 80.5%)",
        pct(ok, ctx.overlaps_exact.len())
    );
    let above = above_threshold(&ctx.overlaps_exact, 75.0);
    let failed_above = above[1] + above[3];
    println!(
        "  jobs above T=75%: {} of which failed {} (paper: 72, mostly failed)\n",
        above.iter().sum::<usize>(),
        failed_above
    );
}

fn case_studies(ctx: &ReproContext) {
    println!("--- Case studies (Figs 10-12, Table 3) ---");
    let store = &ctx.campaign.store;

    match cases::find_sequential_staging_case(store, &ctx.exact) {
        Some(tl) => {
            println!(
                "  [Fig 10] successful job {} | transfer {:.1}% of queue | sequential: {} | throughput spread {:.1}x",
                tl.pandaid,
                tl.transfer_percent,
                tl.transfers_sequential(),
                tl.throughput_spread()
            );
            for t in &tl.transfers {
                println!(
                    "      {:>10}  {:?} -> {:?}  {:.1} MBps  {} -> {}",
                    bytes(t.bytes),
                    t.start,
                    t.end,
                    t.throughput / 1e6,
                    t.source,
                    t.destination
                );
            }
        }
        None => println!("  [Fig 10] no sequential-staging case in this sample"),
    }

    match cases::find_spanning_failure_case(store, &ctx.exact) {
        Some(tl) => {
            println!(
                "  [Fig 11] failed job {} (error {:?}) | transfers span queue+wall | {:.1}% of queue",
                tl.pandaid, tl.error_code, tl.transfer_percent
            );
            for t in &tl.transfers {
                println!(
                    "      {:>10}  {:?} -> {:?}  {:.1} MBps",
                    bytes(t.bytes),
                    t.start,
                    t.end,
                    t.throughput / 1e6
                );
            }
        }
        None => println!("  [Fig 11] no spanning-failure case in this sample"),
    }

    match cases::find_redundant_unknown_case(store, &ctx.rm2, SimDuration::from_days(2)) {
        Some((tl, witnesses)) => {
            println!(
                "  [Fig 12] RM2 job {} with UNKNOWN-destination transfers; {} byte-identical witnesses:",
                tl.pandaid,
                witnesses.len()
            );
            for t in tl.transfers.iter().take(3) {
                println!(
                    "      matched : {:>10}  dest '{}' (inferred {})",
                    bytes(t.bytes),
                    t.destination,
                    tl.computing_site
                );
            }
            for &w in witnesses.iter().take(3) {
                let t = &store.transfers[w as usize];
                println!(
                    "      witness : {:>10}  {} -> {}",
                    bytes(t.file_size),
                    store.name(t.source_site),
                    store.name(t.destination_site)
                );
            }
        }
        None => println!("  [Fig 12] no redundant-unknown case in this sample"),
    }

    // Redundancy census (the paper: "many extra examples identified by RM2
    // fall into this category").
    let groups = dmsa_core::infer::redundant_groups(store, SimDuration::from_days(1), |i| {
        store.transfers[i as usize].destination_site
    });
    println!(
        "  redundant same-destination delivery groups: {}\n",
        groups.len()
    );
}

fn eval_section(ctx: &ReproContext) {
    println!("--- Extension: ground-truth evaluation of the matchers ---");
    println!(
        "  {:<7} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "Method", "precision", "recall", "F1", "job-prec", "job-recall"
    );
    for method in MatchMethod::ALL {
        let e = evaluate(&ctx.campaign.store, ctx.set(method), ctx.campaign.window);
        println!(
            "  {:<7} {:>10.3} {:>10.3} {:>8.3} {:>10.3} {:>10.3}",
            method.label(),
            e.transfer_precision(),
            e.transfer_recall(),
            e.transfer_f1(),
            e.job_precision(),
            e.job_recall()
        );
    }

    // The scored-matcher extension: a tunable precision/recall curve over
    // the same candidates (threshold 1.0 ~ exact; low thresholds trade
    // precision for recall beyond RM2).
    println!("  scored matcher threshold sweep:");
    let scored = ScoredMatcher::default();
    for threshold in [0.95, 0.85, 0.75, 0.65, 0.55] {
        let set = scored.match_jobs_scored(&ctx.campaign.store, ctx.campaign.window, threshold);
        let e = evaluate(&ctx.campaign.store, &set, ctx.campaign.window);
        println!(
            "  t={:<5} {:>10.3} {:>10.3} {:>8.3}   ({} transfers, {} jobs)",
            threshold,
            e.transfer_precision(),
            e.transfer_recall(),
            e.transfer_f1(),
            set.n_matched_transfers(),
            set.n_matched_jobs()
        );
    }
    println!();
}
