//! Case-study extraction and anomaly detectors (Figs 10–12, Table 3).
//!
//! The paper's three case studies each exhibit a distinct pathology:
//!
//! * **Fig 10** — a *successful* job that spent 83 % of its queue on three
//!   strictly sequential local transfers with a 17.7× throughput spread:
//!   bandwidth under-utilization from serialized staging.
//! * **Fig 11** — a *failed* job whose 20.5 GB transfer spanned both the
//!   queuing and wall phases, occupying >90 % of the lifetime.
//! * **Fig 12 / Table 3** — an RM2-matched job whose files had already been
//!   delivered once (redundant transfers) and whose `UNKNOWN` destination
//!   is recoverable from byte-identical duplicates.
//!
//! [`JobTimeline`] renders any matched job in the same shape the paper's
//! timeline figures use; the `find_*` selectors pick the figure-worthy
//! specimens out of a match set.

use crate::overlap::{all_overlaps, job_overlap};
use dmsa_core::{MatchSet, MatchedJob};
use dmsa_metastore::MetaStore;
use dmsa_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// One transfer bar of a timeline figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelineTransfer {
    /// Transfer index in the store.
    pub transfer_idx: u32,
    /// Recorded start.
    pub start: SimTime,
    /// Recorded end.
    pub end: SimTime,
    /// Recorded size, bytes.
    pub bytes: u64,
    /// Mean throughput, bytes/second.
    pub throughput: f64,
    /// Download (towards the computing site) vs upload.
    pub is_download: bool,
    /// Recorded source site name.
    pub source: String,
    /// Recorded destination site name.
    pub destination: String,
}

/// A matched job's full timeline (the shape of Figs 10–12).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobTimeline {
    /// `pandaid`.
    pub pandaid: u64,
    /// Creation instant.
    pub creation: SimTime,
    /// Execution start (queue end).
    pub start: SimTime,
    /// Completion.
    pub end: SimTime,
    /// Job status letter.
    pub job_status: char,
    /// Error code if failed.
    pub error_code: Option<u32>,
    /// Computing site name.
    pub computing_site: String,
    /// Transfer-time percentage of the queue.
    pub transfer_percent: f64,
    /// The matched transfers in start order.
    pub transfers: Vec<TimelineTransfer>,
}

impl JobTimeline {
    /// Build the timeline of one matched job.
    pub fn build(store: &MetaStore, mj: &MatchedJob) -> JobTimeline {
        let job = &store.jobs[mj.job_idx as usize];
        let o = job_overlap(store, mj);
        let mut transfers: Vec<TimelineTransfer> = mj
            .transfers
            .iter()
            .map(|&ti| {
                let t = &store.transfers[ti as usize];
                TimelineTransfer {
                    transfer_idx: ti,
                    start: t.starttime,
                    end: t.endtime,
                    bytes: t.file_size,
                    throughput: t.throughput_bytes_per_sec(),
                    is_download: t.is_download,
                    source: store.name(t.source_site).to_string(),
                    destination: store.name(t.destination_site).to_string(),
                }
            })
            .collect();
        transfers.sort_by_key(|t| t.start);
        JobTimeline {
            pandaid: job.pandaid,
            creation: job.creationtime,
            start: job.starttime,
            end: job.endtime,
            job_status: job.status.letter(),
            error_code: job.error_code,
            computing_site: store.name(job.computingsite).to_string(),
            transfer_percent: o.percent,
            transfers,
        }
    }

    /// Are the transfers strictly sequential (each starts at or after the
    /// previous one ends)? With ≥2 transfers this is the Fig 10 evidence
    /// of serialized staging.
    pub fn transfers_sequential(&self) -> bool {
        self.transfers.windows(2).all(|w| w[1].start >= w[0].end)
    }

    /// Max/min throughput ratio across transfers (1.0 for fewer than two).
    pub fn throughput_spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for t in &self.transfers {
            lo = lo.min(t.throughput);
            hi = hi.max(t.throughput);
        }
        if self.transfers.len() < 2 || lo <= 0.0 {
            1.0
        } else {
            hi / lo
        }
    }

    /// Does any *stage-in* transfer cross the queue/wall boundary — i.e.
    /// start during queuing and finish during execution (the Fig 11
    /// anomaly)? Uploads legitimately run during wall time and don't count.
    pub fn any_transfer_spans_wall(&self) -> bool {
        self.transfers
            .iter()
            .any(|t| t.is_download && t.start < self.start && t.end > self.start)
    }
}

/// Fig 10 selector: the successful all-local job whose staging was
/// strictly sequential, preferring specimens that also show a large
/// throughput spread (the paper's case pairs 83 % queue share with a
/// 17.7x spread between its fastest and slowest transfer).
pub fn find_sequential_staging_case(store: &MetaStore, set: &MatchSet) -> Option<JobTimeline> {
    let overlaps = all_overlaps(store, set);
    let mut best: Option<(f64, JobTimeline)> = None;
    for (mj, o) in set.jobs.iter().zip(&overlaps) {
        if !o.job_succeeded || !o.all_local || mj.transfers.len() < 2 {
            continue;
        }
        let tl = JobTimeline::build(store, mj);
        if !tl.transfers_sequential() {
            continue;
        }
        // Spread dominates, percentage breaks ties: a 15x spread at 60 %
        // queue share is figure-worthier than 1x at 90 %.
        let score = tl.throughput_spread().min(50.0) * 1_000.0 + tl.transfer_percent;
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, tl));
        }
    }
    best.map(|(_, tl)| tl)
}

/// Fig 11 selector: the failed job whose transfers extend furthest into
/// its wall time (relative to lifetime).
pub fn find_spanning_failure_case(store: &MetaStore, set: &MatchSet) -> Option<JobTimeline> {
    let mut best: Option<(f64, JobTimeline)> = None;
    for mj in &set.jobs {
        let job = &store.jobs[mj.job_idx as usize];
        if job.status != dmsa_panda_sim::JobStatus::Failed {
            continue;
        }
        let tl = JobTimeline::build(store, mj);
        if !tl.any_transfer_spans_wall() {
            continue;
        }
        // Fraction of the lifetime covered by the longest transfer.
        let lifetime = (tl.end - tl.creation).as_secs_f64().max(1.0);
        let longest = tl
            .transfers
            .iter()
            .map(|t| (t.end - t.start).as_secs_f64())
            .fold(0.0, f64::max);
        let frac = longest / lifetime;
        if best.as_ref().is_none_or(|(f, _)| frac > *f) {
            best = Some((frac, tl));
        }
    }
    best.map(|(_, tl)| tl)
}

/// Fig 12 selector: an RM2-matched job with at least one unknown-endpoint
/// transfer whose file was also delivered with valid metadata nearby
/// (redundant + inferable). Returns the timeline plus the witness indices.
pub fn find_redundant_unknown_case(
    store: &MetaStore,
    set: &MatchSet,
    dup_window: dmsa_simcore::SimDuration,
) -> Option<(JobTimeline, Vec<u32>)> {
    let inferences = dmsa_core::infer::infer_sites(store, set, dup_window);
    for mj in &set.jobs {
        let witnesses: Vec<u32> = inferences
            .iter()
            .filter(|inf| mj.transfers.binary_search(&inf.transfer_idx).is_ok())
            .filter_map(|inf| match inf.evidence {
                dmsa_core::infer::InferenceEvidence::JobLinkAndDuplicate { witness } => {
                    Some(witness)
                }
                _ => None,
            })
            .collect();
        if !witnesses.is_empty() {
            return Some((JobTimeline::build(store, mj), witnesses));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_core::{MatchMethod, MatchedJob};
    use dmsa_metastore::{SymbolTable, TransferRecord};
    use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
    use dmsa_rucio_sim::Activity;

    struct Fx {
        store: MetaStore,
    }

    impl Fx {
        fn new() -> Self {
            let mut store = MetaStore::new();
            store.register_site("A");
            Fx { store }
        }

        fn site(&mut self, name: &str) -> dmsa_metastore::Sym {
            self.store.register_site(name)
        }

        fn job(&mut self, pandaid: u64, c: i64, s: i64, e: i64, ok: bool) -> u32 {
            let site = self.store.symbols.get("A").unwrap();
            self.store.jobs.push(dmsa_metastore::JobRecord {
                pandaid,
                jeditaskid: 1,
                computingsite: site,
                creationtime: SimTime::from_secs(c),
                starttime: SimTime::from_secs(s),
                endtime: SimTime::from_secs(e),
                ninputfilebytes: 0,
                noutputfilebytes: 0,
                io_mode: IoMode::StageIn,
                status: if ok {
                    JobStatus::Finished
                } else {
                    JobStatus::Failed
                },
                task_status: TaskStatus::Done,
                error_code: (!ok).then_some(1305),
                is_user_analysis: true,
            });
            (self.store.jobs.len() - 1) as u32
        }

        fn transfer(&mut self, a: i64, b: i64, bytes: u64) -> u32 {
            let site = self.store.symbols.get("A").unwrap();
            let id = self.store.transfers.len() as u64;
            self.store.transfers.push(TransferRecord {
                transfer_id: id,
                lfn: SymbolTable::UNKNOWN,
                dataset: SymbolTable::UNKNOWN,
                proddblock: SymbolTable::UNKNOWN,
                scope: SymbolTable::UNKNOWN,
                file_size: bytes,
                starttime: SimTime::from_secs(a),
                endtime: SimTime::from_secs(b),
                source_site: site,
                destination_site: site,
                activity: Activity::AnalysisDownload,
                jeditaskid: Some(1),
                is_download: true,
                is_upload: false,
                attempt: 1,
                succeeded: true,
                gt_pandaid: None,
                gt_source_site: site,
                gt_destination_site: site,
                gt_file_size: bytes,
            });
            id as u32
        }
    }

    fn set_of(jobs: Vec<MatchedJob>) -> MatchSet {
        MatchSet {
            method: MatchMethod::Exact,
            jobs,
        }
    }

    #[test]
    fn timeline_orders_transfers_and_computes_spread() {
        let mut fx = Fx::new();
        let j = fx.job(10, 0, 400, 1000, true);
        // Fig 10 shape: three sequential transfers, wildly different rates.
        let t1 = fx.transfer(100, 200, 2_100_000_000); // 21 MB/s
        let t0 = fx.transfer(0, 100, 4_400_000_000); // 44 MB/s
        let t2 = fx.transfer(200, 390, 500_000_000); // 2.6 MB/s
        let mj = MatchedJob {
            job_idx: j,
            transfers: vec![t0, t1, t2].tap_sort(),
        };
        let tl = JobTimeline::build(&fx.store, &mj);
        assert_eq!(tl.transfers.len(), 3);
        assert!(tl.transfers.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(tl.transfers_sequential());
        assert!(tl.throughput_spread() > 10.0);
        assert!(!tl.any_transfer_spans_wall());
    }

    trait TapSort {
        fn tap_sort(self) -> Self;
    }
    impl TapSort for Vec<u32> {
        fn tap_sort(mut self) -> Self {
            self.sort_unstable();
            self.dedup();
            self
        }
    }

    #[test]
    fn sequential_case_selector_prefers_highest_percent() {
        let mut fx = Fx::new();
        let j1 = fx.job(10, 0, 100, 500, true);
        let a = fx.transfer(0, 10, 1_000);
        let b = fx.transfer(10, 20, 1_000);
        let j2 = fx.job(11, 0, 100, 500, true);
        let c = fx.transfer(0, 40, 1_000);
        let d = fx.transfer(40, 95, 1_000);
        let set = set_of(vec![
            MatchedJob {
                job_idx: j1,
                transfers: vec![a, b],
            },
            MatchedJob {
                job_idx: j2,
                transfers: vec![c, d],
            },
        ]);
        let tl = find_sequential_staging_case(&fx.store, &set).unwrap();
        assert_eq!(tl.pandaid, 11, "95 % beats 20 %");
    }

    #[test]
    fn spanning_failure_selector_requires_failure_and_span() {
        let mut fx = Fx::new();
        // Succeeded job with a spanning transfer: not eligible.
        let j1 = fx.job(10, 0, 100, 2000, true);
        let a = fx.transfer(50, 1900, 20_500_000_000);
        // Failed job with a spanning transfer: the Fig 11 case.
        let j2 = fx.job(11, 0, 100, 2000, false);
        let b = fx.transfer(60, 1950, 20_500_000_000);
        // Failed job without spanning: not eligible.
        let j3 = fx.job(12, 0, 100, 2000, false);
        let c = fx.transfer(0, 50, 4_600_000_000);
        let set = set_of(vec![
            MatchedJob {
                job_idx: j1,
                transfers: vec![a],
            },
            MatchedJob {
                job_idx: j2,
                transfers: vec![b],
            },
            MatchedJob {
                job_idx: j3,
                transfers: vec![c],
            },
        ]);
        let tl = find_spanning_failure_case(&fx.store, &set).unwrap();
        assert_eq!(tl.pandaid, 11);
        assert_eq!(tl.job_status, 'F');
        assert_eq!(tl.error_code, Some(1305));
        assert!(tl.any_transfer_spans_wall());
    }

    #[test]
    fn redundant_unknown_selector_finds_fig12_shape() {
        let mut fx = Fx::new();
        let cern = fx.site("CERN-PROD");
        let j = fx.job(6585617863, 0, 1277, 4000, true);
        // Override the job site to CERN.
        fx.store.jobs[j as usize].computingsite = cern;
        // Witness: earlier valid delivery of the same bytes.
        let w = fx.transfer(100, 130, 5_243_410_528);
        fx.store.transfers[w as usize].source_site = cern;
        fx.store.transfers[w as usize].destination_site = cern;
        fx.store.transfers[w as usize].lfn = SymbolTable::UNKNOWN;
        // Matched transfer with unknown destination.
        let m = fx.transfer(1180, 1271, 5_243_410_528);
        fx.store.transfers[m as usize].source_site = cern;
        fx.store.transfers[m as usize].destination_site = SymbolTable::UNKNOWN;
        let set = MatchSet {
            method: MatchMethod::Rm2,
            jobs: vec![MatchedJob {
                job_idx: j,
                transfers: vec![m],
            }],
        };
        let (tl, witnesses) =
            find_redundant_unknown_case(&fx.store, &set, dmsa_simcore::SimDuration::from_days(1))
                .unwrap();
        assert_eq!(tl.pandaid, 6585617863);
        assert_eq!(witnesses, vec![w]);
    }

    #[test]
    fn selectors_return_none_on_empty_sets() {
        let fx = Fx::new();
        let set = set_of(vec![]);
        assert!(find_sequential_staging_case(&fx.store, &set).is_none());
        assert!(find_spanning_failure_case(&fx.store, &set).is_none());
        assert!(find_redundant_unknown_case(
            &fx.store,
            &set,
            dmsa_simcore::SimDuration::from_days(1)
        )
        .is_none());
    }
}
