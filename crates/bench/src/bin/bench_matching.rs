//! Emit the tracked matching benchmark baseline (`BENCH_matching.json`).
//!
//! ```text
//! cargo run --release -p dmsa-bench --bin bench_matching -- \
//!     [--scale F] [--seed N] [--naive] [--out FILE]
//! ```
//!
//! Runs one 8-day campaign at `--scale` (default 0.01), measures prepared
//! index build time and per-engine matching throughput for every method,
//! and writes the JSON report. `--naive` additionally times the quadratic
//! reference engine (only sensible at small scales). `--out -` prints to
//! stdout.

use dmsa_bench::report;
use dmsa_scenario::ScenarioConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: bench_matching [--scale F] [--seed N] [--naive] [--out FILE|-]");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut scale = 0.01f64;
    let mut seed = 42u64;
    let mut include_naive = false;
    let mut out = "BENCH_matching.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--naive" => {
                include_naive = true;
                i += 1;
            }
            flag @ ("--scale" | "--seed" | "--out") => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--scale" => scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?,
                    "--seed" => seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
                    _ => out = value.clone(),
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let config = ScenarioConfig {
        seed,
        ..ScenarioConfig::paper_8day(scale)
    };
    eprintln!("simulating 8-day campaign at scale {scale} (seed {seed})...");
    let campaign = dmsa_scenario::run(&config);
    let (jobs, _, transfers, _) = campaign.store.counts();
    eprintln!("store: {jobs} jobs, {transfers} transfers; measuring engines...");

    let report = report::measure(&campaign, scale, include_naive);
    eprintln!(
        "prepared build {:.1} ms | shared 3-method pass {:.1} ms",
        report.build_ms, report.shared_all_methods_ms
    );
    for e in &report.engines {
        eprintln!(
            "  {:<8} {:<5} {:>10.1} ms  {:>12.0} jobs/s  {} matched",
            e.engine, e.method, e.millis, e.jobs_per_s, e.matched_jobs
        );
    }

    let json = report.to_json();
    if out == "-" {
        println!("{json}");
    } else {
        std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out} ({} bytes)", json.len());
    }
    Ok(())
}
