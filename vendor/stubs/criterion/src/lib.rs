//! Offline criterion stub: same surface, runs each benchmark body once.

use std::fmt::Display;

pub struct Criterion;

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench(stub): {id}");
        f(&mut Bencher);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}/{}", self.name, id);
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I: Display, P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}/{}", self.name, id);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = black_box(f());
    }
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
