//! Data Identifiers: scopes and hierarchical names.
//!
//! Rucio references all data by globally unique Data Identifiers (DIDs) —
//! a `(scope, name)` pair — "ensuring immutable naming and provenance"
//! (paper §2.2). We model scopes as a small closed set (user analysis
//! scopes plus production scopes) and generate names that look like real
//! ATLAS LFNs so that string-keyed joins in the matcher behave like
//! production joins (hash collisions, interning pressure, etc.).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Rucio scope, e.g. `user.alice` or `mc23_13p6TeV`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Scope {
    /// Per-user analysis scope (`user.u<N>`).
    User(u32),
    /// Monte-Carlo production scope.
    McProd,
    /// Detector data scope.
    Data,
    /// Group-analysis derived data.
    GroupPhys,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::User(n) => write!(f, "user.u{n:04}"),
            Scope::McProd => write!(f, "mc23_13p6TeV"),
            Scope::Data => write!(f, "data24_13p6TeV"),
            Scope::GroupPhys => write!(f, "group.phys-higgs"),
        }
    }
}

/// A DID name (dataset or file). Thin newtype so signatures stay legible.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DidName(pub String);

impl fmt::Display for DidName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Build a dataset name in the ATLAS style for a task.
pub fn dataset_name(scope: Scope, task_seq: u64, stream: &str) -> DidName {
    DidName(format!(
        "{scope}.{task_seq:08}.{stream}.DAOD_PHYS.e8514_s4159_r15224"
    ))
}

/// Build a file LFN within a dataset.
pub fn file_lfn(scope: Scope, task_seq: u64, file_seq: u32) -> DidName {
    DidName(format!(
        "{scope}.{task_seq:08}.DAOD_PHYS._{file_seq:06}.pool.root.1"
    ))
}

/// Build the production data-block ("proddblock") name for a dataset
/// sub-block. PanDA's file table records this block-level identifier and
/// Algorithm 1 joins on it.
pub fn prod_dblock(dataset: &DidName, sub: u32) -> DidName {
    DidName(format!("{dataset}_sub{sub:04}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_display_forms() {
        assert_eq!(Scope::User(7).to_string(), "user.u0007");
        assert_eq!(Scope::McProd.to_string(), "mc23_13p6TeV");
        assert_eq!(Scope::Data.to_string(), "data24_13p6TeV");
        assert_eq!(Scope::GroupPhys.to_string(), "group.phys-higgs");
    }

    #[test]
    fn names_embed_identifiers() {
        let ds = dataset_name(Scope::User(3), 42, "higgs");
        assert!(ds.0.contains("user.u0003"));
        assert!(ds.0.contains("00000042"));
        let f = file_lfn(Scope::User(3), 42, 5);
        assert!(f.0.contains("_000005"));
        let b = prod_dblock(&ds, 2);
        assert!(b.0.ends_with("_sub0002"));
        assert!(b.0.starts_with(&ds.0));
    }

    #[test]
    fn distinct_files_have_distinct_lfns() {
        let a = file_lfn(Scope::User(1), 1, 1);
        let b = file_lfn(Scope::User(1), 1, 2);
        let c = file_lfn(Scope::User(1), 2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
