//! JEDI tasks.

use crate::types::{IoMode, TaskId, TaskKind, TaskStatus};
use dmsa_rucio_sim::DatasetId;
use dmsa_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// A JEDI task: the unit users submit. Fans out into jobs that share its
/// `jeditaskid` and input dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JediTask {
    /// `jeditaskid`.
    pub id: TaskId,
    /// User analysis or production.
    pub kind: TaskKind,
    /// Submitting user index (drives the DID scope of outputs).
    pub user: u32,
    /// Input dataset (already registered in the Rucio catalog).
    pub input_dataset: DatasetId,
    /// Number of jobs the task fans out into.
    pub n_jobs: u32,
    /// How the task's jobs read input.
    pub io_mode: IoMode,
    /// Submission instant.
    pub created: SimTime,
    /// Intrinsic quality: a "doomed" task (bad configuration, broken
    /// payload) fails most of its jobs regardless of infrastructure. This
    /// produces the paper's Fig 9 four-way (job, task) status split.
    pub doomed: bool,
}

/// Mutable task progress tracked by the scenario driver.
#[derive(Clone, Debug, Default)]
pub struct TaskProgress {
    /// Jobs finished successfully.
    pub n_finished: u32,
    /// Jobs failed.
    pub n_failed: u32,
}

impl TaskProgress {
    /// Record one job outcome.
    pub fn record(&mut self, success: bool) {
        if success {
            self.n_finished += 1;
        } else {
            self.n_failed += 1;
        }
    }

    /// All jobs accounted for?
    pub fn is_complete(&self, task: &JediTask) -> bool {
        self.n_finished + self.n_failed >= task.n_jobs
    }

    /// Final task status: failed if more than half its jobs failed, or if
    /// the task was doomed from the start.
    pub fn final_status(&self, task: &JediTask) -> TaskStatus {
        let total = (self.n_finished + self.n_failed).max(1);
        if task.doomed || self.n_failed * 2 > total {
            TaskStatus::Failed
        } else {
            TaskStatus::Done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n_jobs: u32, doomed: bool) -> JediTask {
        JediTask {
            id: TaskId(1),
            kind: TaskKind::UserAnalysis,
            user: 0,
            input_dataset: DatasetId(0),
            n_jobs,
            io_mode: IoMode::StageIn,
            created: SimTime::EPOCH,
            doomed,
        }
    }

    #[test]
    fn progress_counts_and_completion() {
        let t = task(3, false);
        let mut p = TaskProgress::default();
        p.record(true);
        p.record(false);
        assert!(!p.is_complete(&t));
        p.record(true);
        assert!(p.is_complete(&t));
        assert_eq!(p.n_finished, 2);
        assert_eq!(p.n_failed, 1);
    }

    #[test]
    fn healthy_task_with_minor_failures_is_done() {
        let t = task(4, false);
        let mut p = TaskProgress::default();
        for ok in [true, true, true, false] {
            p.record(ok);
        }
        assert_eq!(p.final_status(&t), TaskStatus::Done);
    }

    #[test]
    fn majority_failure_fails_task() {
        let t = task(4, false);
        let mut p = TaskProgress::default();
        for ok in [false, false, false, true] {
            p.record(ok);
        }
        assert_eq!(p.final_status(&t), TaskStatus::Failed);
    }

    #[test]
    fn doomed_task_fails_even_if_jobs_succeed() {
        let t = task(2, true);
        let mut p = TaskProgress::default();
        p.record(true);
        p.record(true);
        assert_eq!(p.final_status(&t), TaskStatus::Failed);
    }
}
