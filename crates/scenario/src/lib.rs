//! # dmsa-scenario
//!
//! The end-to-end campaign driver: wires the PanDA substrate (tasks, jobs,
//! brokerage) to the Rucio substrate (catalog, rules, transfer engine) over
//! one shared discrete-event loop, then flattens the result into the
//! metadata store — corrupted exactly as production telemetry is — ready
//! for the matcher and the analyses.
//!
//! ```text
//!  TopologyConfig ─┐
//!  WorkloadParams ─┤                      ┌─> JobRecords   ─┐
//!  BrokerConfig   ─┼─> [ event loop ] ────┼─> FileRecords  ─┼─> CorruptionModel ─> MetaStore
//!  FailureModel   ─┤   tasks→jobs→        └─> TransferRecords┘        │
//!  CorruptionModel┘   staging→exec→upload                     (gt_* fields kept)
//! ```
//!
//! [`ScenarioConfig`] presets reproduce the paper's observation campaigns
//! at configurable scale: [`ScenarioConfig::paper_8day`] for the §5
//! matching study (966,453 user jobs / 6.78 M transfers at `scale = 1.0`)
//! and [`ScenarioConfig::paper_92day`] for the Fig 3 transfer matrix.

pub mod config;
pub mod driver;
pub mod grid;
pub mod snapshot;

pub use config::ScenarioConfig;
pub use driver::{
    fork_with_config, prefix_snapshot, resume_checkpointed, run, run_cancelable, run_checkpointed,
    run_forked, run_with_queue, shared_prefix, shared_prefix_cancelable, Campaign, CancelToken,
    SharedPrefix,
};
pub use grid::{BreakerSetting, GridCell, PresetAxis, SweepGrid};
pub use snapshot::SNAPSHOT_VERSION;
