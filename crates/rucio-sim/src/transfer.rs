//! The FTS-like file transfer engine.
//!
//! Implements the three-step Rucio transfer workflow of paper §2.2:
//! (1) **data discovery** — does the destination already hold a replica?
//! (2) **replica selection** — choose the source replica with the best
//! current effective throughput towards the destination (local replicas
//! always win); (3) **file transfer** — integrate the time-varying link
//! bandwidth to obtain the completion time.
//!
//! Concurrency is limited by per-site storage-frontend streams
//! ([`dmsa_gridnet::Site::transfer_slots`]). A transfer occupies one stream
//! at *each* endpoint; sites with a single stream therefore serialize all
//! their transfers — reproducing the paper's Fig 10 case study, where three
//! stage-in transfers at one site ran strictly back-to-back and left the
//! link idle ("clear evidence of bandwidth underutilization").
//!
//! ## Failures and retries
//!
//! When a [`FaultModel`] is attached ([`TransferEngine::with_faults`]),
//! individual attempts can fail — with elevated probability inside the
//! model's outage windows. A failed attempt still occupies its streams for
//! the partial duration it ran, emits its own [`TransferEvent`] (marked
//! `succeeded = false`), and is retried after exponential backoff with
//! jitter, up to [`RetryPolicy::max_retries`] extra attempts. This is the
//! causal source of two of the paper's anomaly classes: retry attempts of
//! the same file to the same destination are §5.2's *redundant transfers*,
//! and the widening `queued → starttime` gap across attempts is §5.3's
//! *staging delay*. When every attempt fails the file is simply not
//! delivered ([`TransferOutcome::Exhausted`]) and the consumer degrades
//! gracefully — the PanDA side surfaces it as a lost-input job failure.
//!
//! All failure draws come from a dedicated `"rucio/transfer-faults"` RNG
//! stream and are taken only when faults are enabled, so a zero-knob
//! engine replays the exact draw sequence of an engine built without a
//! fault model at all.

use crate::activity::Activity;
use crate::catalog::{FileId, ReplicaCatalog};
use crate::did::Scope;
use dmsa_gridnet::{
    BandwidthModel, FaultConfig, FaultModel, GridTopology, HealthMonitor, RseId, SiteId,
};
use dmsa_simcore::SimRng;
use dmsa_simcore::{RngFactory, SimDuration, SimTime, Sym};
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Transfer event identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TransferId(pub u64);

/// A request to move one file to a destination RSE.
#[derive(Clone, Debug)]
pub struct TransferRequest {
    /// File to move.
    pub file: FileId,
    /// Destination RSE.
    pub dest: RseId,
    /// Why the transfer is happening.
    pub activity: Activity,
    /// Ground truth: the PanDA job that triggered this transfer, if any.
    pub caused_by_pandaid: Option<u64>,
    /// Ground truth: the JEDI task of that job, if any.
    pub jeditaskid: Option<u64>,
    /// Pin the source replica (used by stage-in so one job's files all
    /// come from the same site; honored only if that RSE holds a replica).
    pub preferred_source: Option<RseId>,
}

/// A completed (scheduled) transfer with full ground-truth metadata.
///
/// Field names deliberately mirror the Rucio/PanDA attributes Algorithm 1
/// joins on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransferEvent {
    /// Identifier.
    pub id: TransferId,
    /// File moved.
    pub file: FileId,
    /// Logical file name (interned in the catalog's
    /// [symbol table](ReplicaCatalog::names)).
    pub lfn: Sym,
    /// Owning dataset DID name (interned).
    pub dataset: Sym,
    /// Production block identifier (interned).
    pub proddblock: Sym,
    /// DID scope.
    pub scope: Scope,
    /// Exact size in bytes.
    pub file_size: u64,
    /// True source site.
    pub source_site: SiteId,
    /// True destination site.
    pub destination_site: SiteId,
    /// When the request entered the engine (shared by every attempt of
    /// the same request — retries widen the queued→start gap).
    pub queued: SimTime,
    /// When bytes started flowing (slot acquired).
    pub starttime: SimTime,
    /// When the last byte arrived (or the attempt died).
    pub endtime: SimTime,
    /// Activity class.
    pub activity: Activity,
    /// 1-based attempt ordinal within the request.
    pub attempt: u32,
    /// Did this attempt deliver the file?
    pub succeeded: bool,
    /// Ground truth: triggering job, hidden from the matcher.
    pub caused_by_pandaid: Option<u64>,
    /// `jeditaskid` as Rucio would record it (pre-corruption).
    pub jeditaskid: Option<u64>,
}

impl TransferEvent {
    /// Achieved mean throughput in bytes/second.
    pub fn throughput_bytes_per_sec(&self) -> f64 {
        BandwidthModel::mean_throughput_bytes_per_sec(self.file_size, self.starttime, self.endtime)
    }

    /// Local (intra-site) transfer?
    pub fn is_local(&self) -> bool {
        self.source_site == self.destination_site
    }
}

/// Exponential-backoff retry policy for failed transfer attempts
/// (Rucio's `--max-retries` / FTS retry semantics).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Uniform jitter fraction (`0.25` = ±25 %) decorrelating retry storms.
    pub backoff_jitter: f64,
    /// Ceiling on any single backoff delay (pre-jitter): keeps
    /// `backoff_factor^retry` from producing absurd or overflowing
    /// durations at large attempt counts.
    #[serde(default = "RetryPolicy::default_backoff_max")]
    pub backoff_max: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: SimDuration::from_secs(60),
            backoff_factor: 2.0,
            backoff_jitter: 0.25,
            backoff_max: Self::default_backoff_max(),
        }
    }
}

impl RetryPolicy {
    /// Default backoff ceiling: one hour, FTS's maximum retry spacing.
    pub fn default_backoff_max() -> SimDuration {
        SimDuration::from_hours(1)
    }

    /// Delay before retry number `retry` (1-based), with `u ∈ [0, 1)`
    /// supplying the jitter. The exponential part saturates at
    /// `backoff_max`; jitter applies on top, so the delay never exceeds
    /// `backoff_max * (1 + backoff_jitter)`.
    pub fn backoff(&self, retry: u32, u: f64) -> SimDuration {
        let exp = self.backoff_factor.powi(retry.saturating_sub(1) as i32);
        let max_ms = self.backoff_max.as_millis().max(0) as f64;
        let nominal = (self.backoff_base.as_millis() as f64 * exp).min(max_ms);
        let jitter = 1.0 + self.backoff_jitter * (2.0 * u - 1.0);
        let ms = nominal * jitter;
        SimDuration::from_millis(ms.round().max(0.0) as i64)
    }
}

/// Unconditional per-engine transfer-path counters. Cheap enough to keep
/// always-on; the `exclusion` analysis report compares them between an
/// adaptive and a baseline campaign to quantify what the breakers bought.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferPathStats {
    /// Requests handed to [`TransferEngine::execute`].
    pub requests: u64,
    /// Requests whose file arrived.
    pub delivered: u64,
    /// Delivered requests that needed more than one attempt.
    pub delivered_after_retry: u64,
    /// Individual attempts that died mid-flight.
    pub failed_attempts: u64,
    /// Requests that burned their whole retry budget undelivered.
    pub exhausted: u64,
    /// Requests with no source replica anywhere.
    pub no_replica: u64,
}

/// Allocation-free verdict from [`TransferEngine::execute_into`]. The
/// attempt events land in the caller's sink; this tells the caller what
/// the appended suffix means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferStatus {
    /// The file arrived; the last appended event is the delivery.
    Delivered,
    /// Every attempt failed; the file was not delivered.
    Exhausted,
    /// No source replica anywhere; nothing was appended.
    NoReplica,
}

/// What [`TransferEngine::execute`] did with a request.
#[derive(Clone, Debug)]
pub enum TransferOutcome {
    /// The file arrived. The last event is the successful attempt; any
    /// earlier ones are failed attempts that preceded it.
    Delivered(Vec<TransferEvent>),
    /// Every attempt failed; the file was *not* delivered and no replica
    /// was registered. The consumer must degrade gracefully.
    Exhausted(Vec<TransferEvent>),
    /// The file has no source replica anywhere (lost data): nothing was
    /// attempted and no slot was touched.
    NoReplica,
}

impl TransferOutcome {
    /// The successful delivery event, if any.
    pub fn delivered(&self) -> Option<&TransferEvent> {
        match self {
            TransferOutcome::Delivered(evs) => evs.last(),
            _ => None,
        }
    }

    /// All attempt events, oldest first (empty for [`Self::NoReplica`]).
    pub fn events(&self) -> &[TransferEvent] {
        match self {
            TransferOutcome::Delivered(evs) | TransferOutcome::Exhausted(evs) => evs,
            TransferOutcome::NoReplica => &[],
        }
    }

    /// Consume into the attempt events.
    pub fn into_events(self) -> Vec<TransferEvent> {
        match self {
            TransferOutcome::Delivered(evs) | TransferOutcome::Exhausted(evs) => evs,
            TransferOutcome::NoReplica => Vec::new(),
        }
    }

    /// Did the file arrive?
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered(_))
    }
}

/// Checkpointable image of the transfer engine's mutable state. The
/// immutable parts (fault model, retry policy, jitter parameters) are
/// rebuilt from the scenario config on resume; what must survive is the
/// slot occupancy, the id counter, the two RNG stream positions, and the
/// counters. Slot free-times are sorted per site, so equal engines always
/// snapshot identically regardless of heap layout.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferEngineSnapshot {
    /// Per-site stream free-times (epoch ms), sorted ascending.
    pub slots: Vec<Vec<i64>>,
    /// Next transfer id.
    pub next_id: u64,
    /// `"rucio/transfer-jitter"` stream position.
    pub jitter_rng: [u64; 4],
    /// `"rucio/transfer-faults"` stream position.
    pub fault_rng: [u64; 4],
    /// Always-on request/attempt counters.
    pub stats: TransferPathStats,
}

/// Per-site stream accounting + transfer execution.
pub struct TransferEngine {
    /// `slots[site]` holds one entry per stream: the time it frees up.
    slots: Vec<BinaryHeap<Reverse<i64>>>,
    next_id: u64,
    /// Per-transfer duration jitter (TCP ramp-up, disk-cache state,
    /// per-stream fair-share): log-normal multiplier on the integrated
    /// duration, plus rare deep stalls. This is what produces the paper's
    /// 17.7x throughput spread between back-to-back transfers of
    /// similar-sized files at the same site (Fig 10) and the 20x spread
    /// of Fig 11.
    jitter_rng: SimRng,
    jitter_sigma: f64,
    stall_prob: f64,
    /// Outage schedule / attempt-failure oracle.
    faults: FaultModel,
    /// Backoff schedule for failed attempts.
    retry: RetryPolicy,
    /// Failure + backoff-jitter draws; touched only when faults are
    /// enabled, so zero-knob runs replay the fault-free draw sequence.
    fault_rng: SimRng,
    /// Always-on request/attempt counters.
    stats: TransferPathStats,
}

impl TransferEngine {
    /// Engine for `topology`, all streams free at the epoch, faults
    /// disabled. Jitter draws come from the `"rucio/transfer-jitter"`
    /// stream of `rngs`, so runs are reproducible.
    pub fn new(topology: &GridTopology, rngs: &RngFactory) -> Self {
        Self::with_faults(
            topology,
            rngs,
            FaultModel::new(rngs, FaultConfig::none()),
            RetryPolicy::default(),
        )
    }

    /// Engine with a fault model and retry policy attached. With an inert
    /// fault config this is draw-for-draw identical to [`Self::new`].
    pub fn with_faults(
        topology: &GridTopology,
        rngs: &RngFactory,
        faults: FaultModel,
        retry: RetryPolicy,
    ) -> Self {
        let slots = topology
            .sites()
            .iter()
            .map(|s| {
                (0..s.transfer_slots.max(1))
                    .map(|_| Reverse(SimTime::EPOCH.as_millis()))
                    .collect()
            })
            .collect();
        TransferEngine {
            slots,
            next_id: 0,
            jitter_rng: rngs.stream("rucio/transfer-jitter"),
            jitter_sigma: 0.55,
            stall_prob: 0.02,
            faults,
            retry,
            fault_rng: rngs.stream("rucio/transfer-faults"),
            stats: TransferPathStats::default(),
        }
    }

    /// Draw the per-transfer duration multiplier.
    fn duration_factor(&mut self) -> f64 {
        let z = {
            // Box-Muller on the engine's own stream.
            let u1: f64 = self.jitter_rng.random::<f64>().max(1e-12);
            let u2: f64 = self.jitter_rng.random();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let mut f = (self.jitter_sigma * z).exp().clamp(0.6, 8.0);
        if self.jitter_rng.random::<f64>() < self.stall_prob {
            // Deep stall: retry storms, dead storage movers.
            f *= 4.0 + 16.0 * self.jitter_rng.random::<f64>();
        }
        f
    }

    /// Step 1+2 of the Rucio workflow: pick the best source replica of
    /// `file` for a transfer towards `dest_site` at time `t`.
    ///
    /// A replica already at the destination site is always preferred (the
    /// transfer then degenerates to a *local* storage-to-scratch move — the
    /// diagonal of Fig 3). Otherwise the replica with the highest current
    /// effective rate wins. Returns `None` when the file has no replicas.
    pub fn select_source(
        &self,
        catalog: &ReplicaCatalog,
        topology: &GridTopology,
        bw: &BandwidthModel,
        file: FileId,
        dest_site: SiteId,
        t: SimTime,
    ) -> Option<RseId> {
        let replicas = catalog.replicas_of(file);
        if replicas.is_empty() {
            return None;
        }
        if let Some(&local) = replicas
            .iter()
            .find(|&&r| topology.site_of_rse(r) == dest_site)
        {
            return Some(local);
        }
        Self::best_by_throughput(replicas, topology, bw, dest_site, t)
    }

    /// Highest-effective-rate replica with the deterministic tiebreak.
    fn best_by_throughput(
        replicas: &[RseId],
        topology: &GridTopology,
        bw: &BandwidthModel,
        dest_site: SiteId,
        t: SimTime,
    ) -> Option<RseId> {
        replicas.iter().copied().max_by(|&a, &b| {
            let ra = bw.effective_mbps(topology.site_of_rse(a), dest_site, t);
            let rb = bw.effective_mbps(topology.site_of_rse(b), dest_site, t);
            ra.total_cmp(&rb).then(b.cmp(&a)) // deterministic tiebreak
        })
    }

    /// Health-aware variant of [`Self::select_source`]: replicas whose
    /// source site or link breaker refuses traffic are skipped — *unless*
    /// they are the only replicas left, in which case the breaker is
    /// overridden (a file must never become unreachable just because its
    /// last host is on probation). A local replica still short-circuits:
    /// an intra-site move crosses no monitored link, and avoiding the
    /// destination site is the broker's job, not ours. The chosen source
    /// consumes a probe grant if it was on probation.
    ///
    /// With every breaker Closed this returns exactly what
    /// [`Self::select_source`] returns, so zero-fault adaptive runs stay
    /// byte-identical to non-adaptive ones.
    #[allow(clippy::too_many_arguments)]
    pub fn select_source_healthy(
        &self,
        catalog: &ReplicaCatalog,
        topology: &GridTopology,
        bw: &BandwidthModel,
        file: FileId,
        dest_site: SiteId,
        t: SimTime,
        health: &mut HealthMonitor,
    ) -> Option<RseId> {
        let replicas = catalog.replicas_of(file);
        if replicas.is_empty() {
            return None;
        }
        if let Some(&local) = replicas
            .iter()
            .find(|&&r| topology.site_of_rse(r) == dest_site)
        {
            return Some(local);
        }
        let admitted: Vec<RseId> = replicas
            .iter()
            .copied()
            .filter(|&r| health.source_admits(topology.site_of_rse(r), dest_site, t))
            .collect();
        let pool: &[RseId] = if admitted.is_empty() {
            replicas // only-replica override: degrade, don't starve
        } else {
            &admitted
        };
        let chosen = Self::best_by_throughput(pool, topology, bw, dest_site, t);
        if let Some(rse) = chosen {
            health.commit_source(topology.site_of_rse(rse), dest_site, t);
        }
        chosen
    }

    /// Execute a transfer request that became ready at `ready`.
    ///
    /// Picks the source replica, waits for a free stream at both
    /// endpoints, integrates link bandwidth for the duration, and repeats
    /// with exponential backoff while attempts fail (see module docs).
    /// On delivery the new replica is registered in the catalog. Every
    /// attempt — failed or not — appears in the outcome and consumed its
    /// streams for exactly the span of its event.
    pub fn execute(
        &mut self,
        req: &TransferRequest,
        ready: SimTime,
        catalog: &mut ReplicaCatalog,
        topology: &GridTopology,
        bw: &BandwidthModel,
    ) -> TransferOutcome {
        self.execute_monitored(req, ready, catalog, topology, bw, None)
    }

    /// [`Self::execute`] with an optional health monitor closing the
    /// loop: source selection skips Open sites/links (only-replica
    /// override aside) and every attempt outcome — plus a final
    /// exhaustion, if any — is fed back as breaker telemetry.
    pub fn execute_monitored(
        &mut self,
        req: &TransferRequest,
        ready: SimTime,
        catalog: &mut ReplicaCatalog,
        topology: &GridTopology,
        bw: &BandwidthModel,
        health: Option<&mut HealthMonitor>,
    ) -> TransferOutcome {
        let mut events = Vec::new();
        match self.execute_into(req, ready, catalog, topology, bw, health, &mut events) {
            TransferStatus::Delivered => TransferOutcome::Delivered(events),
            TransferStatus::Exhausted => TransferOutcome::Exhausted(events),
            TransferStatus::NoReplica => TransferOutcome::NoReplica,
        }
    }

    /// Allocation-free core of the transfer path: appends every attempt
    /// event to `sink` (which may already hold events from earlier
    /// requests) and reports what the appended suffix means. The driver's
    /// hot loop reuses one scratch sink across all requests of a tick
    /// instead of allocating a fresh `Vec` per file.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_into(
        &mut self,
        req: &TransferRequest,
        ready: SimTime,
        catalog: &mut ReplicaCatalog,
        topology: &GridTopology,
        bw: &BandwidthModel,
        mut health: Option<&mut HealthMonitor>,
        sink: &mut Vec<TransferEvent>,
    ) -> TransferStatus {
        let dest_site = topology.site_of_rse(req.dest);
        let faults_on = self.faults.enabled();
        let max_attempts = 1 + if faults_on { self.retry.max_retries } else { 0 };
        let first = sink.len();
        let mut attempt_ready = ready;
        self.stats.requests += 1;

        for attempt in 1..=max_attempts {
            // Re-discover per attempt: the reaper may have deleted the
            // replica we used last time, or a better one may exist now.
            let source_rse = match req.preferred_source {
                Some(rse) if catalog.has_replica(req.file, rse) => rse,
                _ => {
                    let picked = match health.as_deref_mut() {
                        Some(h) => self.select_source_healthy(
                            catalog,
                            topology,
                            bw,
                            req.file,
                            dest_site,
                            attempt_ready,
                            h,
                        ),
                        None => self.select_source(
                            catalog,
                            topology,
                            bw,
                            req.file,
                            dest_site,
                            attempt_ready,
                        ),
                    };
                    match picked {
                        Some(rse) => rse,
                        None if sink.len() == first => {
                            self.stats.no_replica += 1;
                            return TransferStatus::NoReplica;
                        }
                        None => {
                            self.stats.exhausted += 1;
                            return TransferStatus::Exhausted;
                        }
                    }
                }
            };
            let source_site = topology.site_of_rse(source_rse);

            // Acquire one stream at each distinct endpoint.
            let start = if source_site == dest_site {
                self.acquire_slot(source_site, attempt_ready)
            } else {
                self.acquire_pair(source_site, dest_site, attempt_ready)
            };

            let entry = catalog.file(req.file);
            let size = entry.size;
            let nominal_end = bw.transfer_end(source_site, dest_site, start, size);
            let nominal_ms = (nominal_end - start).as_millis().max(1);

            let failed = if faults_on {
                let p = self
                    .faults
                    .attempt_failure_prob(source_site, dest_site, start);
                p > 0.0 && self.fault_rng.random::<f64>() < p
            } else {
                false
            };

            let end = if failed {
                // The mover died partway through: the streams were held
                // for a fraction of the nominal duration, then errored.
                let frac = 0.05 + 0.85 * self.fault_rng.random::<f64>();
                start + SimDuration::from_millis((nominal_ms as f64 * frac).round().max(1.0) as i64)
            } else {
                start
                    + SimDuration::from_millis(
                        (nominal_ms as f64 * self.duration_factor())
                            .round()
                            .max(1.0) as i64,
                    )
            };

            // Release the streams when the attempt ends, success or not.
            self.release_slot(source_site, end);
            if source_site != dest_site {
                self.release_slot(dest_site, end);
            }

            let ds = catalog.dataset(entry.dataset);
            sink.push(TransferEvent {
                id: TransferId(self.next_id),
                file: req.file,
                lfn: entry.lfn,
                dataset: ds.name,
                proddblock: ds.prod_dblock,
                scope: entry.scope,
                file_size: size,
                source_site,
                destination_site: dest_site,
                queued: ready,
                starttime: start,
                endtime: end,
                activity: req.activity,
                attempt,
                succeeded: !failed,
                caused_by_pandaid: req.caused_by_pandaid,
                jeditaskid: req.jeditaskid,
            });
            self.next_id += 1;

            if let Some(h) = health.as_deref_mut() {
                h.observe_attempt(source_site, dest_site, end, !failed);
            }

            if !failed {
                catalog.add_replica(req.file, req.dest);
                self.stats.delivered += 1;
                if sink.len() - first > 1 {
                    self.stats.delivered_after_retry += 1;
                }
                return TransferStatus::Delivered;
            }
            self.stats.failed_attempts += 1;
            // Exponential backoff with jitter before the next attempt.
            let u = self.fault_rng.random::<f64>();
            attempt_ready = end + self.retry.backoff(attempt, u);
        }
        self.stats.exhausted += 1;
        if let Some(h) = health {
            if let Some(last) = sink[first..].last() {
                h.observe_exhausted(last.source_site, dest_site, last.endtime);
            }
        }
        TransferStatus::Exhausted
    }

    /// The always-on transfer-path counters.
    pub fn path_stats(&self) -> TransferPathStats {
        self.stats
    }

    /// Capture the engine's mutable state for a checkpoint.
    pub fn snapshot(&self) -> TransferEngineSnapshot {
        TransferEngineSnapshot {
            slots: self
                .slots
                .iter()
                .map(|h| {
                    let mut v: Vec<i64> = h.iter().map(|&Reverse(t)| t).collect();
                    v.sort_unstable();
                    v
                })
                .collect(),
            next_id: self.next_id,
            jitter_rng: self.jitter_rng.state(),
            fault_rng: self.fault_rng.state(),
            stats: self.stats,
        }
    }

    /// Overwrite this (freshly constructed) engine's mutable state from a
    /// checkpoint. The slot-table shape must match the topology the engine
    /// was built for — a mismatch means the checkpoint belongs to a
    /// different scenario and is rejected.
    pub fn restore(&mut self, snap: TransferEngineSnapshot) -> Result<(), String> {
        if snap.slots.len() != self.slots.len() {
            return Err(format!(
                "checkpoint has {} slot rows, topology has {}",
                snap.slots.len(),
                self.slots.len()
            ));
        }
        for (i, row) in snap.slots.iter().enumerate() {
            if row.len() != self.slots[i].len() {
                return Err(format!(
                    "checkpoint site {i} has {} streams, topology has {}",
                    row.len(),
                    self.slots[i].len()
                ));
            }
        }
        self.slots = snap
            .slots
            .into_iter()
            .map(|row| row.into_iter().map(Reverse).collect())
            .collect();
        self.next_id = snap.next_id;
        self.jitter_rng = SimRng::from_state(snap.jitter_rng);
        self.fault_rng = SimRng::from_state(snap.fault_rng);
        self.stats = snap.stats;
        Ok(())
    }

    /// Pop the earliest-free stream at `site`; the stream is considered
    /// busy until [`Self::release_slot`] re-inserts it.
    fn acquire_slot(&mut self, site: SiteId, ready: SimTime) -> SimTime {
        let heap = &mut self.slots[site.index()];
        let Reverse(free) = heap.pop().expect("slot heap never empties");
        SimTime::from_millis(free).max(ready)
    }

    /// Acquire one stream at each of two distinct sites; start when both
    /// are free.
    fn acquire_pair(&mut self, a: SiteId, b: SiteId, ready: SimTime) -> SimTime {
        debug_assert_ne!(a, b);
        let fa = self.acquire_slot(a, ready);
        let fb = self.acquire_slot(b, ready);
        fa.max(fb)
    }

    fn release_slot(&mut self, site: SiteId, at: SimTime) {
        self.slots[site.index()].push(Reverse(at.as_millis()));
    }

    /// Earliest instant a new transfer could start at `site` (load signal
    /// for the brokerage).
    pub fn earliest_slot(&self, site: SiteId) -> SimTime {
        let Reverse(free) = *self.slots[site.index()].peek().expect("non-empty heap");
        SimTime::from_millis(free)
    }

    /// Current number of *free* stream slots tracked for `site`. Outside
    /// an `execute` call every stream is parked in the heap, so this must
    /// always equal the site's configured `transfer_slots` — the leak
    /// invariant the slot property test asserts.
    pub fn slot_count(&self, site: SiteId) -> usize {
        self.slots[site.index()].len()
    }

    /// Number of sites the engine tracks slots for.
    pub fn n_sites(&self) -> usize {
        self.slots.len()
    }

    /// Number of events issued so far.
    pub fn n_transfers(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_gridnet::TopologyConfig;
    use dmsa_simcore::RngFactory;

    struct Fixture {
        topo: GridTopology,
        bw: BandwidthModel,
        cat: ReplicaCatalog,
        eng: TransferEngine,
        files: Vec<FileId>,
    }

    fn fixture() -> Fixture {
        fixture_with(None)
    }

    fn fixture_with(faults: Option<(FaultConfig, RetryPolicy)>) -> Fixture {
        let rngs = RngFactory::new(11);
        let topo = GridTopology::generate(&rngs, &TopologyConfig::small());
        let bw = BandwidthModel::new(&rngs, &topo);
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register_dataset(
            Scope::User(1),
            1,
            "s",
            &[2_000_000_000, 4_000_000_000, 4_500_000_000],
            SimTime::EPOCH,
        );
        let files = cat.dataset_files(ds).to_vec();
        // Seed all files at the T0 disk.
        let t0_disk = topo.disk_rse(SiteId(0));
        for &f in &files {
            cat.add_replica(f, t0_disk);
        }
        let eng = match faults {
            None => TransferEngine::new(&topo, &rngs),
            Some((fc, rp)) => {
                let fm = FaultModel::new(&rngs, fc);
                TransferEngine::with_faults(&topo, &rngs, fm, rp)
            }
        };
        Fixture {
            topo,
            bw,
            cat,
            eng,
            files,
        }
    }

    fn request(file: FileId, dest: RseId) -> TransferRequest {
        TransferRequest {
            file,
            dest,
            activity: Activity::AnalysisDownload,
            caused_by_pandaid: Some(1),
            jeditaskid: Some(10),
            preferred_source: None,
        }
    }

    /// Run a request that must deliver; return the successful event.
    fn exec_ok(f: &mut Fixture, req: &TransferRequest, ready: SimTime) -> TransferEvent {
        let out = f.eng.execute(req, ready, &mut f.cat, &f.topo, &f.bw);
        out.delivered().expect("transfer delivers").clone()
    }

    #[test]
    fn local_replica_is_preferred() {
        let f = fixture();
        let dest_site = SiteId(0);
        let src = f
            .eng
            .select_source(
                &f.cat,
                &f.topo,
                &f.bw,
                f.files[0],
                dest_site,
                SimTime::EPOCH,
            )
            .unwrap();
        assert_eq!(f.topo.site_of_rse(src), dest_site);
    }

    #[test]
    fn remote_source_picked_by_throughput() {
        let mut f = fixture();
        // Add a second replica at site 2; destination site 5 holds none.
        let r2 = f.topo.disk_rse(SiteId(2));
        f.cat.add_replica(f.files[0], r2);
        let chosen = f
            .eng
            .select_source(
                &f.cat,
                &f.topo,
                &f.bw,
                f.files[0],
                SiteId(5),
                SimTime::EPOCH,
            )
            .unwrap();
        let s_chosen = f.topo.site_of_rse(chosen);
        let alt = if s_chosen == SiteId(0) {
            SiteId(2)
        } else {
            SiteId(0)
        };
        let r_chosen = f.bw.effective_mbps(s_chosen, SiteId(5), SimTime::EPOCH);
        let r_alt = f.bw.effective_mbps(alt, SiteId(5), SimTime::EPOCH);
        assert!(r_chosen >= r_alt);
    }

    #[test]
    fn missing_file_yields_no_replica() {
        let mut f = fixture();
        let lost = f.files[0];
        let rse0 = f.topo.disk_rse(SiteId(0));
        f.cat.remove_replica(lost, rse0);
        let out = f.eng.execute(
            &request(lost, f.topo.disk_rse(SiteId(3))),
            SimTime::EPOCH,
            &mut f.cat,
            &f.topo,
            &f.bw,
        );
        assert!(matches!(out, TransferOutcome::NoReplica));
        assert!(out.events().is_empty());
        assert_eq!(f.eng.n_transfers(), 0);
    }

    #[test]
    fn execute_registers_replica_and_orders_times() {
        let mut f = fixture();
        let dest = f.topo.disk_rse(SiteId(4));
        let req = request(f.files[0], dest);
        let ev = exec_ok(&mut f, &req, SimTime::from_secs(100));
        assert!(ev.starttime >= ev.queued);
        assert!(ev.endtime > ev.starttime);
        assert!(f.cat.has_replica(f.files[0], dest));
        assert_eq!(ev.file_size, 2_000_000_000);
        assert_eq!(ev.attempt, 1);
        assert!(ev.succeeded);
        assert!(!ev.is_local());
        assert!(ev.throughput_bytes_per_sec() > 0.0);
    }

    #[test]
    fn single_stream_site_serializes_transfers() {
        // Build a fixture and force a destination site to one stream by
        // finding one in the generated topology.
        let mut f = fixture();
        let single = f
            .topo
            .sites()
            .iter()
            .find(|s| s.transfer_slots == 1)
            .map(|s| s.id);
        let Some(site) = single else {
            // Small topologies may lack a single-stream site under this
            // seed; the invariant is separately covered at default scale.
            return;
        };
        // Seed local replicas so transfers are local (only one slot row used).
        let rse = f.topo.disk_rse(site);
        for &file in &f.files {
            f.cat.add_replica(file, rse);
        }
        let ready = SimTime::from_secs(10);
        let evs: Vec<TransferEvent> = f
            .files
            .clone()
            .into_iter()
            .map(|file| exec_ok(&mut f, &request(file, rse), ready))
            .collect();
        // Strictly sequential: each starts when the previous one ends.
        assert!(evs[1].starttime >= evs[0].endtime);
        assert!(evs[2].starttime >= evs[1].endtime);
    }

    #[test]
    fn multi_stream_site_overlaps_transfers() {
        let mut f = fixture();
        // T0 has >= 8 streams; three simultaneous local transfers overlap.
        let rse = f.topo.disk_rse(SiteId(0));
        let ready = SimTime::from_secs(10);
        let evs: Vec<TransferEvent> = f
            .files
            .clone()
            .into_iter()
            .map(|file| exec_ok(&mut f, &request(file, rse), ready))
            .collect();
        assert_eq!(evs[0].starttime, evs[1].starttime);
        assert_eq!(evs[1].starttime, evs[2].starttime);
    }

    #[test]
    fn event_ids_are_sequential() {
        let mut f = fixture();
        let rse = f.topo.disk_rse(SiteId(0));
        let ra = request(f.files[0], rse);
        let a = exec_ok(&mut f, &ra, SimTime::EPOCH);
        let rb = request(f.files[1], rse);
        let b = exec_ok(&mut f, &rb, SimTime::EPOCH);
        assert_eq!(a.id, TransferId(0));
        assert_eq!(b.id, TransferId(1));
        assert_eq!(f.eng.n_transfers(), 2);
    }

    #[test]
    fn metadata_fields_round_trip_from_catalog() {
        let mut f = fixture();
        let rse = f.topo.disk_rse(SiteId(3));
        let req = request(f.files[2], rse);
        let ev = exec_ok(&mut f, &req, SimTime::EPOCH);
        let entry = f.cat.file(f.files[2]);
        assert_eq!(ev.lfn, entry.lfn);
        assert_eq!(ev.scope, entry.scope);
        let ds = f.cat.dataset(entry.dataset);
        assert_eq!(ev.dataset, ds.name);
        assert_eq!(ev.proddblock, ds.prod_dblock);
        assert_eq!(ev.jeditaskid, Some(10));
        assert_eq!(ev.caused_by_pandaid, Some(1));
    }

    #[test]
    fn zero_knob_engine_matches_fault_free_engine_exactly() {
        // The acceptance criterion in miniature: an engine built through
        // with_faults + inert knobs must replay new()'s event stream.
        let mut a = fixture();
        let mut b = fixture_with(Some((
            FaultConfig::none(),
            RetryPolicy {
                max_retries: 7, // retry knobs must be inert at zero faults
                ..RetryPolicy::default()
            },
        )));
        for i in 0..3 {
            let dest = a.topo.disk_rse(SiteId(4));
            let ready = SimTime::from_secs(50 * i);
            let req_a = request(a.files[i as usize], dest);
            let ea = exec_ok(&mut a, &req_a, ready);
            let req_b = request(b.files[i as usize], b.topo.disk_rse(SiteId(4)));
            let eb = exec_ok(&mut b, &req_b, ready);
            assert_eq!(ea.starttime, eb.starttime);
            assert_eq!(ea.endtime, eb.endtime);
            assert_eq!(ea.id, eb.id);
            assert_eq!(ea.attempt, eb.attempt);
        }
    }

    #[test]
    fn failed_attempts_emit_events_and_retry_with_backoff() {
        // Force failure on every attempt: the request exhausts its
        // retries, each attempt emits an event, no replica appears.
        let mut f = fixture_with(Some((
            FaultConfig {
                p_attempt_failure: 1.0,
                ..FaultConfig::none()
            },
            RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
        )));
        let dest = f.topo.disk_rse(SiteId(4));
        let req = request(f.files[0], dest);
        let out = f
            .eng
            .execute(&req, SimTime::from_secs(5), &mut f.cat, &f.topo, &f.bw);
        assert!(!out.is_delivered());
        let evs = out.events();
        assert_eq!(evs.len(), 3, "1 initial + 2 retries");
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.attempt, i as u32 + 1);
            assert!(!ev.succeeded);
            assert_eq!(ev.queued, SimTime::from_secs(5), "queued is per-request");
            assert!(ev.endtime > ev.starttime);
        }
        // Backoff: each retry starts strictly after the previous attempt
        // ended (failed duration + backoff delay).
        assert!(evs[1].starttime > evs[0].endtime);
        assert!(evs[2].starttime > evs[1].endtime);
        assert!(!f.cat.has_replica(f.files[0], dest));
        assert_eq!(f.eng.n_transfers(), 3, "failed attempts are events too");
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        // p = 0.5: over several requests some must retry then deliver.
        let mut f = fixture_with(Some((
            FaultConfig {
                p_attempt_failure: 0.5,
                ..FaultConfig::none()
            },
            RetryPolicy::default(),
        )));
        let mut saw_retry_delivery = false;
        for _ in 0..30 {
            let dest = f.topo.disk_rse(SiteId(4));
            let req = request(f.files[0], dest);
            let out = f
                .eng
                .execute(&req, SimTime::EPOCH, &mut f.cat, &f.topo, &f.bw);
            if let TransferOutcome::Delivered(evs) = &out {
                let last = evs.last().unwrap();
                assert!(last.succeeded);
                assert!(evs.iter().take(evs.len() - 1).all(|e| !e.succeeded));
                if evs.len() > 1 {
                    saw_retry_delivery = true;
                }
            }
        }
        assert!(saw_retry_delivery, "p=0.5 must produce a retried delivery");
    }

    #[test]
    fn slot_counts_are_restored_after_exhausted_retries() {
        let mut f = fixture_with(Some((
            FaultConfig {
                p_attempt_failure: 1.0,
                ..FaultConfig::none()
            },
            RetryPolicy::default(),
        )));
        let before: Vec<usize> = (0..f.eng.n_sites())
            .map(|s| f.eng.slot_count(SiteId(s as u32)))
            .collect();
        let dest = f.topo.disk_rse(SiteId(4));
        let _ = f.eng.execute(
            &request(f.files[0], dest),
            SimTime::EPOCH,
            &mut f.cat,
            &f.topo,
            &f.bw,
        );
        let after: Vec<usize> = (0..f.eng.n_sites())
            .map(|s| f.eng.slot_count(SiteId(s as u32)))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn backoff_grows_exponentially_and_jitters_within_bounds() {
        let rp = RetryPolicy::default();
        let base = rp.backoff_base.as_millis() as f64;
        for retry in 1..=4u32 {
            let nominal = base * rp.backoff_factor.powi(retry as i32 - 1);
            let lo = rp.backoff(retry, 0.0).as_millis() as f64;
            let hi = rp.backoff(retry, 1.0).as_millis() as f64;
            assert!((lo - nominal * 0.75).abs() <= 1.0);
            assert!((hi - nominal * 1.25).abs() <= 1.0);
        }
    }

    #[test]
    fn backoff_saturates_at_backoff_max() {
        let rp = RetryPolicy::default();
        let max_ms = rp.backoff_max.as_millis();
        // Attempt counts way past the crossover: without the cap,
        // 2^99 * 60 s overflows into nonsense; with it the delay pins to
        // backoff_max (± jitter) and stays finite.
        for retry in [10u32, 40, 100] {
            let mid = rp.backoff(retry, 0.5);
            assert_eq!(mid, rp.backoff_max, "retry {retry}");
            let hi = rp.backoff(retry, 1.0).as_millis();
            assert!(hi <= (max_ms as f64 * 1.25).round() as i64 + 1);
            assert!(rp.backoff(retry, 0.0).as_millis() >= 0);
        }
        // Monotone up to the cap: retry 2 under a tiny max is clamped.
        let tight = RetryPolicy {
            backoff_max: SimDuration::from_secs(90),
            ..RetryPolicy::default()
        };
        assert_eq!(
            tight.backoff(2, 0.5),
            SimDuration::from_secs(90),
            "120 s nominal clamps to 90 s"
        );
    }

    #[test]
    fn path_stats_track_outcomes() {
        let mut f = fixture_with(Some((
            FaultConfig {
                p_attempt_failure: 1.0,
                ..FaultConfig::none()
            },
            RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
        )));
        let dest = f.topo.disk_rse(SiteId(4));
        let _ = f.eng.execute(
            &request(f.files[0], dest),
            SimTime::EPOCH,
            &mut f.cat,
            &f.topo,
            &f.bw,
        );
        let stats = f.eng.path_stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.failed_attempts, 3);
        assert_eq!(stats.delivered, 0);

        // A fault-free engine only ever delivers first try.
        let mut g = fixture();
        let dest = g.topo.disk_rse(SiteId(3));
        let req = request(g.files[1], dest);
        exec_ok(&mut g, &req, SimTime::EPOCH);
        let stats = g.eng.path_stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.delivered_after_retry, 0);
        assert_eq!(stats.failed_attempts, 0);
    }

    #[test]
    fn snapshot_restore_replays_identical_events() {
        // Run a few transfers (including failures, so both RNG streams
        // advance), snapshot, keep running the original while a freshly
        // built engine restored from the snapshot runs the same requests:
        // every subsequent event must match field-for-field.
        let faults = Some((
            FaultConfig {
                p_attempt_failure: 0.5,
                ..FaultConfig::none()
            },
            RetryPolicy::default(),
        ));
        let mut a = fixture_with(faults.clone());
        for i in 0..5 {
            let dest = a.topo.disk_rse(SiteId(4));
            let _ = a.eng.execute(
                &request(a.files[i % 3], dest),
                SimTime::from_secs(20 * i as i64),
                &mut a.cat,
                &a.topo,
                &a.bw,
            );
        }
        let snap = a.eng.snapshot();

        let mut b = fixture_with(faults);
        // Replay b's catalog to a's current replica state.
        b.cat = a.cat.clone();
        b.eng.restore(snap.clone()).unwrap();
        assert_eq!(b.eng.snapshot(), snap, "restore must be lossless");

        for i in 5..10 {
            let ready = SimTime::from_secs(20 * i as i64);
            let dest = a.topo.disk_rse(SiteId(3));
            let req_a = request(a.files[i % 3], dest);
            let out_a = a
                .eng
                .execute(&req_a, ready, &mut a.cat, &a.topo, &a.bw)
                .into_events();
            let req_b = request(b.files[i % 3], b.topo.disk_rse(SiteId(3)));
            let out_b = b
                .eng
                .execute(&req_b, ready, &mut b.cat, &b.topo, &b.bw)
                .into_events();
            assert_eq!(out_a.len(), out_b.len());
            for (ea, eb) in out_a.iter().zip(&out_b) {
                assert_eq!(ea.id, eb.id);
                assert_eq!(ea.starttime, eb.starttime);
                assert_eq!(ea.endtime, eb.endtime);
                assert_eq!(ea.succeeded, eb.succeeded);
                assert_eq!(ea.source_site, eb.source_site);
            }
        }
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let mut f = fixture();
        let mut snap = f.eng.snapshot();
        snap.slots.pop();
        assert!(f.eng.restore(snap).unwrap_err().contains("slot rows"));
        let mut snap2 = f.eng.snapshot();
        snap2.slots[0].pop();
        assert!(f.eng.restore(snap2).unwrap_err().contains("streams"));
    }

    #[test]
    fn healthy_selection_matches_plain_selection_when_all_closed() {
        let mut f = fixture();
        let r2 = f.topo.disk_rse(SiteId(2));
        f.cat.add_replica(f.files[0], r2);
        let mut health = HealthMonitor::new(dmsa_gridnet::HealthConfig::adaptive(), 16);
        for t in [0i64, 500, 5_000] {
            let t = SimTime::from_secs(t);
            let plain = f
                .eng
                .select_source(&f.cat, &f.topo, &f.bw, f.files[0], SiteId(5), t);
            let guarded = f.eng.select_source_healthy(
                &f.cat,
                &f.topo,
                &f.bw,
                f.files[0],
                SiteId(5),
                t,
                &mut health,
            );
            assert_eq!(plain, guarded);
        }
    }

    #[test]
    fn healthy_selection_skips_open_source_unless_only_replica() {
        use dmsa_gridnet::{HealthEvent, HealthSignal, HealthSubject};
        let mut f = fixture();
        let r2 = f.topo.disk_rse(SiteId(2));
        f.cat.add_replica(f.files[0], r2);
        let dest = SiteId(5);
        let mut health = HealthMonitor::new(dmsa_gridnet::HealthConfig::adaptive(), 16);
        let t = SimTime::from_secs(100);
        let plain = f
            .eng
            .select_source(&f.cat, &f.topo, &f.bw, f.files[0], dest, t)
            .unwrap();
        let plain_site = f.topo.site_of_rse(plain);
        // Trip the breaker of whichever site plain selection prefers.
        for i in 0..4 {
            health.observe(HealthEvent {
                subject: HealthSubject::Site(plain_site),
                at: SimTime::from_secs(i),
                signal: HealthSignal::AttemptFailed,
            });
        }
        let guarded = f
            .eng
            .select_source_healthy(&f.cat, &f.topo, &f.bw, f.files[0], dest, t, &mut health)
            .unwrap();
        assert_ne!(
            f.topo.site_of_rse(guarded),
            plain_site,
            "open source must be skipped while an alternative exists"
        );
        // Remove the alternative: the Open site is now the only replica
        // and must be used anyway.
        let other = if guarded == r2 {
            f.topo.disk_rse(SiteId(0))
        } else {
            r2
        };
        f.cat.remove_replica(f.files[0], guarded);
        let forced = f
            .eng
            .select_source_healthy(&f.cat, &f.topo, &f.bw, f.files[0], dest, t, &mut health)
            .unwrap();
        assert_eq!(forced, other);
        assert_eq!(f.topo.site_of_rse(forced), plain_site);
    }

    #[test]
    fn monitored_execution_feeds_breakers_until_source_shifts() {
        // All attempts towards dest fail; with two replicas the monitor
        // must eventually blacklist the first-choice source so later
        // requests draw from the alternative.
        use dmsa_gridnet::BreakerState;
        let mut f = fixture_with(Some((
            FaultConfig {
                p_attempt_failure: 1.0,
                ..FaultConfig::none()
            },
            RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
        )));
        let mut health = HealthMonitor::new(dmsa_gridnet::HealthConfig::adaptive(), 16);
        let dest = f.topo.disk_rse(SiteId(4));
        for i in 0..4 {
            let req = request(f.files[i % 3], dest);
            let out = f.eng.execute_monitored(
                &req,
                SimTime::from_secs(i as i64 * 10),
                &mut f.cat,
                &f.topo,
                &f.bw,
                Some(&mut health),
            );
            assert!(!out.is_delivered());
        }
        // Every attempt failed into SiteId(4): its destination-site
        // breaker must have tripped at some point.
        let summary = health.summary();
        assert!(summary.counters.trips > 0);
        let dest_tripped = summary
            .episodes
            .iter()
            .any(|e| matches!(e.subject, dmsa_gridnet::HealthSubject::Site(s) if s == SiteId(4)));
        assert!(dest_tripped, "destination site breaker must trip");
        assert_eq!(
            health.site_state(SiteId(4), summary.episodes[0].from),
            BreakerState::Open
        );
        let stats = f.eng.path_stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.exhausted, 4);
    }
}
