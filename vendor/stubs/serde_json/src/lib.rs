//! Offline stub for `serde_json`: a real (if minimal) JSON format over the
//! offline serde stub's functional subset — scalars, strings, `Option`,
//! and `Vec`. `to_string` drives a streaming serializer; `from_str` parses
//! into a `Value` tree and deserializes out of it. Types whose impls fall
//! outside the subset (derived structs, maps, tuples) error at runtime
//! with "offline serde stub", same as before.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// --------------------------------------------------------------------------
// Serialization: stream straight into a String
// --------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonSer<'a> {
    out: &'a mut String,
}

pub struct JsonSeqSer<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> serde::Serializer for JsonSer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = JsonSeqSer<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if !v.is_finite() {
            return Err(serde::ser::Error::custom("non-finite float is not JSON"));
        }
        // Rust's shortest-round-trip repr; integral floats get a ".0"
        // suffix so the value re-parses as a float.
        let s = v.to_string();
        self.out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            self.out.push_str(".0");
        }
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        push_json_str(self.out, v);
        Ok(())
    }
    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: serde::Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeqSer<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeqSer {
            out: self.out,
            first: true,
        })
    }
}

impl<'a> serde::ser::SerializeSeq for JsonSeqSer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        Ok(())
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSer { out: &mut out })?;
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

// --------------------------------------------------------------------------
// Deserialization: parse to a Value tree, then visit it
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope offline.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

struct ValueDe(Value);

struct SeqDe {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> serde::de::SeqAccess<'de> for SeqDe {
    type Error = Error;
    fn next_element<T: serde::Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            None => Ok(None),
            Some(v) => T::deserialize(ValueDe(v)).map(Some),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

impl<'de> serde::Deserializer<'de> for ValueDe {
    type Error = Error;

    fn deserialize_any<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Num(n) => {
                // Integral numbers visit as integers so integer types
                // round-trip exactly; everything else visits as f64.
                if n.fract() == 0.0 && n.is_finite() {
                    if n >= 0.0 && n <= u64::MAX as f64 {
                        return visitor.visit_u64(n as u64);
                    }
                    if n >= i64::MIN as f64 && n < 0.0 {
                        return visitor.visit_i64(n as i64);
                    }
                }
                visitor.visit_f64(n)
            }
            Value::Str(s) => visitor.visit_string(s),
            Value::Arr(items) => visitor.visit_seq(SeqDe {
                iter: items.into_iter(),
            }),
            Value::Obj(entries) => Err(Error(format!(
                "objects ({} keys) are outside the offline serde stub subset",
                entries.len()
            ))),
        }
    }

    fn deserialize_f64<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Num(n) => visitor.visit_f64(n),
            other => ValueDe(other).deserialize_any(visitor),
        }
    }

    fn deserialize_option<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.0 {
            Value::Null => visitor.visit_none(),
            v => visitor.visit_some(ValueDe(v)),
        }
    }
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::deserialize(ValueDe(v))
}
