//! Render the Fig 3 site-to-site transfer matrix as an ASCII heatmap.
//!
//! ```text
//! cargo run --release --example transfer_heatmap [scale]
//! ```
//!
//! Reproduces the paper's §3.2 observations: a heavy diagonal (local
//! transfers), a handful of extreme hub cells, an `unknown` aggregate
//! row/column, and an arithmetic mean far above the geometric mean.

use dmsa::prelude::*;
use dmsa_analysis::matrix::TransferMatrix;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.01);

    println!("simulating 92-day campaign at scale {scale} ...");
    let campaign = dmsa_scenario::run(&ScenarioConfig::paper_92day(scale));
    let matrix = TransferMatrix::build(&campaign.store, campaign.window);

    // Show the busiest 24 sites (by row+column volume) plus unknown.
    let n = matrix.n();
    let mut totals: Vec<(usize, u64)> = (0..n)
        .map(|i| {
            let row: u64 = matrix.volume[i].iter().sum();
            let col: u64 = matrix.volume.iter().map(|r| r[i]).sum();
            (i, row + col)
        })
        .collect();
    totals.sort_by_key(|t| std::cmp::Reverse(t.1));
    let mut shown: Vec<usize> = totals.iter().take(24).map(|&(i, _)| i).collect();
    let unknown = matrix.unknown_index();
    if !shown.contains(&unknown) {
        shown.push(unknown);
    }
    shown.sort_unstable();

    let mut max = 1u64;
    for &i in &shown {
        for &j in &shown {
            max = max.max(matrix.volume[i][j]);
        }
    }

    // Log-scaled shade ramp.
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let shade = |v: u64| -> char {
        if v == 0 {
            return ' ';
        }
        let f = (v as f64).ln() / (max as f64).ln();
        shades[((f * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1)]
    };

    println!(
        "\nsource \\ destination (top sites by volume; log shade; '@' = {}):",
        dmsa_bench_fmt(max)
    );
    print!("{:>22} ", "");
    for (k, _) in shown.iter().enumerate() {
        print!("{}", (b'a' + (k % 26) as u8) as char);
    }
    println!();
    for &i in shown.iter() {
        print!("{:>22} ", truncate(&matrix.labels[i], 22));
        for &j in &shown {
            print!("{}", shade(matrix.volume[i][j]));
        }
        println!();
    }

    let s = matrix.summary();
    println!("\ntotal volume : {}", dmsa_bench_fmt(s.total_bytes));
    println!(
        "local share  : {:.1}%  (paper: 77.0%)",
        100.0 * s.local_bytes as f64 / s.total_bytes.max(1) as f64
    );
    println!(
        "mean vs geo-mean per pair: {} vs {}  ({:.0}x gap; paper: 77.75 TB vs 1.11 TB = 70x)",
        dmsa_bench_fmt(s.mean_pair_bytes as u64),
        dmsa_bench_fmt(s.geo_mean_pair_bytes as u64),
        s.mean_pair_bytes / s.geo_mean_pair_bytes.max(1.0)
    );
    println!("top cells:");
    for c in matrix.top_outliers(5) {
        println!(
            "  {:>10}  {} -> {}",
            dmsa_bench_fmt(c.bytes),
            c.src_label,
            c.dst_label
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}~", &s[..n - 1])
    }
}

fn dmsa_bench_fmt(b: u64) -> String {
    let b = b as f64;
    for (name, scale) in [("PB", 1e15), ("TB", 1e12), ("GB", 1e9), ("MB", 1e6)] {
        if b >= scale {
            return format!("{:.2} {name}", b / scale);
        }
    }
    format!("{b:.0} B")
}
