//! Hunt the paper's four anomaly classes in one campaign and score the
//! RM2 site-inference against simulator ground truth.
//!
//! ```text
//! cargo run --release --example anomaly_hunt [scale]
//! ```
//!
//! Anomalies (§5.3–5.4): (1) redundant transfers — the same bytes delivered
//! twice to one destination; (2) sequential staging — pilots serializing
//! downloads, leaving bandwidth idle; (3) spanning transfers — stage-ins
//! still running after the job started; (4) extreme transfer-time
//! percentages correlated with failures.

use dmsa::prelude::*;
use dmsa_analysis::cases::JobTimeline;
use dmsa_analysis::overlap::all_overlaps;
use dmsa_analysis::threshold::above_threshold;
use dmsa_core::infer::{infer_sites, redundant_groups, InferenceEvidence};
use dmsa_core::matcher::Matcher;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.03);

    println!("simulating 8-day campaign at scale {scale} ...");
    let campaign = dmsa_scenario::run(&ScenarioConfig::paper_8day(scale));
    let store = &campaign.store;
    let rm2 = ParallelMatcher.match_jobs(store, campaign.window, MatchMethod::Rm2);
    let exact = ParallelMatcher.match_jobs(store, campaign.window, MatchMethod::Exact);

    // (1) Redundant deliveries.
    let groups = redundant_groups(store, SimDuration::from_days(1), |i| {
        store.transfers[i as usize].destination_site
    });
    let dup_transfers: usize = groups.iter().map(|g| g.transfers.len() - 1).sum();
    let dup_bytes: u64 = groups
        .iter()
        .flat_map(|g| g.transfers.iter().skip(1))
        .map(|&ti| store.transfers[ti as usize].file_size)
        .sum();
    println!(
        "\n[redundant transfers] {} duplicate-delivery groups; {} avoidable transfers, {:.2} TB avoidable volume",
        groups.len(),
        dup_transfers,
        dup_bytes as f64 / 1e12
    );

    // (2) Sequential staging among matched multi-transfer jobs.
    let mut sequential = 0;
    let mut multi = 0;
    for mj in &exact.jobs {
        if mj.transfers.len() < 2 {
            continue;
        }
        multi += 1;
        if JobTimeline::build(store, mj).transfers_sequential() {
            sequential += 1;
        }
    }
    println!(
        "[sequential staging]  {sequential} of {multi} matched multi-transfer jobs staged strictly sequentially"
    );

    // (3) Spanning transfers (queue -> wall).
    let overlaps = all_overlaps(store, &exact);
    let spanning: Vec<_> = overlaps.iter().filter(|o| o.spans_wall).collect();
    let spanning_failed = spanning.iter().filter(|o| !o.job_succeeded).count();
    println!(
        "[spanning transfers]  {} matched jobs with transfers crossing into wall time ({} failed)",
        spanning.len(),
        spanning_failed
    );

    // (4) Extreme transfer-time percentages vs failure.
    let above = above_threshold(&overlaps, 75.0);
    let total_above: usize = above.iter().sum();
    let failed_above = above[1] + above[3];
    let overall_fail =
        overlaps.iter().filter(|o| !o.job_succeeded).count() as f64 / overlaps.len().max(1) as f64;
    println!(
        "[extreme percentages] {total_above} jobs >75% transfer time; {failed_above} failed \
         (baseline failure rate {:.0}%)",
        overall_fail * 100.0
    );

    // RM2 site inference scored against ground truth.
    let inferences = infer_sites(store, &rm2, SimDuration::from_days(2));
    let correct = inferences.iter().filter(|i| i.is_correct(store)).count();
    let corroborated = inferences
        .iter()
        .filter(|i| matches!(i.evidence, InferenceEvidence::JobLinkAndDuplicate { .. }))
        .count();
    println!(
        "[site inference]      {} unknown endpoints inferred; {} correct ({}); {} corroborated by duplicates",
        inferences.len(),
        correct,
        if inferences.is_empty() {
            "n/a".to_string()
        } else {
            format!("{:.1}%", 100.0 * correct as f64 / inferences.len() as f64)
        },
        corroborated
    );
}
