//! Binary encoding primitives for checkpoint snapshots.
//!
//! Deliberately tiny and dependency-free: fixed-width little-endian
//! integers, length-prefixed strings and sequences, and a CRC-32 for
//! whole-payload integrity. Everything a checkpoint contains is written
//! through [`Writer`] and read back through [`Reader`]; the reader never
//! panics on malformed input — every decode error carries the byte offset
//! where the payload stopped making sense, so a truncated or corrupted
//! checkpoint is diagnosed, skipped, and fallen past rather than crashing
//! the resume path.

use std::fmt;

/// A decode failure: what went wrong and where in the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub what: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a sequence length prefix; the caller then writes that many
    /// elements.
    pub fn put_seq_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Write raw bytes with no prefix (caller manages framing).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, what: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated: need {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a bool byte, rejecting anything other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError {
                offset: self.pos - 1,
                what: format!("invalid bool byte {b:#04x}"),
            }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_u64()? as usize;
        if n > self.remaining() {
            return Err(self.err(format!(
                "truncated: string claims {n} bytes, {} left",
                self.remaining()
            )));
        }
        let start = self.pos;
        let bytes = self.take(n, "string")?;
        std::str::from_utf8(bytes)
            .map(|s| s.to_owned())
            .map_err(|e| CodecError {
                offset: start + e.valid_up_to(),
                what: "invalid UTF-8 in string".into(),
            })
    }

    /// Read a sequence length prefix, sanity-capped so a corrupted length
    /// cannot trigger an absurd allocation: each element needs at least
    /// `min_elem_bytes` bytes of remaining payload.
    pub fn get_seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_u64()? as usize;
        let floor = min_elem_bytes.max(1);
        if n > self.remaining() / floor {
            return Err(self.err(format!(
                "implausible sequence length {n} with {} bytes left",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
/// Matches the ubiquitous zlib/`cksum -o3` definition, so checkpoints can
/// be checked with standard tools too.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-123_456_789);
        w.put_f64(-0.125);
        w.put_f64(f64::NAN);
        w.put_str("héllo 世界");
        w.put_seq_len(3);
        for i in 0..3 {
            w.put_u8(i);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -123_456_789);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo 世界");
        assert_eq!(r.get_seq_len(1).unwrap(), 3);
        for i in 0..3 {
            assert_eq!(r.get_u8().unwrap(), i);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_with_offset_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        let err = r.get_u64().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.what.contains("truncated"));
    }

    #[test]
    fn truncated_string_reports_error() {
        let mut w = Writer::new();
        w.put_str("this is a reasonably long string");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..12]);
        assert!(r.get_str().unwrap_err().what.contains("truncated"));
    }

    #[test]
    fn invalid_utf8_string_reports_error() {
        let mut w = Writer::new();
        w.put_u64(2);
        w.put_raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_str().unwrap_err().what.contains("UTF-8"));
    }

    #[test]
    fn invalid_bool_byte_rejected() {
        let bytes = [2u8];
        let mut r = Reader::new(&bytes);
        assert!(r.get_bool().unwrap_err().what.contains("bool"));
    }

    #[test]
    fn implausible_sequence_length_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_seq_len(8).unwrap_err().what.contains("implausible"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Flipping one bit changes the checksum.
        assert_ne!(crc32(b"checkpoint"), crc32(b"checkpoInt"));
    }
}
