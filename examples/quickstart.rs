//! Quickstart: run a small campaign, match jobs to transfers with all
//! three strategies, and print the headline statistics of the paper's §5.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dmsa::prelude::*;

fn main() {
    // 1. Simulate an 8-day observation campaign at 2 % of paper scale.
    let config = ScenarioConfig::paper_8day(0.02);
    println!("running campaign (seed {}) ...", config.seed);
    let campaign = dmsa_scenario::run(&config);
    let (jobs, files, transfers, with_tid) = campaign.store.counts();
    let user_jobs = campaign.store.user_jobs_in(campaign.window).count();
    println!("  jobs            : {jobs} ({user_jobs} user jobs in window)");
    println!("  file-table rows : {files}");
    println!("  transfers       : {transfers} ({with_tid} carry a jeditaskid)");

    // 2. Match with Exact (Algorithm 1), RM1, RM2.
    for method in MatchMethod::ALL {
        let set = ParallelMatcher.match_jobs(&campaign.store, campaign.window, method);
        let tc = set.transfer_counts(&campaign.store);
        let jc = set.job_counts(&campaign.store);
        let eval = evaluate(&campaign.store, &set, campaign.window);
        println!(
            "  {:5}: transfers {:6} (local {:6} / remote {:5}, {:.2}% of with-taskid) \
             jobs {:5} ({:.2}% of user; local/remote/mixed {}/{}/{}) \
             precision {:.3} recall {:.3}",
            method.label(),
            tc.total(),
            tc.local,
            tc.remote,
            100.0 * tc.total() as f64 / with_tid.max(1) as f64,
            jc.total(),
            100.0 * jc.total() as f64 / user_jobs.max(1) as f64,
            jc.all_local,
            jc.all_remote,
            jc.mixed,
            eval.transfer_precision(),
            eval.transfer_recall(),
        );
    }
}
