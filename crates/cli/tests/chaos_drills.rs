//! Seeded chaos drills, end to end: a campaign run under a storage-fault
//! profile must export byte-identical JSON to a fault-free run, a resume
//! through the fallback ladder must reproduce it again, `dmsa verify`
//! must find every artifact the drill silently tore, and a serve reload
//! of a torn export must roll back without dropping the store.

use dmsa_cli::checkpoint::CheckpointDir;
use dmsa_cli::run::{run_with_checkpoints, CheckpointKnobs};
use dmsa_cli::serve::{load_store_gen, ServeConfig, Server};
use dmsa_cli::verify::{self, FileVerdict};
use dmsa_cli::vfs::{ChaosBackend, ChaosProfile, IoRetryPolicy};
use dmsa_cli::CampaignExport;
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::{SimDuration, SimTime};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn faulty_config() -> ScenarioConfig {
    let mut c = ScenarioConfig::small_faulty();
    c.duration = SimDuration::from_hours(6);
    c.workload.tasks_per_hour = 20.0;
    c
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmsa-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn drilled_campaign_and_its_resume_are_byte_identical_to_fault_free() {
    let config = faulty_config();
    let dir = scratch("identity");
    let reference = CampaignExport::from_campaign(&dmsa_scenario::run(&config)).to_json();

    // Torn writes and ENOSPC on every durable step of the checkpoint
    // path. The campaign itself must be untouched: chaos lives entirely
    // in the I/O layer.
    let knobs = CheckpointKnobs {
        dir: Some(dir.clone()),
        every: SimDuration::from_hours(1),
        resume: false,
        keep: 10,
        chaos: Some(ChaosProfile {
            seed: 1234,
            p_torn: 0.3,
            p_enospc: 0.3,
            ..ChaosProfile::default()
        }),
        retry: IoRetryPolicy::fast(),
    };
    let mut notes = Vec::new();
    let mut note = |l: String| notes.push(l);
    let drilled = run_with_checkpoints(&config, &knobs, &mut note).unwrap();
    assert_eq!(
        CampaignExport::from_campaign(&drilled).to_json(),
        reference,
        "chaos in the I/O layer perturbed the simulation"
    );
    let store = CheckpointDir::open(&dir, 10).unwrap();
    assert!(
        !store.scan().unwrap().is_empty(),
        "the drill should leave checkpoints behind (notes: {notes:?})"
    );

    // Resume under the same profile: the ladder skips torn survivors
    // (by checksum) and replays from the newest valid one — or cold
    // starts if the drill shredded them all. Either way: same bytes.
    let mut notes = Vec::new();
    let mut note = |l: String| notes.push(l);
    let resumed = run_with_checkpoints(
        &config,
        &CheckpointKnobs {
            resume: true,
            ..knobs
        },
        &mut note,
    )
    .unwrap();
    assert_eq!(
        CampaignExport::from_campaign(&resumed).to_json(),
        reference,
        "resume after the drill diverged (notes: {notes:?})"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn verify_detects_every_corruption_the_drill_planted() {
    let config = faulty_config();
    let dir = scratch("verify");

    // Write checkpoints through a torn-write backend we keep a handle
    // on: its `torn_files` list is the drill's ground truth.
    let backend = Arc::new(ChaosBackend::new(ChaosProfile {
        seed: 77,
        p_torn: 0.5,
        ..ChaosProfile::default()
    }));
    let store = CheckpointDir::open_with(&dir, 100, backend.clone()).unwrap();
    let payload =
        dmsa_scenario::prefix_snapshot(&config, SimTime::EPOCH + SimDuration::from_hours(1));
    for hour in 1..=12 {
        store
            .write(SimTime::EPOCH + SimDuration::from_hours(hour), &payload)
            .unwrap();
    }
    let torn: Vec<String> = backend.torn_files.lock().unwrap().clone();
    assert!(
        !torn.is_empty() && torn.len() < 12,
        "seed 77 should tear some but not all of 12 writes, tore {}",
        torn.len()
    );

    // Plus one clean campaign export and one torn by hand.
    let export = CampaignExport::from_campaign(&dmsa_scenario::run(&config)).to_json();
    fs::write(dir.join("campaign.json"), &export).unwrap();
    fs::write(
        dir.join("campaign-torn.json"),
        &export.as_bytes()[..export.len() / 2],
    )
    .unwrap();

    let outcome = verify::verify_dir(&dir).unwrap();
    assert!(!outcome.clean());
    let corrupt: Vec<String> = outcome
        .reports
        .iter()
        .filter(|r| matches!(r.verdict, FileVerdict::Corrupt { .. }))
        .map(|r| r.path.file_name().unwrap().to_str().unwrap().to_string())
        .collect();
    for name in &torn {
        assert!(
            corrupt.contains(name),
            "verify missed drill-torn checkpoint {name}: flagged {corrupt:?}"
        );
    }
    assert!(
        corrupt.contains(&"campaign-torn.json".to_string()),
        "verify missed the torn export: {corrupt:?}"
    );
    // And nothing else: every clean artifact passes.
    assert_eq!(outcome.corrupt_count(), torn.len() + 1);
    assert_eq!(outcome.ok_count(), 12 - torn.len() + 1);
    fs::remove_dir_all(&dir).unwrap();
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        reply.trim_end().to_string()
    }
}

#[test]
fn serve_reload_of_a_torn_export_rolls_back_and_keeps_serving() {
    let dir = scratch("serve");
    fs::create_dir_all(&dir).unwrap();
    let mut c = ScenarioConfig::small();
    c.duration = SimDuration::from_hours(3);
    c.workload.tasks_per_hour = 10.0;
    c.background_transfers_per_hour = 50.0;
    c.initial_datasets = 20;
    let json = CampaignExport::from_campaign(&dmsa_scenario::run(&c)).to_json();
    let path = dir.join("export.json");
    fs::write(&path, &json).unwrap();

    let server = Server::start(
        ServeConfig::default(),
        load_store_gen(&json, "export.json", 0.01).unwrap(),
        Some(path.clone()),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr());
    let before = client.round_trip("{\"cmd\":\"match\",\"method\":\"rm2\"}");
    assert!(before.contains("\"ok\":true"), "{before}");

    // The export is torn on disk (as a crashed writer without the
    // atomic pipeline would leave it); reload must refuse it and keep
    // the healthy generation.
    fs::write(&path, &json.as_bytes()[..json.len() / 2]).unwrap();
    let reload = client.round_trip("{\"cmd\":\"reload\"}");
    assert!(reload.contains("\"reload_failed\""), "{reload}");
    let health = client.round_trip("{\"cmd\":\"health\"}");
    assert!(health.contains("\"generation\":1"), "{health}");
    let after = client.round_trip("{\"cmd\":\"match\",\"method\":\"rm2\"}");
    assert_eq!(after, before, "rollback changed match replies");

    // A repaired file reloads cleanly.
    fs::write(&path, &json).unwrap();
    let reload = client.round_trip("{\"cmd\":\"reload\"}");
    assert!(reload.contains("\"generation\":2"), "{reload}");

    let out = server.shutdown();
    assert!(out.clean, "drain left {} conns", out.abandoned_conns);
    fs::remove_dir_all(&dir).unwrap();
}
