//! Property tests for the grid substrate: bandwidth purity and transfer
//! integration sanity over random sites, times, and sizes, plus the
//! circuit-breaker liveness guarantee (an Open breaker always reaches
//! probation, and probation with healthy probes always re-closes).

use dmsa_gridnet::{
    BandwidthModel, BreakerState, GridTopology, HealthConfig, HealthMonitor, SiteId, TopologyConfig,
};
use dmsa_simcore::{RngFactory, SimDuration, SimTime};
use proptest::prelude::*;

fn fixture(seed: u64) -> (GridTopology, BandwidthModel) {
    let rngs = RngFactory::new(seed);
    let topo = GridTopology::generate(&rngs, &TopologyConfig::small());
    let bw = BandwidthModel::new(&rngs, &topo);
    (topo, bw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn effective_rate_is_pure_positive_and_bounded(
        seed in 0u64..32,
        src in 0u32..15,
        dst in 0u32..15,
        t_ms in 0i64..864_000_000, // ten days
    ) {
        let (_, bw) = fixture(seed);
        let t = SimTime::from_millis(t_ms);
        let r1 = bw.effective_mbps(SiteId(src), SiteId(dst), t);
        let r2 = bw.effective_mbps(SiteId(src), SiteId(dst), t);
        prop_assert_eq!(r1, r2, "bandwidth must be a pure function");
        prop_assert!(r1 > 0.0);
        prop_assert!(r1 < 10_000.0, "rate {r1} MB/s implausible");
    }

    #[test]
    fn transfer_end_is_strictly_after_start_and_monotone(
        seed in 0u64..16,
        src in 0u32..15,
        dst in 0u32..15,
        start_ms in 0i64..86_400_000,
        bytes in 1u64..50_000_000_000,
    ) {
        let (_, bw) = fixture(seed);
        let start = SimTime::from_millis(start_ms);
        let end = bw.transfer_end(SiteId(src), SiteId(dst), start, bytes);
        prop_assert!(end > start);
        // Monotone in size.
        let end_bigger = bw.transfer_end(SiteId(src), SiteId(dst), start, bytes.saturating_mul(2));
        prop_assert!(end_bigger >= end);
    }

    #[test]
    fn transfer_duration_is_consistent_with_observed_rates(
        seed in 0u64..16,
        site in 0u32..15,
        start_ms in 0i64..86_400_000,
        bytes in 1_000_000u64..10_000_000_000,
    ) {
        let (_, bw) = fixture(seed);
        let (s, d) = (SiteId(site), SiteId(site));
        let start = SimTime::from_millis(start_ms);
        let end = bw.transfer_end(s, d, start, bytes);
        let secs = (end - start).as_secs_f64();
        // The mean rate must lie within the min/max instantaneous rate
        // over the transfer's span (sampled per bucket).
        let mut min_rate = f64::INFINITY;
        let mut max_rate = 0.0f64;
        let mut t = start;
        // Sample finer than the 300 s bucket width and include the end
        // instant, so no partial bucket escapes the envelope.
        while t <= end {
            let r = bw.effective_mbps(s, d, t);
            min_rate = min_rate.min(r);
            max_rate = max_rate.max(r);
            t += dmsa_simcore::SimDuration::from_secs(60);
        }
        let r_end = bw.effective_mbps(s, d, end);
        min_rate = min_rate.min(r_end);
        max_rate = max_rate.max(r_end);
        let mean_rate = bytes as f64 / 1e6 / secs;
        prop_assert!(
            mean_rate <= max_rate * 1.01 + 1.0,
            "mean {mean_rate} above max {max_rate}"
        );
        prop_assert!(
            mean_rate >= min_rate * 0.49,
            "mean {mean_rate} far below min {min_rate}"
        );
    }

    #[test]
    fn open_breaker_always_reaches_probation_and_recloses_on_healthy_probes(
        consecutive in 1u32..6,
        n_failures in 6usize..20,
        spacing_s in 1i64..60,
        cooldown_s in 3_600i64..7_200,
        probe_successes in 1u32..4,
    ) {
        let mut config = HealthConfig::adaptive();
        config.consecutive_failures = consecutive;
        // Silence the rate path so only the consecutive-run trigger can
        // trip; the liveness property must hold regardless of why the
        // breaker opened.
        config.min_samples = u32::MAX;
        config.cooldown = SimDuration::from_secs(cooldown_s);
        config.probe_successes = probe_successes;
        config.probe_quota = probe_successes.max(config.probe_quota);
        let mut monitor = HealthMonitor::new(config, 4);
        let site = SiteId(1);

        // Feed a failure run. The breaker trips at the `consecutive`-th
        // failure; later failures land while Open and are ignored, so
        // they must not extend the exclusion. All failures fit well
        // inside the cooldown (max span 20*60 s < 3600 s).
        let mut t = SimTime::from_secs(10);
        let mut t_trip = None;
        for i in 0..n_failures {
            monitor.observe_attempt(site, site, t, false);
            if i + 1 == consecutive as usize {
                t_trip = Some(t);
            }
            t += SimDuration::from_secs(spacing_s);
        }
        let t_trip = t_trip.expect("n_failures >= consecutive");
        prop_assert_eq!(monitor.site_state(site, t), BreakerState::Open);
        prop_assert!(!monitor.site_admits(site, t));

        // Liveness: once the cooldown elapses the breaker MUST be in
        // probation — no amount of ignored-while-Open traffic may wedge
        // it Open forever.
        let t_probe = t_trip + SimDuration::from_secs(cooldown_s) + SimDuration::from_secs(1);
        prop_assert_eq!(monitor.site_state(site, t_probe), BreakerState::HalfOpen);

        // Healthy probes re-close it within `probe_successes` grants.
        let mut t = t_probe;
        for _ in 0..probe_successes {
            prop_assert_eq!(monitor.site_state(site, t), BreakerState::HalfOpen);
            prop_assert!(monitor.site_admits(site, t), "probation must admit probes");
            monitor.commit_site(site, t);
            monitor.observe_attempt(site, site, t, true);
            t += SimDuration::from_secs(5);
        }
        prop_assert_eq!(monitor.site_state(site, t), BreakerState::Closed);
        prop_assert!(monitor.site_admits(site, t));
    }

    #[test]
    fn probation_failure_reopens_for_a_full_cooldown(
        consecutive in 1u32..6,
        cooldown_s in 600i64..3_600,
    ) {
        let mut config = HealthConfig::adaptive();
        config.consecutive_failures = consecutive;
        config.min_samples = u32::MAX;
        config.cooldown = SimDuration::from_secs(cooldown_s);
        let mut monitor = HealthMonitor::new(config, 4);
        let site = SiteId(0);

        let mut t = SimTime::from_secs(1);
        for _ in 0..consecutive {
            monitor.observe_attempt(site, site, t, false);
            t += SimDuration::from_secs(1);
        }
        prop_assert_eq!(monitor.site_state(site, t), BreakerState::Open);

        // Into probation, then a failed probe: straight back to Open,
        // and the next probation is again reachable (liveness survives
        // the re-trip).
        let t_half = t + SimDuration::from_secs(cooldown_s);
        prop_assert_eq!(monitor.site_state(site, t_half), BreakerState::HalfOpen);
        monitor.commit_site(site, t_half);
        monitor.observe_attempt(site, site, t_half, false);
        prop_assert_eq!(monitor.site_state(site, t_half), BreakerState::Open);
        let t_again = t_half + SimDuration::from_secs(cooldown_s) + SimDuration::from_secs(1);
        prop_assert_eq!(monitor.site_state(site, t_again), BreakerState::HalfOpen);
    }

    #[test]
    fn topology_generation_is_total_and_consistent(seed in 0u64..64) {
        let rngs = RngFactory::new(seed);
        let topo = GridTopology::generate(&rngs, &TopologyConfig::small());
        for s in topo.sites() {
            prop_assert!(s.compute_slots >= 4);
            prop_assert!(s.transfer_slots >= 1);
            prop_assert!(s.activity_weight > 0.0);
            prop_assert!(!s.rses.is_empty());
            for &r in &s.rses {
                prop_assert_eq!(topo.site_of_rse(r), s.id);
            }
            let disk = topo.disk_rse(s.id);
            prop_assert_eq!(topo.site_of_rse(disk), s.id);
        }
    }
}
