//! Property: checkpoint/resume is invisible. For random small scenarios —
//! clean, degraded, and degraded-with-adaptive-exclusion — resuming from a
//! snapshot taken mid-campaign produces exactly the job table, transfer
//! log, and health telemetry of the uninterrupted run: `resume(save(t))`
//! is `run-to-end` for every `t` the checkpoint cadence produces.

use dmsa::scenario::{self, snapshot, ScenarioConfig};
use dmsa::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn config_for(
    seed: u64,
    hours: i64,
    tasks_per_hour: f64,
    datasets: usize,
    mode: u8,
) -> ScenarioConfig {
    let mut c = match mode % 3 {
        0 => ScenarioConfig::small(),
        1 => ScenarioConfig::small_faulty(),
        _ => ScenarioConfig::faulty_adaptive(),
    };
    c.seed = seed;
    c.duration = SimDuration::from_hours(hours);
    c.workload.tasks_per_hour = tasks_per_hour;
    c.background_transfers_per_hour = 40.0;
    c.initial_datasets = datasets;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn resume_of_saved_snapshot_equals_uninterrupted_run(
        seed in 0u64..1_000_000,
        hours in 2i64..4,
        tasks_per_hour in 6.0f64..14.0,
        datasets in 10usize..25,
        mode in 0u8..3,
        cut_pct in 10usize..90,
    ) {
        let config = config_for(seed, hours, tasks_per_hour, datasets, mode);
        let every = SimDuration::from_millis(
            (hours * 3_600_000).max(1) * cut_pct as i64 / 100,
        );

        // Uninterrupted reference, collecting the snapshot stream.
        let mut snaps: Vec<(SimTime, Vec<u8>)> = Vec::new();
        let full = scenario::run_checkpointed(&config, every, &mut |at, bytes| {
            snaps.push((at, bytes.to_vec()));
            Ok(())
        })
        .unwrap();

        prop_assert!(!snaps.is_empty(), "cadence produced no snapshots");
        for (at, bytes) in &snaps {
            // The snapshot's clock is the last event processed before the
            // cadence boundary, so it sits at or before the boundary time.
            prop_assert!(snapshot::validate(&config, bytes).unwrap() <= *at);
            let resumed =
                scenario::resume_checkpointed(&config, bytes, None, &mut |_, _| Ok(())).unwrap();
            prop_assert_eq!(
                format!("{:?}", resumed.store.jobs),
                format!("{:?}", full.store.jobs),
                "job table diverged resuming from {:?}", at
            );
            prop_assert_eq!(
                format!("{:?}", resumed.store.transfers),
                format!("{:?}", full.store.transfers),
                "transfer log diverged resuming from {:?}", at
            );
            prop_assert_eq!(
                format!("{:?}", resumed.health),
                format!("{:?}", full.health),
                "health summary diverged resuming from {:?}", at
            );
            prop_assert_eq!(resumed.path_stats, full.path_stats);
            prop_assert_eq!(resumed.window, full.window);
        }
    }
}
