//! Checkpoint files: framed, checksummed snapshots on disk.
//!
//! A checkpoint directory holds up to `keep` files named
//! `ckpt-<millis>-<seq>.dmsa`: zero-padded sim-time millis plus a
//! directory-wide monotonic sequence number, so two snapshots taken at
//! the same sim-millisecond (a sub-millisecond checkpoint cadence, or a
//! write-then-resume-then-write at one boundary) get distinct files
//! instead of silently overwriting each other. Pre-sequence files
//! (`ckpt-<millis>.dmsa`) are still read, and order before any suffixed
//! file of the same millisecond. Each file frames one scenario snapshot:
//!
//! ```text
//! "DMSACKPT"  8 bytes   magic
//! version     4 bytes   little-endian u32, currently 1
//! len         8 bytes   little-endian u64 payload length
//! payload     len bytes scenario snapshot (see dmsa-scenario::snapshot)
//! crc32       4 bytes   little-endian IEEE CRC-32 of payload
//! ```
//!
//! Writes go through [`crate::atomic::write_atomic`], so a crash mid-write
//! leaves no half file visible. Reads are paranoid: [`CheckpointDir::newest_valid`]
//! walks newest-first and *skips* anything truncated, corrupt, or
//! version-skewed (reporting why), so resume degrades to an older
//! checkpoint instead of failing — and to a cold start when none survive.

use crate::atomic::write_atomic_via;
use crate::vfs::{IoBackend, RealBackend};
use dmsa_simcore::codec::crc32;
use dmsa_simcore::SimTime;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"DMSACKPT";
/// Frame layout version (independent of the snapshot payload's version).
pub const CKPT_VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8;

/// Wrap a snapshot payload in the on-disk frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Parse and validate a frame header, returning `(payload_len, total
/// frame length)`. Shared by [`unframe`] (exact-length files) and
/// [`unframe_prefix`] (frames embedded in a longer stream); both report
/// the same error taxonomy.
fn parse_header(bytes: &[u8]) -> Result<(usize, usize), String> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(format!(
            "truncated: {} bytes is too short for a frame",
            bytes.len()
        ));
    }
    if &bytes[..8] != MAGIC {
        return Err("bad magic (not a dmsa checkpoint)".to_string());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(format!(
            "frame version {version} found, this build supports {CKPT_VERSION}"
        ));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let Some(expected) = HEADER_LEN.checked_add(len).and_then(|n| n.checked_add(4)) else {
        return Err("implausible payload length".to_string());
    };
    Ok((len, expected))
}

/// Verify the checksummed payload of a frame whose header already parsed.
fn checked_payload(bytes: &[u8], len: usize) -> Result<&[u8], String> {
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let stored = u32::from_le_bytes(
        bytes[HEADER_LEN + len..HEADER_LEN + len + 4]
            .try_into()
            .unwrap(),
    );
    let actual = crc32(payload);
    if stored != actual {
        return Err(format!(
            "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        ));
    }
    Ok(payload)
}

/// Unwrap and verify a frame, returning the payload. The input must be
/// exactly one frame — trailing bytes are a truncation-class error.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], String> {
    let (len, expected) = parse_header(bytes)?;
    if bytes.len() != expected {
        return Err(format!(
            "truncated: frame declares {expected} bytes, file has {}",
            bytes.len()
        ));
    }
    checked_payload(bytes, len)
}

/// Unwrap and verify one frame from the *head* of `bytes`, tolerating
/// trailing data — the record-stream variant of [`unframe`] used by the
/// sweep journal. Returns the payload and the total number of bytes the
/// frame occupies, so callers can advance to the next record.
pub fn unframe_prefix(bytes: &[u8]) -> Result<(&[u8], usize), String> {
    let (len, expected) = parse_header(bytes)?;
    if bytes.len() < expected {
        return Err(format!(
            "truncated: frame declares {expected} bytes, stream has {}",
            bytes.len()
        ));
    }
    checked_payload(&bytes[..expected], len).map(|p| (p, expected))
}

/// A frame-verified checkpoint located by [`CheckpointDir::newest_valid`].
pub struct FoundCheckpoint {
    /// File the checkpoint came from.
    pub path: PathBuf,
    /// The verified snapshot payload.
    pub payload: Vec<u8>,
    /// Diagnostics for every newer file that failed verification.
    pub skipped: Vec<String>,
}

/// Ordering key of a checkpoint filename: `(millis, seq)`, where
/// pre-sequence files (`ckpt-<millis>.dmsa`) sort as sequence 0 and a
/// suffixed file's stored sequence is shifted up by one — legacy files
/// therefore order *before* any suffixed file of the same millisecond.
/// `None` for names that aren't checkpoints.
fn sort_key(name: &str) -> Option<(i64, u64)> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".dmsa")?;
    match rest.split_once('-') {
        Some((millis, seq)) => Some((
            millis.parse().ok()?,
            seq.parse::<u64>().ok()?.checked_add(1)?,
        )),
        None => Some((rest.parse().ok()?, 0)),
    }
}

/// The sequence-number suffix of a checkpoint filename (0 for legacy
/// names) — what [`CheckpointDir::open`] resumes the counter from.
fn seq_suffix(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".dmsa")?;
    match rest.split_once('-') {
        Some((_, seq)) => seq.parse().ok(),
        None => Some(0),
    }
}

/// A rotating checkpoint directory.
pub struct CheckpointDir {
    dir: PathBuf,
    /// How many checkpoint files to retain (oldest pruned first).
    pub keep: usize,
    /// Next filename sequence number. Monotonic per directory handle and
    /// resumed past existing files on open, so same-millisecond snapshots
    /// never collide — including across a crash/reopen.
    seq: AtomicU64,
    /// The I/O backend every durable operation goes through — the real
    /// filesystem, or a chaos drill.
    io: Arc<dyn IoBackend>,
}

impl CheckpointDir {
    /// Open (creating if needed) a checkpoint directory keeping the
    /// newest `keep` files. The write sequence resumes after the highest
    /// sequence number already present.
    pub fn open(dir: &Path, keep: usize) -> Result<Self, String> {
        Self::open_with(dir, keep, Arc::new(RealBackend))
    }

    /// [`CheckpointDir::open`] with an explicit I/O backend (chaos
    /// drills inject storage faults through this).
    pub fn open_with(dir: &Path, keep: usize, io: Arc<dyn IoBackend>) -> Result<Self, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
        let next_seq = fs::read_dir(dir)
            .map_err(|e| format!("cannot read checkpoint dir {}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().and_then(seq_suffix))
            .map(|s| s.saturating_add(1))
            .max()
            .unwrap_or(0);
        Ok(CheckpointDir {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
            seq: AtomicU64::new(next_seq),
            io,
        })
    }

    /// Checkpoint filenames, oldest first — ordered by the parsed
    /// `(millis, seq)` key, so mixed legacy/suffixed directories still
    /// resolve chronologically.
    fn list(&self) -> Result<Vec<PathBuf>, String> {
        let mut files: Vec<((i64, u64), PathBuf)> = fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot read checkpoint dir {}: {e}", self.dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter_map(|p| {
                let key = p.file_name().and_then(|n| n.to_str()).and_then(sort_key)?;
                Some((key, p))
            })
            .collect();
        files.sort();
        Ok(files.into_iter().map(|(_, p)| p).collect())
    }

    /// Checkpoint files newest first — the order a resume ladder tries
    /// them in.
    pub fn scan(&self) -> Result<Vec<PathBuf>, String> {
        let mut files = self.list()?;
        files.reverse();
        Ok(files)
    }

    /// Atomically write the checkpoint for sim-time `at` and prune old
    /// files past the retention count. After any pruning deletions the
    /// directory itself is fsynced: without it, a crash right after
    /// rotation could resurrect an unlinked (possibly newest-named)
    /// entry next to the survivors and confuse the resume ladder.
    pub fn write(&self, at: SimTime, payload: &[u8]) -> Result<(), String> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dir
            .join(format!("ckpt-{:013}-{seq:06}.dmsa", at.as_millis()));
        write_atomic_via(&*self.io, &path, &frame(payload))
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        let files = self.list()?;
        if files.len() > self.keep {
            for old in &files[..files.len() - self.keep] {
                self.io
                    .remove_file(old)
                    .map_err(|e| format!("cannot prune checkpoint {}: {e}", old.display()))?;
            }
            self.io.sync_dir(&self.dir).map_err(|e| {
                format!(
                    "cannot fsync checkpoint dir {} after rotation: {e}",
                    self.dir.display()
                )
            })?;
        }
        Ok(())
    }

    /// Read a checkpoint file through this directory's I/O backend, so
    /// chaos drills inject read faults on the resume path too.
    pub fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.io.read(path)
    }

    /// The newest checkpoint whose *frame* verifies (magic, version,
    /// length, checksum), along with diagnostics for every newer file that
    /// was skipped. Returns `None` when no usable checkpoint exists. The
    /// payload still needs a snapshot-level validation before resuming —
    /// callers fall further down the ladder if that fails too.
    pub fn newest_valid(&self) -> Result<Option<FoundCheckpoint>, String> {
        let mut skipped = Vec::new();
        for path in self.list()?.into_iter().rev() {
            let bytes = match self.io.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            match unframe(&bytes) {
                Ok(payload) => {
                    return Ok(Some(FoundCheckpoint {
                        path,
                        payload: payload.to_vec(),
                        skipped,
                    }))
                }
                Err(why) => skipped.push(format!("{}: {why}", path.display())),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmsa-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn t(hours: i64) -> SimTime {
        SimTime::from_hours(hours)
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"snapshot bytes".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn unframe_rejects_damage_without_panicking() {
        let framed = frame(b"payload");
        // Truncation at every possible length is an error, never a panic.
        for cut in 0..framed.len() {
            assert!(unframe(&framed[..cut]).is_err(), "cut {cut} accepted");
        }
        // A flipped payload byte fails the checksum.
        let mut bad = framed.clone();
        bad[HEADER_LEN + 2] ^= 0x40;
        assert!(unframe(&bad).unwrap_err().contains("checksum"));
        // A future frame version is refused with found-vs-supported.
        let mut newer = framed.clone();
        newer[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(unframe(&newer).unwrap_err().contains("supports 1"));
        // Not our file at all (long enough to pass the length gate).
        assert!(
            unframe(b"PNG\x0d\x0a\x1a\x0a_definitely_not_our_frame_format")
                .unwrap_err()
                .contains("magic")
        );
    }

    #[test]
    fn unframe_prefix_walks_a_record_stream() {
        let mut stream = Vec::new();
        for rec in [b"first".as_slice(), b"second", b""] {
            stream.extend_from_slice(&frame(rec));
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while at < stream.len() {
            let (payload, used) = unframe_prefix(&stream[at..]).unwrap();
            seen.push(payload.to_vec());
            at += used;
        }
        assert_eq!(seen, vec![b"first".to_vec(), b"second".to_vec(), vec![]]);

        // A torn tail (half a frame) errors without touching the prefix.
        let cut = stream.len() - 3;
        let (payload, used) = unframe_prefix(&stream[..cut]).unwrap();
        assert_eq!(payload, b"first");
        let second = unframe_prefix(&stream[used..cut]);
        assert!(second.is_ok(), "full second frame should still parse");
        let (_, used2) = second.unwrap();
        let torn = unframe_prefix(&stream[used + used2..cut]);
        assert!(torn.unwrap_err().contains("truncated"));
    }

    #[test]
    fn rotation_keeps_newest_k() {
        let dir = scratch("rotate");
        let store = CheckpointDir::open(&dir, 3).unwrap();
        for h in 1..=5 {
            store.write(t(h), format!("snap-{h}").as_bytes()).unwrap();
        }
        let names: Vec<String> = store
            .list()
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(
            names[0].starts_with(&format!("ckpt-{:013}-", t(3).as_millis())),
            "{names:?}"
        );
        let found = store.newest_valid().unwrap().unwrap();
        assert_eq!(found.path, *store.list().unwrap().last().unwrap());
        assert_eq!(found.payload, b"snap-5");
        assert!(found.skipped.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_millis_checkpoints_do_not_collide() {
        let dir = scratch("collide");
        let store = CheckpointDir::open(&dir, 10).unwrap();
        // Three snapshots at one sim-millisecond used to map to one
        // filename, each overwriting the last.
        for i in 0..3 {
            store.write(t(1), format!("snap-{i}").as_bytes()).unwrap();
        }
        assert_eq!(store.list().unwrap().len(), 3, "collided filenames");
        assert_eq!(store.newest_valid().unwrap().unwrap().payload, b"snap-2");

        // A reopened directory resumes the sequence past existing files
        // instead of colliding with them.
        let reopened = CheckpointDir::open(&dir, 10).unwrap();
        reopened.write(t(1), b"snap-3").unwrap();
        assert_eq!(reopened.list().unwrap().len(), 4);
        assert_eq!(reopened.newest_valid().unwrap().unwrap().payload, b"snap-3");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_unsuffixed_names_still_resolve_and_order_first() {
        let dir = scratch("legacy");
        let store = CheckpointDir::open(&dir, 10).unwrap();
        // A pre-sequence file written by an older build...
        let legacy = dir.join(format!("ckpt-{:013}.dmsa", t(1).as_millis()));
        fs::write(&legacy, frame(b"legacy")).unwrap();
        // ...and a new write at the very same millisecond.
        store.write(t(1), b"newer").unwrap();
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0], legacy, "legacy file must order first");
        assert_eq!(store.newest_valid().unwrap().unwrap().payload, b"newer");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_valid_falls_back_past_damage() {
        let dir = scratch("fallback");
        let store = CheckpointDir::open(&dir, 3).unwrap();
        for h in 1..=3 {
            store.write(t(h), format!("snap-{h}").as_bytes()).unwrap();
        }
        // Newest is truncated mid-payload; second-newest has a bad byte.
        let files = store.list().unwrap();
        let newest = &files[2];
        let bytes = fs::read(newest).unwrap();
        fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();
        let second = &files[1];
        let mut bytes = fs::read(second).unwrap();
        let last = bytes.len() - 5;
        bytes[last] ^= 0xFF;
        fs::write(second, &bytes).unwrap();

        let found = store.newest_valid().unwrap().unwrap();
        assert_eq!(found.path, files[0]);
        assert_eq!(found.payload, b"snap-1");
        let skipped = &found.skipped;
        assert_eq!(skipped.len(), 2, "{skipped:?}");
        assert!(skipped[0].contains("truncated"), "{skipped:?}");
        assert!(skipped[1].contains("checksum"), "{skipped:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_fsyncs_the_directory_and_surfaces_failures() {
        use std::fs::File;
        use std::io;
        use std::sync::atomic::AtomicBool;

        /// Real I/O except `sync_dir`, which counts calls and can fail —
        /// isolating the rotation-durability path from write-path fsync.
        struct DirSyncProbe {
            inner: RealBackend,
            dir_syncs: AtomicU64,
            fail: AtomicBool,
        }
        impl IoBackend for DirSyncProbe {
            fn write_all(&self, f: &mut File, p: &Path, b: &[u8]) -> io::Result<()> {
                self.inner.write_all(f, p, b)
            }
            fn sync(&self, f: &File, p: &Path) -> io::Result<()> {
                self.inner.sync(f, p)
            }
            fn rename(&self, a: &Path, b: &Path) -> io::Result<()> {
                self.inner.rename(a, b)
            }
            fn read(&self, p: &Path) -> io::Result<Vec<u8>> {
                self.inner.read(p)
            }
            fn remove_file(&self, p: &Path) -> io::Result<()> {
                self.inner.remove_file(p)
            }
            fn sync_dir(&self, d: &Path) -> io::Result<()> {
                self.dir_syncs.fetch_add(1, Ordering::Relaxed);
                if self.fail.load(Ordering::Relaxed) {
                    return Err(io::Error::other("injected dir-fsync failure"));
                }
                self.inner.sync_dir(d)
            }
        }

        let dir = scratch("dirsync");
        let probe = Arc::new(DirSyncProbe {
            inner: RealBackend,
            dir_syncs: AtomicU64::new(0),
            fail: AtomicBool::new(false),
        });
        let store =
            CheckpointDir::open_with(&dir, 2, Arc::clone(&probe) as Arc<dyn IoBackend>).unwrap();
        // Below the retention cap: only the best-effort post-rename sync.
        store.write(t(1), b"a").unwrap();
        store.write(t(2), b"b").unwrap();
        let before = probe.dir_syncs.load(Ordering::Relaxed);
        // Rotation prunes: an *additional, mandatory* directory fsync.
        store.write(t(3), b"c").unwrap();
        assert!(
            probe.dir_syncs.load(Ordering::Relaxed) >= before + 2,
            "rotation must fsync the directory after deletions"
        );
        // And a failing rotation fsync is an error, not silence.
        probe.fail.store(true, Ordering::Relaxed);
        let err = store.write(t(4), b"d").unwrap_err();
        assert!(err.contains("after rotation"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_damaged_means_cold_start_not_error() {
        let dir = scratch("cold");
        let store = CheckpointDir::open(&dir, 3).unwrap();
        store.write(t(1), b"snap").unwrap();
        fs::write(&store.list().unwrap()[0], b"garbage").unwrap();
        let found = store.newest_valid().unwrap();
        assert!(found.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
